"""Selftest for :mod:`repro.devtools.lint` — the invariant linter.

Per rule: one fixture snippet that MUST fire (true positive) and one
near-miss that MUST NOT (false-positive guard), so rule regressions in
either direction are caught.  On top of the fixtures, the suite runs the
linter over the real ``src/ + tests/`` tree and asserts the shipped
state: zero unsuppressed findings, sub-5s wall time, and stable text/JSON
output shapes.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.devtools.lint import LintIndex, run_lint, run_over_index
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.cache import CACHE_FILENAME, ParseCache
from repro.devtools.lint.report import render_github, render_json, render_text
from repro.devtools.lint.runner import PARSE_ERROR_RULE

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Fixture paths live where the rules' scope predicates expect them.
ENGINE = "src/repro/engine/fixture_mod.py"
ROUTING = "src/repro/routing/fixture_mod.py"
TESTS = "tests/engine/test_fixture_mod.py"


def lint_sources(sources, select=None):
    """Lint in-memory ``{path: source}`` snippets; returns the report."""
    index = LintIndex.from_sources(sources)
    return run_over_index(index, select=select)


def rule_hits(report, rule_id):
    return [finding for finding in report.findings if finding.rule_id == rule_id]


# ---------------------------------------------------------------------------
# RL001 — determinism
# ---------------------------------------------------------------------------
class TestRL001Determinism:
    def test_true_positive_wall_clock_and_unseeded_rng(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import time\n"
                    "import numpy as np\n"
                    "def stamp():\n"
                    "    started = time.time()\n"
                    "    rng = np.random.default_rng()\n"
                    "    return started, rng\n"
                )
            },
            select=["RL001"],
        )
        hits = rule_hits(report, "RL001")
        assert len(hits) == 2
        assert hits[0].line == 4 and "time.time" in hits[0].message
        assert hits[1].line == 5 and "seed" in hits[1].message
        # Findings carry the precise file:line rule-id message shape.
        assert hits[0].format_text().startswith(f"{ENGINE}:4:")

    def test_near_miss_seeded_rng_benchmark_timing_and_lookalikes(self):
        report = lint_sources(
            {
                # Seeded RNG in scope + lookalike attribute chains: clean.
                ENGINE: (
                    "import numpy as np\n"
                    "def draw(seed, clock):\n"
                    "    rng = np.random.default_rng(seed)\n"
                    "    now = clock.time()\n"  # not the time module
                    "    return rng.random() + now\n"  # bound generator, fine
                ),
                # Wall clock outside the simulation layers: out of scope.
                "benchmarks/fixture_bench.py": (
                    "import time\n"
                    "def measure():\n"
                    "    return time.perf_counter()\n"
                ),
            },
            select=["RL001"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL002 — ordered iteration in scheduling/cohort modules
# ---------------------------------------------------------------------------
class TestRL002OrderedIteration:
    def test_true_positive_dict_values_in_scheduling_module(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def drain(engine, queues, cb):\n"
                    "    engine.schedule_at_tick(0, cb)\n"  # scheduling scope
                    "    for queue in queues.values():\n"
                    "        queue.clear()\n"
                    "    return {unit for queue in {1, 2} for unit in (queue,)}\n"
                )
            },
            select=["RL002"],
        )
        hits = rule_hits(report, "RL002")
        assert [hit.line for hit in hits] == [3, 5]
        assert "values()" in hits[0].message
        assert "set literal" in hits[1].message

    def test_near_miss_sorted_iteration_and_out_of_scope_module(self):
        report = lint_sources(
            {
                # Same iteration, wrapped in sorted(): clean.
                ENGINE: (
                    "def drain(engine, queues, cb):\n"
                    "    engine.schedule_at_tick(0, cb)\n"
                    "    for queue in sorted(queues.values()):\n"
                    "        queue.clear()\n"
                ),
                # Bare .values() in a module that never schedules: out of
                # scope for RL002 (iteration order can't become event order).
                ROUTING: (
                    "def tally(counters):\n"
                    "    return sum(counters.values())\n"
                    "def walk(counters):\n"
                    "    for count in counters.values():\n"
                    "        yield count\n"
                ),
            },
            select=["RL002"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL003 — store-mutation discipline
# ---------------------------------------------------------------------------
class TestRL003StoreDiscipline:
    def test_true_positive_unstamped_array_write(self):
        report = lint_sources(
            {
                ROUTING: (
                    "import numpy as np\n"
                    "def leak(store, cid, side, amount):\n"
                    "    store.balance[cid, side] -= amount\n"
                    "    np.add.at(store.inflight, (cid, side), amount)\n"
                )
            },
            select=["RL003"],
        )
        hits = rule_hits(report, "RL003")
        assert [hit.line for hit in hits] == [3, 4]
        assert ".balance[...]" in hits[0].message
        assert ".inflight[...]" in hits[1].message

    def test_near_miss_stamped_write_exempt_module_and_lookalike(self):
        report = lint_sources(
            {
                # Same write paired with touch(): the documented discipline.
                ROUTING: (
                    "def lock(store, cid, side, amount):\n"
                    "    store.balance[cid, side] -= amount\n"
                    "    store.inflight[cid, side] += amount\n"
                    "    store.touch(cid)\n"
                ),
                # store.py owns stamp maintenance: exempt wholesale.
                "src/repro/engine/store.py": (
                    "def apply(store, cid, side, amount):\n"
                    "    store.balance[cid, side] -= amount\n"
                ),
                # A non-store attribute of the same *shape* is not flagged.
                "src/repro/metrics/fixture_mod.py": (
                    "def note(table, cid):\n"
                    "    table.rows[cid] = 1\n"
                ),
            },
            select=["RL003"],
        )
        assert report.findings == []

    def test_direct_stamp_write_counts_as_bump(self):
        report = lint_sources(
            {
                ROUTING: (
                    "def lock(store, cid, side, amount):\n"
                    "    store.balance[cid, side] -= amount\n"
                    "    store.version = version = store.version + 1\n"
                    "    store.stamp[cid] = version\n"
                )
            },
            select=["RL003"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL004 — scalar/vector parity coverage
# ---------------------------------------------------------------------------
class TestRL004ParityCoverage:
    SRC = (
        "class FastThing:\n"
        "    vectorized_frobnication = True\n"
        "    def frob(self):\n"
        "        return 1\n"
    )

    def test_true_positive_fast_path_without_scalar_coverage(self):
        report = lint_sources(
            {
                ENGINE: self.SRC,
                # Tests only ever read the flag — the scalar branch is dead.
                TESTS: (
                    "from repro.engine.fixture_mod import FastThing\n"
                    "def test_default():\n"
                    "    assert FastThing.vectorized_frobnication\n"
                ),
            },
            select=["RL004"],
        )
        hits = rule_hits(report, "RL004")
        assert len(hits) == 1
        assert hits[0].path == ENGINE and hits[0].line == 2
        assert "vectorized_frobnication" in hits[0].message
        assert "scalar baseline" in hits[0].message

    def test_near_miss_both_branches_pinned(self):
        report = lint_sources(
            {
                ENGINE: self.SRC,
                TESTS: (
                    "from repro.engine.fixture_mod import FastThing\n"
                    "def test_parity():\n"
                    "    assert FastThing.vectorized_frobnication\n"
                    "    FastThing.vectorized_frobnication = False\n"
                    "    try:\n"
                    "        pass\n"
                    "    finally:\n"
                    "        FastThing.vectorized_frobnication = True\n"
                ),
            },
            select=["RL004"],
        )
        assert report.findings == []

    def test_parametrised_assignment_covers_both_branches(self):
        report = lint_sources(
            {
                ENGINE: self.SRC,
                TESTS: (
                    "from repro.engine.fixture_mod import FastThing\n"
                    "def run_with(flag):\n"
                    "    FastThing.vectorized_frobnication = flag\n"
                ),
            },
            select=["RL004"],
        )
        assert report.findings == []

    def test_sharded_flag_held_to_same_rule(self):
        # sharded_* parity flags (the spatial-sharding layer) carry the
        # same proof obligation as vectorized_* ones.
        src = (
            "class ShardedThing:\n"
            "    sharded_frobnication = True\n"
        )
        report = lint_sources(
            {
                ENGINE: src,
                TESTS: (
                    "from repro.engine.fixture_mod import ShardedThing\n"
                    "def test_default():\n"
                    "    assert ShardedThing.sharded_frobnication\n"
                ),
            },
            select=["RL004"],
        )
        hits = rule_hits(report, "RL004")
        assert len(hits) == 1
        assert "sharded_frobnication" in hits[0].message
        report = lint_sources(
            {
                ENGINE: src,
                TESTS: (
                    "from repro.engine.fixture_mod import ShardedThing\n"
                    "def run_with(flag):\n"
                    "    ShardedThing.sharded_frobnication = flag\n"
                ),
            },
            select=["RL004"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL005 — integer-tick discipline
# ---------------------------------------------------------------------------
class TestRL005IntegerTicks:
    def test_true_positive_float_literal_and_division(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def arm(engine, cb, horizon):\n"
                    "    engine.schedule_at_tick(1.5, cb)\n"
                    "    engine.schedule(horizon / 2, cb)\n"
                )
            },
            select=["RL005"],
        )
        hits = rule_hits(report, "RL005")
        assert [hit.line for hit in hits] == [2, 3]
        assert "float literal" in hits[0].message
        assert "true division" in hits[1].message

    def test_near_miss_to_ticks_conversion_and_seconds_apis(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def arm(engine, clock, cb, horizon):\n"
                    # Floats inside the sanctioned conversion are fine,
                    # even a float literal: to_ticks owns the rounding.
                    "    engine.schedule_at_tick(clock.to_ticks(1.5), cb)\n"
                    # Seconds-domain APIs are out of scope.
                    "    engine.schedule_after(horizon / 2, cb)\n"
                    "    engine.every(0.1, cb)\n"
                    # Floor division stays integral.
                    "    engine.schedule(horizon // 2, cb)\n"
                )
            },
            select=["RL005"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL006 — fork-safety (interprocedural)
# ---------------------------------------------------------------------------
class TestRL006ForkSafety:
    def test_true_positive_fork_reachable_global_write_and_rng(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import multiprocessing\n"
                    "import numpy as np\n"
                    "_CACHE = {}\n"
                    "def helper(key):\n"
                    "    _CACHE[key] = np.random.default_rng()\n"
                    "def worker(conn):\n"
                    "    helper('x')\n"
                    "def launch():\n"
                    "    p = multiprocessing.Process(target=worker, args=(None,))\n"
                    "    p.start()\n"
                )
            },
            select=["RL006"],
        )
        hits = rule_hits(report, "RL006")
        # The same line carries both a global write and a seedless RNG.
        assert len(hits) == 2
        assert all(hit.line == 5 for hit in hits)
        messages = " | ".join(hit.message for hit in hits)
        assert "_CACHE" in messages
        assert "worker -> helper" in messages  # the chain is named

    def test_true_positive_class_level_cache_via_self(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import multiprocessing\n"
                    "class Cache:\n"
                    "    _shared = {}\n"
                    "    def put(self, key):\n"
                    "        self._shared[key] = 1\n"
                    "def worker(cache):\n"
                    "    cache.put('x')\n"
                    "def launch(cache):\n"
                    "    multiprocessing.Process(target=worker, args=(cache,)).start()\n"
                )
            },
            select=["RL006"],
        )
        hits = rule_hits(report, "RL006")
        assert len(hits) == 1
        assert "Cache._shared" in hits[0].message

    def test_near_miss_unreachable_writer_and_local_state(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import multiprocessing\n"
                    "_CACHE = {}\n"
                    "def poison(key):\n"  # global write, but NOT fork-reachable
                    "    _CACHE[key] = 1\n"
                    "def worker(conn):\n"
                    "    local = {}\n"  # function-local mutable: fine
                    "    local['x'] = 1\n"
                    "def launch():\n"
                    "    multiprocessing.Process(target=worker, args=(None,)).start()\n"
                )
            },
            select=["RL006"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL007 — barrier discipline
# ---------------------------------------------------------------------------
class TestRL007BarrierDiscipline:
    def test_true_positive_wait_without_timeout(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def worker(barrier_a):\n"
                    "    barrier_a.wait()\n"
                )
            },
            select=["RL007"],
        )
        hits = rule_hits(report, "RL007")
        assert len(hits) == 1 and hits[0].line == 2
        assert "no timeout" in hits[0].message

    def test_true_positive_swallowing_handler_and_order_conflict(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def worker(barrier_a, barrier_b):\n"
                    "    try:\n"
                    "        barrier_a.wait(timeout=5.0)\n"
                    "        barrier_b.wait(timeout=5.0)\n"
                    "    except Exception:\n"
                    "        pass\n"  # swallows the failure
                    "def driver(barrier_a, barrier_b):\n"
                    "    barrier_b.wait(timeout=5.0)\n"  # opposite order
                    "    barrier_a.wait(timeout=5.0)\n"
                )
            },
            select=["RL007"],
        )
        messages = " | ".join(hit.message for hit in rule_hits(report, "RL007"))
        assert "neither re-raises" in messages
        assert "contradicts" in messages

    def test_near_miss_guarded_ordered_waits(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def fail_loudly():\n"
                    "    raise RuntimeError('worker died')\n"
                    "def worker(barrier_a, barrier_b):\n"
                    "    try:\n"
                    "        barrier_a.wait(timeout=5.0)\n"
                    "        barrier_b.wait(timeout=5.0)\n"
                    "    except Exception:\n"
                    "        fail_loudly()\n"  # raising helper: safe
                    "def driver(barrier_a, barrier_b):\n"
                    "    try:\n"
                    "        barrier_a.wait(timeout=5.0)\n"  # same order
                    "        barrier_b.wait(timeout=5.0)\n"
                    "    except Exception:\n"
                    "        barrier_a.abort()\n"
                    "        raise\n"
                )
            },
            select=["RL007"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL008 — lane-confined store writes
# ---------------------------------------------------------------------------
class TestRL008LaneConfinement:
    def test_true_positive_slice_write_reachable_from_fork(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import multiprocessing\n"
                    "def worker(store):\n"
                    "    store.balance[:, 0] = 0.0\n"
                    "def launch(store):\n"
                    "    multiprocessing.Process(target=worker, args=(store,)).start()\n"
                )
            },
            select=["RL008"],
        )
        hits = rule_hits(report, "RL008")
        assert len(hits) == 1 and hits[0].line == 3
        assert ".balance" in hits[0].message
        assert "worker" in hits[0].message

    def test_near_miss_variable_index_and_unreachable_slice(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import multiprocessing\n"
                    "def worker(store, cids, sides, amounts):\n"
                    "    store.balance[cids, sides] = amounts\n"  # provable
                    "def reset(store):\n"  # slice write, NOT fork-reachable
                    "    store.balance[:, 0] = 0.0\n"
                    "def launch(store):\n"
                    "    multiprocessing.Process(\n"
                    "        target=worker, args=(store, None, None, None)\n"
                    "    ).start()\n"
                )
            },
            select=["RL008"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# RL009 — shared-memory lifecycle
# ---------------------------------------------------------------------------
class TestRL009ShmLifecycle:
    def test_true_positive_share_outside_guarded_try(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def run(store, work):\n"
                    "    store.share()\n"  # barrier setup below may raise
                    "    try:\n"
                    "        work()\n"
                    "    finally:\n"
                    "        store.close_shared()\n"
                )
            },
            select=["RL009"],
        )
        hits = rule_hits(report, "RL009")
        assert len(hits) == 1 and hits[0].line == 2
        assert "close_shared" in hits[0].message

    def test_true_positive_happy_path_close_only(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def run(store, work):\n"
                    "    store.share()\n"
                    "    work()\n"
                    "    store.close_shared()\n"  # skipped if work() raises
                )
            },
            select=["RL009"],
        )
        assert len(rule_hits(report, "RL009")) == 1

    def test_near_miss_share_inside_guarded_try(self):
        report = lint_sources(
            {
                ENGINE: (
                    "def run(store, work):\n"
                    "    try:\n"
                    "        store.share()\n"
                    "        work()\n"
                    "    finally:\n"
                    "        store.close_shared()\n"
                )
            },
            select=["RL009"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Suppressions, parse failures, output formats, CLI
# ---------------------------------------------------------------------------
class TestSuppressionsAndReporting:
    def test_suppression_silences_only_the_listed_rule(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    # repro-lint: allow[RL003] wrong rule id on purpose\n"
            "    return time.time()\n"
        )
        report = lint_sources({ENGINE: source}, select=["RL001"])
        assert len(rule_hits(report, "RL001")) == 1  # RL003 allow is inert

        fixed = source.replace("allow[RL003]", "allow[RL001]")
        report = lint_sources({ENGINE: fixed}, select=["RL001"])
        assert report.findings == []
        assert len(report.suppressed) == 1  # still counted, not lost

    def test_trailing_comment_suppression_and_comma_list(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()  "
                    "# repro-lint: allow[RL001,RL005] fixture justification\n"
                )
            },
            select=["RL001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_suppression_marker_inside_string_is_inert(self):
        report = lint_sources(
            {
                ENGINE: (
                    "import time\n"
                    "MSG = 'repro-lint: allow[RL001] not a comment'\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                )
            },
            select=["RL001"],
        )
        assert len(report.findings) == 1  # the string literal suppresses nothing

    def test_unparseable_file_is_a_finding_not_a_skip(self):
        report = lint_sources({ENGINE: "def broken(:\n"})
        assert len(report.findings) == 1
        assert report.findings[0].rule_id == PARSE_ERROR_RULE

    def test_json_output_shape(self):
        report = lint_sources(
            {ENGINE: "import time\ndef f():\n    return time.time()\n"},
            select=["RL001"],
        )
        document = json.loads(render_json(report))
        assert document["version"] == 1
        assert document["counts"] == {"RL001": 1}
        (finding,) = document["findings"]
        assert finding["path"] == ENGINE
        assert finding["rule"] == "RL001"
        assert finding["line"] == 3
        assert "message" in finding

    def test_text_output_is_file_line_col_rule_message(self):
        report = lint_sources(
            {ENGINE: "import time\ndef f():\n    return time.time()\n"},
            select=["RL001"],
        )
        first_line = render_text(report).splitlines()[0]
        assert first_line.startswith(f"{ENGINE}:3:")
        assert " RL001 " in first_line

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0
        capsys.readouterr()
        assert lint_main(["--select", "RL999", str(clean)]) == 2
        err = capsys.readouterr().err
        assert "RL999" in err
        assert lint_main([str(tmp_path / "missing_dir")]) == 1  # RL000 finding

    def test_github_output_is_error_annotations(self):
        report = lint_sources(
            {ENGINE: "import time\ndef f():\n    return time.time()\n"},
            select=["RL001"],
        )
        lines = render_github(report).splitlines()
        assert lines[0].startswith(f"::error file={ENGINE},line=3,")
        assert "title=RL001::" in lines[0]
        assert lines[-1].startswith("repro-lint:")  # trailing summary line

    def test_github_output_escapes_message_payload(self):
        from repro.devtools.lint.report import Finding, LintReport

        report = LintReport(
            findings=(
                Finding(
                    path="src/a.py",
                    line=1,
                    col=0,
                    rule_id="RL001",
                    message="bad\nnews: 100% wrong",
                ),
            ),
            suppressed=(),
            files_scanned=1,
        )
        (annotation, _summary) = render_github(report).splitlines()
        assert "%0A" in annotation  # newline escaped so the annotation survives
        assert "%25" in annotation  # literal percent escaped
        assert "\n" not in annotation


# ---------------------------------------------------------------------------
# The on-disk parse cache
# ---------------------------------------------------------------------------
class TestParseCache:
    def _write_tree(self, tmp_path):
        root = tmp_path / "src" / "repro" / "engine"
        root.mkdir(parents=True)
        (root / "clocky.py").write_text(
            "import time\ndef f():\n    return time.time()\n"
        )
        return root

    def test_warm_run_reuses_parses_and_matches_cold_findings(self, tmp_path):
        self._write_tree(tmp_path)
        cold = run_lint([str(tmp_path / "src")], base=str(tmp_path))
        cache_file = tmp_path / CACHE_FILENAME
        assert cache_file.is_file()
        warm = run_lint([str(tmp_path / "src")], base=str(tmp_path))
        assert warm.findings == cold.findings
        # The second run really was served from the cache.
        cache = ParseCache.for_base(str(tmp_path))
        path = tmp_path / "src" / "repro" / "engine" / "clocky.py"
        assert cache.get(path.resolve(), path.stat()) is not None

    def test_cache_invalidates_on_file_change(self, tmp_path):
        root = self._write_tree(tmp_path)
        first = run_lint([str(tmp_path / "src")], base=str(tmp_path))
        assert len(first.findings) == 1
        target = root / "clocky.py"
        stale_stat = target.stat()
        target.write_text("def f():\n    return 0\n")
        # Force a different mtime even on coarse-grained filesystems.
        import os

        os.utime(target, ns=(stale_stat.st_mtime_ns + 1, stale_stat.st_mtime_ns + 1))
        second = run_lint([str(tmp_path / "src")], base=str(tmp_path))
        assert second.findings == []

    def test_corrupt_cache_file_falls_back_to_cold_parse(self, tmp_path):
        self._write_tree(tmp_path)
        (tmp_path / CACHE_FILENAME).write_bytes(b"not a pickle")
        report = run_lint([str(tmp_path / "src")], base=str(tmp_path))
        assert len(report.findings) == 1

    def test_use_cache_false_writes_nothing(self, tmp_path):
        self._write_tree(tmp_path)
        report = run_lint(
            [str(tmp_path / "src")], base=str(tmp_path), use_cache=False
        )
        assert len(report.findings) == 1
        assert not (tmp_path / CACHE_FILENAME).exists()


# ---------------------------------------------------------------------------
# The shipped tree
# ---------------------------------------------------------------------------
class TestShippedTree:
    def test_real_tree_lints_clean_and_fast(self):
        """The acceptance gate: zero unsuppressed findings, < 5 s."""
        started = time.perf_counter()
        report = run_lint(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], base=str(REPO_ROOT)
        )
        elapsed = time.perf_counter() - started
        assert report.findings == [], "\n".join(
            finding.format_text() for finding in report.findings
        )
        assert report.files_scanned > 100  # really scanned the tree
        assert elapsed < 5.0, f"lint run took {elapsed:.2f}s"
        # Every suppression in the shipped tree is justified: the comment
        # carries prose beyond the bare allow[...] marker.
        for finding in report.suppressed:
            module = next(
                m
                for m in LintIndex.from_paths(
                    [str(REPO_ROOT / finding.path)], base=str(REPO_ROOT)
                ).modules
            )
            lines = module.source.splitlines()
            comment = next(
                line
                for line in (lines[finding.line - 2], lines[finding.line - 1])
                if "repro-lint" in line
            )
            justification = comment.split("]", 1)[1].strip()
            assert len(justification) >= 10, (
                f"suppression at {finding.path}:{finding.line} has no "
                f"justification: {comment.strip()!r}"
            )

    def test_module_entrypoint_runs_clean_on_shipped_tree(self):
        """``python -m repro.devtools.lint src tests`` exits 0 (JSON mode)."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "src", "tests", "--format=json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        document = json.loads(result.stdout)
        assert document["findings"] == []

    def test_module_entrypoint_fails_on_violation(self, tmp_path):
        """A true positive drives a non-zero exit with a precise finding."""
        bad_root = tmp_path / "src" / "repro" / "engine"
        bad_root.mkdir(parents=True)
        bad = bad_root / "clocky.py"
        bad.write_text("import time\ndef f():\n    return time.time()\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "src"],
            cwd=tmp_path,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            timeout=60,
        )
        assert result.returncode == 1
        assert "src/repro/engine/clocky.py:3:11 RL001" in result.stdout

    def test_rule_registry_is_complete(self):
        from repro.devtools.lint import rule_ids

        assert rule_ids() == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
        ]
