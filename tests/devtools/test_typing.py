"""Static-typing gate for the engine package.

``pyproject.toml`` pins ``mypy`` in strict mode over ``src/repro/engine``
(the typed core); CI's ``lint`` job runs it unconditionally.  The local
container intentionally ships without mypy, so this mirror of the CI
check skips rather than fails when the tool is absent — the suite stays
runnable offline while any environment that *does* have mypy enforces
the same zero-error bar as CI.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_engine_package_is_strict_clean() -> None:
    result = subprocess.run(
        ["mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        "mypy strict check over src/repro/engine failed:\n"
        + result.stdout
        + result.stderr
    )
