"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "spider-waterfilling"
        assert args.topology == "isp"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])


class TestCommands:
    def test_schemes_lists_all(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "spider-waterfilling" in out
        assert "max-flow" in out

    def test_run_prints_table(self, capsys):
        code = main(
            [
                "run",
                "--scheme",
                "shortest-path",
                "--topology",
                "line-4",
                "--transactions",
                "30",
                "--capacity",
                "1000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success_ratio_%" in out
        assert "shortest-path" in out

    def test_run_dispatch_stats(self, capsys):
        code = main(
            [
                "run",
                "--scheme",
                "spider-waterfilling",
                "--topology",
                "line-4",
                "--transactions",
                "30",
                "--capacity",
                "1000",
                "--dispatch-stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dispatch stats:" in out
        assert "cohorts" in out
        assert "batched_units" in out

    def test_run_sharded_with_stats(self, capsys):
        code = main(
            [
                "run",
                "--scheme",
                "shortest-path",
                "--topology",
                "ripple-tiny",
                "--transactions",
                "40",
                "--capacity",
                "1000",
                "--shards",
                "2",
                "--dispatch-stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success_ratio_%" in out
        assert "num_shards" in out
        assert "boundary_crossings" in out
        assert "epoch_barriers" in out

    def test_shards_require_session_engine(self, capsys):
        code = main(
            [
                "run",
                "--topology",
                "line-4",
                "--transactions",
                "10",
                "--shards",
                "2",
                "--engine",
                "legacy",
            ]
        )
        assert code == 2
        assert "--engine session" in capsys.readouterr().err

    def test_compare_runs_multiple_schemes(self, capsys):
        code = main(
            [
                "compare",
                "--schemes",
                "shortest-path,spider-waterfilling",
                "--topology",
                "cycle-5",
                "--transactions",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shortest-path" in out
        assert "spider-waterfilling" in out

    def test_sweep_prints_rows_per_capacity(self, capsys):
        code = main(
            [
                "sweep",
                "--capacities",
                "500,1000",
                "--schemes",
                "shortest-path",
                "--topology",
                "cycle-5",
                "--transactions",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "500" in out and "1000" in out

    def test_decompose_fig4(self, capsys):
        assert main(["decompose", "--topology", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "nu(C*): 8" in out
        assert "66.67%" in out

    def test_decompose_workload(self, capsys):
        code = main(
            ["decompose", "--topology", "cycle-5", "--transactions", "50"]
        )
        assert code == 0
        assert "circulation fraction" in capsys.readouterr().out
