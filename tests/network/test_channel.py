"""Tests for the payment channel state machine."""

from __future__ import annotations

import pytest

from repro.errors import ChannelError, InsufficientFundsError
from repro.network.channel import PaymentChannel


@pytest.fixture
def channel() -> PaymentChannel:
    """Alice–Bob channel: 7 total, Alice holds 3 (the paper's Fig. 1)."""
    return PaymentChannel("alice", "bob", capacity=7.0, balance_a=3.0)


class TestConstruction:
    def test_default_split_is_even(self):
        channel = PaymentChannel(0, 1, capacity=100.0)
        assert channel.balance(0) == 50.0
        assert channel.balance(1) == 50.0

    def test_explicit_split(self, channel):
        assert channel.balance("alice") == 3.0
        assert channel.balance("bob") == 4.0

    def test_self_channel_rejected(self):
        with pytest.raises(ChannelError):
            PaymentChannel("a", "a", capacity=1.0)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ChannelError):
            PaymentChannel("a", "b", capacity=0.0)
        with pytest.raises(ChannelError):
            PaymentChannel("a", "b", capacity=-5.0)

    def test_balance_outside_capacity_rejected(self):
        with pytest.raises(ChannelError):
            PaymentChannel("a", "b", capacity=10.0, balance_a=11.0)
        with pytest.raises(ChannelError):
            PaymentChannel("a", "b", capacity=10.0, balance_a=-1.0)

    def test_other_endpoint(self, channel):
        assert channel.other("alice") == "bob"
        assert channel.other("bob") == "alice"
        with pytest.raises(ChannelError):
            channel.other("carol")

    def test_non_endpoint_queries_rejected(self, channel):
        with pytest.raises(ChannelError):
            channel.balance("carol")


class TestFig1Scenario:
    """The exact bidirectional sequence of the paper's Fig. 1."""

    def test_bob_pays_one_then_alice_pays_two(self, channel, sim_time=0.0):
        # Bob -> Alice: 1 token.
        htlc = channel.lock("bob", 1.0)
        channel.settle(htlc)
        assert channel.balance("alice") == 4.0
        assert channel.balance("bob") == 3.0
        # Alice -> Bob: 2 tokens.
        htlc = channel.lock("alice", 2.0)
        channel.settle(htlc)
        assert channel.balance("alice") == 2.0
        assert channel.balance("bob") == 5.0
        channel.check_invariant()


class TestLocking:
    def test_lock_moves_funds_to_inflight(self, channel):
        channel.lock("alice", 2.0)
        assert channel.balance("alice") == 1.0
        assert channel.inflight("alice") == 2.0
        channel.check_invariant()

    def test_lock_beyond_balance_raises(self, channel):
        with pytest.raises(InsufficientFundsError):
            channel.lock("alice", 3.5)

    def test_inflight_funds_are_unspendable(self, channel):
        channel.lock("alice", 3.0)
        with pytest.raises(InsufficientFundsError):
            channel.lock("alice", 0.5)

    def test_non_positive_lock_raises(self, channel):
        with pytest.raises(ChannelError):
            channel.lock("alice", 0.0)
        with pytest.raises(ChannelError):
            channel.lock("alice", -1.0)

    def test_settle_credits_counterparty(self, channel):
        htlc = channel.lock("alice", 2.0)
        channel.settle(htlc)
        assert channel.balance("bob") == 6.0
        assert channel.inflight("alice") == 0.0
        assert channel.num_settled == 1

    def test_refund_returns_to_sender(self, channel):
        htlc = channel.lock("alice", 2.0)
        channel.refund(htlc)
        assert channel.balance("alice") == 3.0
        assert channel.balance("bob") == 4.0
        assert channel.num_refunded == 1

    def test_settle_unknown_htlc_raises(self, channel):
        htlc = channel.lock("alice", 1.0)
        channel.settle(htlc)
        with pytest.raises(ChannelError):
            channel.settle(htlc)

    def test_multiple_concurrent_htlcs(self, channel):
        first = channel.lock("alice", 1.0)
        second = channel.lock("alice", 1.5)
        third = channel.lock("bob", 2.0)
        assert channel.inflight("alice") == 2.5
        assert channel.inflight("bob") == 2.0
        channel.settle(first)
        channel.refund(second)
        channel.settle(third)
        # alice: 3 − 1 − 1.5 + 1.5 (refund) + 2 (from bob) = 4
        assert channel.balance("alice") == 4.0
        # bob:   4 − 2 + 1 (from alice) = 3
        assert channel.balance("bob") == 3.0
        channel.check_invariant()


class TestAccounting:
    def test_flow_counters(self, channel):
        htlc = channel.lock("alice", 2.0)
        channel.settle(htlc)
        htlc = channel.lock("alice", 1.0)
        channel.refund(htlc)
        assert channel.settled_flow("alice") == 2.0
        assert channel.attempted_flow("alice") == 3.0
        assert channel.settled_flow("bob") == 0.0

    def test_imbalance_tracks_balances(self, channel):
        assert channel.imbalance() == 1.0  # |3 - 4|
        htlc = channel.lock("bob", 1.0)
        channel.settle(htlc)
        assert channel.imbalance() == 1.0  # |4 - 3|

    def test_flow_imbalance(self, channel):
        htlc = channel.lock("alice", 2.0)
        channel.settle(htlc)
        assert channel.flow_imbalance() == 2.0

    def test_capacity_is_conserved_through_traffic(self, channel):
        for _ in range(10):
            htlc = channel.lock("alice", 1.0)
            channel.settle(htlc)
            htlc = channel.lock("bob", 1.0)
            channel.settle(htlc)
        assert channel.balance("alice") + channel.balance("bob") == pytest.approx(7.0)
        channel.check_invariant()


class TestDeposit:
    def test_deposit_grows_capacity_and_balance(self, channel):
        channel.deposit("alice", 5.0)
        assert channel.balance("alice") == 8.0
        assert channel.capacity == 12.0
        assert channel.total_deposited == 5.0
        channel.check_invariant()

    def test_non_positive_deposit_raises(self, channel):
        with pytest.raises(ChannelError):
            channel.deposit("alice", 0.0)

    def test_deposit_enables_larger_sends(self, channel):
        with pytest.raises(InsufficientFundsError):
            channel.lock("alice", 5.0)
        channel.deposit("alice", 5.0)
        channel.lock("alice", 5.0)
        channel.check_invariant()
