"""Property-based tests: fund conservation under arbitrary operation mixes.

The core safety property of the whole system is that escrowed funds are
conserved no matter what sequence of locks, settles and refunds the routing
layer produces.  Hypothesis drives random operation sequences against a
small network and checks the channel invariant after every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientFundsError
from repro.network.network import PaymentNetwork

PATHS = [
    (0, 1),
    (1, 0),
    (0, 1, 2),
    (2, 1, 0),
    (0, 2),
    (2, 0),
    (1, 2),
    (2, 1),
    (1, 0, 2),
    (0, 2, 1),
]


def build_triangle() -> PaymentNetwork:
    network = PaymentNetwork()
    for u, v in [(0, 1), (1, 2), (0, 2)]:
        network.add_channel(u, v, 100.0)
    return network


operation = st.tuples(
    st.sampled_from(range(len(PATHS))),
    st.floats(min_value=0.01, max_value=60.0, allow_nan=False),
    st.sampled_from(["settle", "refund", "hold"]),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40))
def test_funds_conserved_under_arbitrary_traffic(operations):
    network = build_triangle()
    total = network.total_funds()
    held = []
    for path_index, amount, resolution in operations:
        path = PATHS[path_index]
        try:
            htlcs = network.lock_path(path, amount)
        except InsufficientFundsError:
            continue
        if resolution == "settle":
            network.settle_path(path, htlcs)
        elif resolution == "refund":
            network.refund_path(path, htlcs)
        else:
            held.append((path, htlcs))
        network.check_invariants()
        assert network.total_funds() == pytest.approx(total)
    # Resolve the held transfers both ways; conservation must still hold.
    for index, (path, htlcs) in enumerate(held):
        if index % 2 == 0:
            network.settle_path(path, htlcs)
        else:
            network.refund_path(path, htlcs)
    network.check_invariants()
    assert network.total_inflight() == pytest.approx(0.0)
    assert network.total_funds() == pytest.approx(total)


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=49.0, allow_nan=False),
    st.integers(min_value=1, max_value=20),
)
def test_repeated_roundtrips_preserve_balances(amount, repetitions):
    """A settle in each direction is balance-neutral for every party."""
    network = build_triangle()
    before = network.balance_snapshot()
    for _ in range(repetitions):
        htlcs = network.lock_path((0, 1, 2), amount)
        network.settle_path((0, 1, 2), htlcs)
        htlcs = network.lock_path((2, 1, 0), amount)
        network.settle_path((2, 1, 0), htlcs)
    after = network.balance_snapshot()
    for key in before:
        assert after[key][0] == pytest.approx(before[key][0])
        assert after[key][1] == pytest.approx(before[key][1])


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.01, max_value=50.0), st.integers(min_value=0, max_value=10))
def test_lock_refund_is_identity(amount, count):
    network = build_triangle()
    before = network.balance_snapshot()
    for _ in range(count):
        htlcs = network.lock_path((0, 1, 2), amount)
        network.refund_path((0, 1, 2), htlcs)
    assert network.balance_snapshot() == before
