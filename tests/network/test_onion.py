"""Tests for onion routing (§4.2 privacy substrate)."""

from __future__ import annotations

import pytest

from repro.network.onion import (
    MAX_HOPS,
    OnionError,
    OnionPacket,
    build_onion,
    hop_key,
    peel_onion,
)

SECRET = b"unit-42-secret"
PAYLOAD = {"payment_id": 7, "sequence": 3, "amount": 12.5}


def full_relay(path):
    """Peel an onion along a path, returning what each hop learned."""
    packet = build_onion(SECRET, path, PAYLOAD)
    learned = []
    for node in path:
        next_hop, payload, inner = peel_onion(SECRET, node, packet)
        learned.append((node, next_hop, payload))
        if inner is None:
            break
        packet = inner
    return learned


class TestRouting:
    def test_payload_reaches_destination(self):
        learned = full_relay([1, 2, 3])
        assert learned[-1] == (3, None, PAYLOAD)

    def test_relays_learn_only_next_hop(self):
        learned = full_relay([1, 2, 3, 4])
        for node, next_hop, payload in learned[:-1]:
            assert payload is None
            assert next_hop is not None
        assert [n for n, _, _ in learned] == [1, 2, 3, 4]
        assert [nh for _, nh, _ in learned[:-1]] == ["2", "3", "4"]

    def test_single_hop_path(self):
        learned = full_relay([9])
        assert learned == [(9, None, PAYLOAD)]

    def test_max_hops_path_works(self):
        path = list(range(MAX_HOPS))
        learned = full_relay(path)
        assert learned[-1][2] == PAYLOAD

    def test_too_long_path_rejected(self):
        with pytest.raises(OnionError):
            build_onion(SECRET, list(range(MAX_HOPS + 1)), PAYLOAD)

    def test_empty_path_rejected(self):
        with pytest.raises(OnionError):
            build_onion(SECRET, [], PAYLOAD)


class TestPrivacy:
    def test_packets_are_length_invariant(self):
        packet = build_onion(SECRET, [1, 2, 3, 4, 5], PAYLOAD)
        sizes = {len(packet)}
        node_path = [1, 2, 3, 4, 5]
        for node in node_path[:-1]:
            _, _, packet = peel_onion(SECRET, node, packet)
            sizes.add(len(packet))
        assert len(sizes) == 1

    def test_short_and_long_paths_are_indistinguishable_by_size(self):
        short = build_onion(SECRET, [1, 2], PAYLOAD)
        long = build_onion(SECRET, list(range(MAX_HOPS)), PAYLOAD)
        assert len(short) == len(long)

    def test_wrong_node_cannot_peel(self):
        packet = build_onion(SECRET, [1, 2, 3], PAYLOAD)
        with pytest.raises(OnionError):
            peel_onion(SECRET, 2, packet)  # node 2 is not the outer layer

    def test_wrong_session_cannot_peel(self):
        packet = build_onion(SECRET, [1, 2], PAYLOAD)
        with pytest.raises(OnionError):
            peel_onion(b"other-session", 1, packet)

    def test_tampering_detected(self):
        packet = build_onion(SECRET, [1, 2], PAYLOAD)
        flipped = bytearray(packet.blob)
        flipped[5] ^= 0xFF
        with pytest.raises(OnionError):
            peel_onion(SECRET, 1, OnionPacket(bytes(flipped)))

    def test_hop_keys_are_distinct(self):
        assert hop_key(SECRET, 1) != hop_key(SECRET, 2)
        assert hop_key(SECRET, 1) != hop_key(b"other", 1)


class TestPacketValidation:
    def test_wrong_size_rejected(self):
        with pytest.raises(OnionError):
            OnionPacket(b"short")

    def test_oversized_payload_rejected(self):
        with pytest.raises(OnionError):
            build_onion(SECRET, [1], {"blob": "x" * 500})
