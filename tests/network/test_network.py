"""Tests for the payment network state machine."""

from __future__ import annotations

import math

import pytest

from repro.errors import ChannelError, InsufficientFundsError, TopologyError
from repro.network.network import PaymentNetwork, canonical_edge


class TestCanonicalEdge:
    def test_integers_sort_numerically(self):
        assert canonical_edge(10, 2) == (2, 10)
        assert canonical_edge(2, 10) == (2, 10)

    def test_strings_sort_lexicographically(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_fall_back_to_repr(self):
        assert canonical_edge("a", 1) == canonical_edge(1, "a")


class TestConstruction:
    def test_add_channel_creates_nodes(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 10.0)
        assert network.has_node(0) and network.has_node(1)
        assert network.num_nodes == 2
        assert network.num_channels == 1

    def test_duplicate_channel_rejected(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 10.0)
        with pytest.raises(TopologyError):
            network.add_channel(1, 0, 10.0)

    def test_add_node_is_idempotent(self):
        network = PaymentNetwork()
        first = network.add_node(3)
        second = network.add_node(3)
        assert first is second

    def test_neighbors_and_degree(self, triangle):
        assert set(triangle.neighbors(0)) == {1, 2}
        assert triangle.degree(1) == 2

    def test_unknown_node_raises(self, triangle):
        with pytest.raises(TopologyError):
            triangle.node(99)
        with pytest.raises(TopologyError):
            list(triangle.neighbors(99))

    def test_channel_lookup_either_order(self, triangle):
        assert triangle.channel(0, 1) is triangle.channel(1, 0)
        with pytest.raises(TopologyError):
            triangle.channel(0, 99)

    def test_balance_split_parameter(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 10.0, balance_u=7.0)
        assert channel.balance(0) == 7.0
        assert channel.balance(1) == 3.0


class TestAvailability:
    def test_available_is_directional(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 10.0, balance_u=7.0)
        assert network.available(0, 1) == 7.0
        assert network.available(1, 0) == 3.0

    def test_bottleneck_is_min_along_path(self, line3):
        # line 0-1-2, each channel 100 split 50/50
        assert line3.bottleneck([0, 1, 2]) == 50.0
        line3.channel(0, 1).lock(0, 30.0)
        assert line3.bottleneck([0, 1, 2]) == 20.0

    def test_bottleneck_of_single_node_is_infinite(self, line3):
        assert line3.bottleneck([0]) == math.inf

    def test_path_validation(self, line3):
        with pytest.raises(ChannelError):
            line3.bottleneck([])
        with pytest.raises(TopologyError):
            line3.bottleneck([0, 2])  # no channel 0-2
        with pytest.raises(TopologyError):
            line3.bottleneck([0, 9])


class TestPathLocking:
    def test_lock_path_locks_every_hop(self, line3):
        htlcs = line3.lock_path([0, 1, 2], 10.0)
        assert len(htlcs) == 2
        assert line3.available(0, 1) == 40.0
        assert line3.available(1, 2) == 40.0
        line3.check_invariants()

    def test_settle_path_credits_downstream(self, line3):
        htlcs = line3.lock_path([0, 1, 2], 10.0)
        line3.settle_path([0, 1, 2], htlcs)
        assert line3.available(1, 0) == 60.0
        assert line3.available(2, 1) == 60.0
        # Relay node 1 is net flat: paid 10 downstream, received 10 upstream.
        channel01 = line3.channel(0, 1)
        channel12 = line3.channel(1, 2)
        assert channel01.balance(1) + channel12.balance(1) == pytest.approx(100.0)
        line3.check_invariants()

    def test_refund_path_restores_balances(self, line3):
        before = line3.balance_snapshot()
        htlcs = line3.lock_path([0, 1, 2], 10.0)
        line3.refund_path([0, 1, 2], htlcs)
        assert line3.balance_snapshot() == before
        line3.check_invariants()

    def test_partial_lock_rolls_back_atomically(self, line3):
        # Drain channel 1->2 so the second hop fails.
        line3.channel(1, 2).lock(1, 50.0)
        before_first_hop = line3.available(0, 1)
        with pytest.raises(InsufficientFundsError):
            line3.lock_path([0, 1, 2], 10.0)
        assert line3.available(0, 1) == before_first_hop
        line3.check_invariants()

    def test_lock_path_rejects_single_node(self, line3):
        with pytest.raises(ChannelError):
            line3.lock_path([0], 1.0)

    def test_lock_path_rejects_revisiting_paths(self, triangle):
        with pytest.raises(ChannelError):
            triangle.lock_path([0, 1, 0], 1.0)

    def test_htlc_count_mismatch_raises(self, line3):
        htlcs = line3.lock_path([0, 1, 2], 5.0)
        with pytest.raises(ChannelError):
            line3.settle_path([0, 1], htlcs)
        line3.settle_path([0, 1, 2], htlcs)


class TestAggregates:
    def test_total_funds(self, triangle):
        assert triangle.total_funds() == 300.0

    def test_total_inflight_tracks_locks(self, line3):
        assert line3.total_inflight() == 0.0
        line3.lock_path([0, 1, 2], 10.0)
        assert line3.total_inflight() == 20.0  # 10 on each hop

    def test_funds_conserved_after_traffic(self, triangle):
        total_before = triangle.total_funds()
        for _ in range(5):
            htlcs = triangle.lock_path([0, 1, 2], 5.0)
            triangle.settle_path([0, 1, 2], htlcs)
            htlcs = triangle.lock_path([2, 0], 3.0)
            triangle.refund_path([2, 0], htlcs)
        assert triangle.total_funds() == total_before
        triangle.check_invariants()
