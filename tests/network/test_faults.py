"""Tests for fault injection (channel closures, node churn)."""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.errors import ConfigError, InsufficientFundsError
from repro.network.faults import (
    ChannelClosure,
    FaultSchedule,
    NodeOutage,
    random_churn_schedule,
)
from repro.network.network import PaymentNetwork
from repro.routing import make_scheme
from repro.topology.generators import cycle_topology, line_topology
from repro.workload.generator import TransactionRecord


class TestChannelFreeze:
    def test_frozen_channel_rejects_locks(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 100.0)
        channel.freeze()
        assert channel.frozen
        assert channel.available(0) == 0.0
        assert channel.available(1) == 0.0
        with pytest.raises(InsufficientFundsError):
            channel.lock(0, 10.0)

    def test_pending_htlcs_resolve_while_frozen(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 100.0)
        htlc = channel.lock(0, 20.0)
        channel.freeze()
        channel.settle(htlc)  # in-flight transfers still complete (§2)
        assert channel.balance(1) == pytest.approx(70.0)
        channel.check_invariant()

    def test_unfreeze_restores_service(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 100.0)
        channel.freeze()
        channel.unfreeze()
        assert not channel.frozen
        assert channel.available(0) == pytest.approx(50.0)
        channel.lock(0, 10.0)

    def test_freeze_conserves_funds(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 100.0)
        before = network.total_funds()
        channel.freeze()
        channel.unfreeze()
        assert network.total_funds() == pytest.approx(before)
        network.check_invariants()


class TestFaultEvents:
    def test_closure_validation(self):
        with pytest.raises(ConfigError):
            ChannelClosure(time=-1.0, u=0, v=1)

    def test_outage_validation(self):
        with pytest.raises(ConfigError):
            NodeOutage(start=5.0, end=5.0, node=0)
        with pytest.raises(ConfigError):
            NodeOutage(start=-1.0, end=2.0, node=0)

    def test_schedule_rejects_unknown_events(self):
        with pytest.raises(ConfigError):
            FaultSchedule(["not-a-fault"])

    def test_schedule_length(self):
        schedule = FaultSchedule(
            [ChannelClosure(1.0, 0, 1), NodeOutage(2.0, 3.0, 4)]
        )
        assert len(schedule) == 2


class TestScheduleExecution:
    def run_with_faults(self, network, records, schedule, scheme="spider-waterfilling",
                        end_time=30.0):
        runtime = Runtime(
            network,
            records,
            make_scheme(scheme),
            RuntimeConfig(end_time=end_time, check_invariants=True),
        )
        schedule.install(runtime)
        return runtime.run(), runtime

    def test_closure_blocks_later_payments(self):
        # Payment at t=1 passes; the channel closes at t=2; the t=3 payment
        # fails (line topology: no alternative).
        network = line_topology(3).build_network(default_capacity=100.0)
        schedule = FaultSchedule([ChannelClosure(2.0, 1, 2)])
        records = [
            TransactionRecord(0, 1.0, 0, 2, 10.0),
            TransactionRecord(1, 3.0, 0, 2, 10.0),
        ]
        metrics, runtime = self.run_with_faults(network, records, schedule)
        assert runtime.payments[0].is_complete
        assert not runtime.payments[1].is_complete
        assert schedule.closures_applied == 1

    def test_outage_is_transient(self):
        # Node 1 is down for t in [2, 4); payments before and after pass.
        network = line_topology(3).build_network(default_capacity=100.0)
        schedule = FaultSchedule([NodeOutage(2.0, 4.0, 1)])
        records = [
            TransactionRecord(0, 1.0, 0, 2, 10.0),
            TransactionRecord(1, 2.5, 0, 2, 10.0),
            TransactionRecord(2, 5.0, 0, 2, 10.0),
        ]
        metrics, runtime = self.run_with_faults(network, records, schedule)
        assert runtime.payments[0].is_complete
        assert runtime.payments[2].is_complete
        # The mid-outage payment eventually completes too: it waits in the
        # pending queue and retries after the node returns.
        assert runtime.payments[1].is_complete
        assert runtime.payments[1].completed_at > 4.0

    def test_atomic_scheme_fails_during_outage(self):
        # LND tries (with retries) only at arrival: a mid-outage payment on
        # a line has no alternative and fails for good.
        network = line_topology(3).build_network(default_capacity=100.0)
        schedule = FaultSchedule([NodeOutage(2.0, 4.0, 1)])
        records = [TransactionRecord(0, 2.5, 0, 2, 10.0)]
        metrics, _ = self.run_with_faults(network, records, schedule, scheme="lnd")
        assert metrics.failed == 1

    def test_multipath_routes_around_closure(self):
        # On a 6-cycle, closing one direction of the short route leaves the
        # long route; waterfilling finds it.
        network = cycle_topology(6).build_network(default_capacity=100.0)
        schedule = FaultSchedule([ChannelClosure(0.5, 1, 2)])
        records = [TransactionRecord(0, 1.0, 0, 3, 10.0)]
        metrics, runtime = self.run_with_faults(network, records, schedule)
        assert metrics.completed == 1
        assert runtime.network.channel(0, 5).settled_flow(0) == pytest.approx(10.0)

    def test_overlapping_outages_reference_count(self):
        # Nodes 1 and 2 share a channel; both go down with overlap.  The
        # shared channel must stay frozen until *both* are back.
        network = line_topology(4).build_network(default_capacity=100.0)
        schedule = FaultSchedule(
            [NodeOutage(1.0, 5.0, 1), NodeOutage(2.0, 8.0, 2)]
        )
        runtime = Runtime(network, [], make_scheme("shortest-path"),
                          RuntimeConfig(end_time=10.0))
        schedule.install(runtime)
        channel = network.channel(1, 2)
        runtime.sim.run(until=6.0)  # node 1 back, node 2 still down
        assert channel.frozen
        runtime.sim.run(until=9.0)
        assert not channel.frozen

    def test_missing_channel_is_skipped(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        schedule = FaultSchedule([ChannelClosure(1.0, 0, 2)])  # no such channel
        metrics, _ = self.run_with_faults(
            network, [TransactionRecord(0, 2.0, 0, 2, 10.0)], schedule
        )
        assert schedule.closures_applied == 0
        assert metrics.completed == 1

    def test_funds_conserved_under_churn(self):
        network = cycle_topology(6).build_network(default_capacity=80.0)
        before = network.total_funds()
        schedule = random_churn_schedule(
            range(6), duration=20.0, churn_rate=0.5, outage_duration=2.0, seed=4
        )
        records = [
            TransactionRecord(i, 0.5 * i, i % 6, (i + 3) % 6, 15.0)
            for i in range(30)
        ]
        _, runtime = self.run_with_faults(network, records, schedule)
        runtime.network.check_invariants()
        assert runtime.network.total_funds() == pytest.approx(before)


class TestRandomChurn:
    def test_schedule_is_seed_deterministic(self):
        a = random_churn_schedule(range(10), 50.0, 0.2, 5.0, seed=9)
        b = random_churn_schedule(range(10), 50.0, 0.2, 5.0, seed=9)
        assert [(o.start, o.node) for o in a.outages] == [
            (o.start, o.node) for o in b.outages
        ]

    def test_rate_scales_outage_count(self):
        sparse = random_churn_schedule(range(10), 100.0, 0.05, 5.0, seed=1)
        dense = random_churn_schedule(range(10), 100.0, 0.5, 5.0, seed=1)
        assert len(dense.outages) > len(sparse.outages)

    def test_zero_rate_is_empty(self):
        schedule = random_churn_schedule(range(10), 100.0, 0.0, 5.0, seed=1)
        assert len(schedule) == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration": 0.0},
            {"churn_rate": -0.1},
            {"outage_duration": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(
            nodes=range(5), duration=10.0, churn_rate=0.1, outage_duration=1.0
        )
        defaults.update(kwargs)
        with pytest.raises(ConfigError):
            random_churn_schedule(**defaults)

    def test_empty_node_set_rejected(self):
        with pytest.raises(ConfigError):
            random_churn_schedule([], 10.0, 0.1, 1.0)
