"""Tests for hash locks and HTLC state machine."""

from __future__ import annotations

import pytest

from repro.errors import ChannelError
from repro.network.htlc import HashLock, Htlc, HtlcState


class TestHashLock:
    def test_generated_key_verifies(self):
        lock = HashLock.generate(payment_id=1, sequence=0)
        assert lock.verify(lock.key)

    def test_wrong_key_fails_verification(self):
        lock = HashLock.generate(payment_id=1, sequence=0)
        other = HashLock.generate(payment_id=1, sequence=1)
        assert not lock.verify(other.key)

    def test_distinct_units_get_distinct_locks(self):
        locks = {HashLock.generate(1, s).hash_value for s in range(100)}
        assert len(locks) == 100

    def test_repeated_generation_is_unique(self):
        # The nonce makes even identical (payment, sequence) pairs unique,
        # matching "the sender generates a new key for every transaction
        # unit" (§4.1).
        a = HashLock.generate(1, 0)
        b = HashLock.generate(1, 0)
        assert a.hash_value != b.hash_value


class TestHtlcStateMachine:
    def _htlc(self) -> Htlc:
        return Htlc(htlc_id=1, sender="a", receiver="b", amount=5.0, created_at=0.0)

    def test_initial_state_pending(self):
        htlc = self._htlc()
        assert htlc.state is HtlcState.PENDING
        assert htlc.pending

    def test_settle_transition(self):
        htlc = self._htlc()
        htlc.mark_settled()
        assert htlc.state is HtlcState.SETTLED
        assert not htlc.pending

    def test_refund_transition(self):
        htlc = self._htlc()
        htlc.mark_refunded()
        assert htlc.state is HtlcState.REFUNDED

    def test_double_settle_raises(self):
        htlc = self._htlc()
        htlc.mark_settled()
        with pytest.raises(ChannelError):
            htlc.mark_settled()

    def test_settle_after_refund_raises(self):
        htlc = self._htlc()
        htlc.mark_refunded()
        with pytest.raises(ChannelError):
            htlc.mark_settled()

    def test_refund_after_settle_raises(self):
        htlc = self._htlc()
        htlc.mark_settled()
        with pytest.raises(ChannelError):
            htlc.mark_refunded()
