"""Tests for the on-chain settlement substrate (§2)."""

from __future__ import annotations

import pytest

from repro.errors import ChannelError, ConfigError
from repro.network.blockchain import (
    Blockchain,
    ChannelContract,
    ContractState,
    TxKind,
)


@pytest.fixture
def chain():
    return Blockchain(fee=1.0, confirmation_latency=600.0)


@pytest.fixture
def contract(chain):
    """Alice escrows 3, Bob escrows 4 (the paper's Fig. 1 numbers)."""
    return ChannelContract(chain, "alice", "bob", 3.0, 4.0, now=0.0)


class TestBlockchain:
    def test_fees_accumulate(self, chain):
        chain.submit(TxKind.OPEN, ("a",), {"a": 1.0}, now=0.0)
        chain.submit(TxKind.DEPOSIT, ("a",), {"a": 1.0}, now=1.0)
        assert chain.total_fees == 2.0
        assert len(chain) == 2

    def test_confirmation_latency(self, chain):
        tx = chain.submit(TxKind.OPEN, ("a",), {"a": 1.0}, now=5.0)
        assert tx.confirmed_at == 605.0

    def test_kind_filter(self, chain):
        chain.submit(TxKind.OPEN, ("a",), {"a": 1.0}, now=0.0)
        chain.submit(TxKind.PUNISH, ("b",), {"b": 1.0}, now=0.0)
        assert len(chain.transactions_of_kind(TxKind.PUNISH)) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            Blockchain(fee=-1.0)
        with pytest.raises(ConfigError):
            Blockchain(confirmation_latency=-1.0)


class TestContractLifecycle:
    def test_open_records_escrow(self, contract, chain):
        assert contract.escrow == 7.0
        assert contract.state is ContractState.OPEN
        assert chain.transactions_of_kind(TxKind.OPEN)[0].amounts == {
            "alice": 3.0,
            "bob": 4.0,
        }

    def test_fig1_update_sequence(self, contract):
        """Bob pays 1, then Alice pays 2 — the exact Fig. 1 story."""
        contract.update({"alice": 4.0, "bob": 3.0})
        contract.update({"alice": 2.0, "bob": 5.0})
        assert contract.latest_sequence == 2
        assert contract.latest_balances() == {"alice": 2.0, "bob": 5.0}

    def test_update_must_conserve_escrow(self, contract):
        with pytest.raises(ChannelError):
            contract.update({"alice": 4.0, "bob": 4.0})

    def test_update_must_cover_both_parties(self, contract):
        with pytest.raises(ChannelError):
            contract.update({"alice": 7.0})

    def test_negative_balances_rejected(self, contract):
        with pytest.raises(ChannelError):
            contract.update({"alice": -1.0, "bob": 8.0})

    def test_cooperative_close_settles_latest(self, contract, chain):
        contract.update({"alice": 4.0, "bob": 3.0})
        settlement = contract.cooperative_close(now=10.0)
        assert settlement == {"alice": 4.0, "bob": 3.0}
        assert contract.state is ContractState.CLOSED
        assert chain.transactions_of_kind(TxKind.COOPERATIVE_CLOSE)

    def test_operations_after_close_rejected(self, contract):
        contract.cooperative_close(now=1.0)
        with pytest.raises(ChannelError):
            contract.update({"alice": 3.0, "bob": 4.0})
        with pytest.raises(ChannelError):
            contract.cooperative_close(now=2.0)


class TestUnilateralCloseAndPunishment:
    def test_honest_unilateral_close(self, contract):
        contract.update({"alice": 4.0, "bob": 3.0})
        settlement = contract.unilateral_close("alice", 1, now=5.0)
        assert settlement == {"alice": 4.0, "bob": 3.0}

    def test_cheater_loses_entire_escrow(self, contract, chain):
        """§2: publishing an earlier balance forfeits the escrow."""
        contract.update({"alice": 4.0, "bob": 3.0})   # state 1
        contract.update({"alice": 2.0, "bob": 5.0})   # state 2 (latest)
        # Alice prefers state 1 (4 > 2) and cheats.
        settlement = contract.unilateral_close("alice", 1, now=5.0)
        assert settlement == {"alice": 0.0, "bob": 7.0}
        assert chain.transactions_of_kind(TxKind.PUNISH)

    def test_cheating_succeeds_only_without_a_watcher(self, contract):
        contract.update({"alice": 4.0, "bob": 3.0})
        contract.update({"alice": 2.0, "bob": 5.0})
        settlement = contract.unilateral_close(
            "alice", 1, now=5.0, counterparty_watches=False
        )
        assert settlement == {"alice": 4.0, "bob": 3.0}

    def test_unknown_state_rejected(self, contract):
        with pytest.raises(ChannelError):
            contract.unilateral_close("alice", 9, now=1.0)

    def test_non_party_cannot_close(self, contract):
        with pytest.raises(ChannelError):
            contract.unilateral_close("carol", 0, now=1.0)


class TestDeposits:
    def test_deposit_grows_escrow_and_pays_fee(self, contract, chain):
        fees_before = chain.total_fees
        contract.deposit("alice", 5.0, now=2.0)
        assert contract.escrow == 12.0
        assert contract.latest_balances()["alice"] == 8.0
        assert chain.total_fees == fees_before + 1.0

    def test_rebalancing_cost_model(self, chain):
        """§5.2.3: the on-chain cost of a rebalancing schedule is visible as
        accumulated fees plus confirmation latency."""
        contract = ChannelContract(chain, "u", "v", 10.0, 10.0, now=0.0)
        for step in range(5):
            contract.deposit("u", 2.0, now=float(step))
        deposits = chain.transactions_of_kind(TxKind.DEPOSIT)
        assert len(deposits) == 5
        assert all(tx.confirmed_at - tx.submitted_at == 600.0 for tx in deposits)
        assert contract.escrow == 30.0

    def test_invalid_deposits(self, contract):
        with pytest.raises(ChannelError):
            contract.deposit("carol", 1.0, now=0.0)
        with pytest.raises(ChannelError):
            contract.deposit("alice", 0.0, now=0.0)
