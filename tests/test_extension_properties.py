"""Property-based tests for the extension modules.

Hypothesis drives randomised inputs against the invariants the new
systems rely on: Gini's mathematical properties, fund conservation under
arbitrary freeze/thaw interleavings, AIMD window bounds, LND path
optimality against brute force, and simple-trail delivery under
backpressure.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.payments import Payment
from repro.core.window_control import WindowedSpiderScheme
from repro.errors import InsufficientFundsError
from repro.network.network import PaymentNetwork


# ----------------------------------------------------------------------
# Gini coefficient
# ----------------------------------------------------------------------
values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)


@settings(max_examples=200, deadline=None)
@given(values_strategy)
def test_gini_is_bounded(values):
    from repro.metrics.incentives import gini

    g = gini(values)
    assert 0.0 <= g < 1.0 + 1e-9


@settings(max_examples=200, deadline=None)
@given(values_strategy, st.floats(min_value=0.01, max_value=100.0))
def test_gini_is_scale_invariant(values, scale):
    from repro.metrics.incentives import gini

    assert gini(values) == pytest.approx(
        gini([v * scale for v in values]), abs=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=1e5, allow_nan=False),
    st.integers(min_value=1, max_value=40),
)
def test_gini_of_constant_distribution_is_zero(value, n):
    from repro.metrics.incentives import gini

    assert gini([value] * n) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(values_strategy)
def test_gini_permutation_invariant(values):
    from repro.metrics.incentives import gini

    assert gini(values) == pytest.approx(gini(list(reversed(values))), abs=1e-9)


# ----------------------------------------------------------------------
# Freeze/thaw safety
# ----------------------------------------------------------------------
freeze_op = st.tuples(
    st.sampled_from(["lock", "settle_all", "freeze", "unfreeze"]),
    st.floats(min_value=0.01, max_value=40.0, allow_nan=False),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(freeze_op, min_size=1, max_size=40))
def test_freeze_thaw_conserves_funds(operations):
    network = PaymentNetwork()
    channel = network.add_channel(0, 1, 100.0)
    total = network.total_funds()
    pending = []
    for op, amount in operations:
        if op == "lock":
            try:
                pending.append(channel.lock(0, amount))
            except InsufficientFundsError:
                pass
        elif op == "settle_all":
            for htlc in pending:
                channel.settle(htlc)
            pending.clear()
        elif op == "freeze":
            channel.freeze()
        else:
            channel.unfreeze()
        channel.check_invariant()
        assert network.total_funds() == pytest.approx(total)
        if channel.frozen:
            assert channel.available(0) == 0.0
            assert channel.available(1) == 0.0


# ----------------------------------------------------------------------
# AIMD window bounds
# ----------------------------------------------------------------------
ack_strategy = st.tuples(
    st.sampled_from(["settled", "cancelled", "lost"]),
    st.booleans(),  # marked
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # time
)


@settings(max_examples=200, deadline=None)
@given(st.lists(ack_strategy, min_size=1, max_size=60))
def test_window_stays_within_bounds(acks):
    from repro.core.queueing import HopUnit
    from repro.network.htlc import HashLock

    scheme = WindowedSpiderScheme(
        initial_window=100.0, min_window=5.0, max_window=400.0, rtt=0.25
    )
    path = (0, 1, 2)
    for i, (outcome, marked, amount, now) in enumerate(acks):
        payment = Payment(
            payment_id=i, source=0, dest=2, amount=amount, arrival_time=0.0
        )
        payment.register_inflight(amount)
        unit = HopUnit(payment, amount, path, HashLock.generate(i, 0), now=now)
        unit.marked = marked
        scheme.on_unit_resolved(unit, outcome, now)
        state = scheme.window(path)
        assert 5.0 <= state.window <= 400.0
        assert state.inflight >= 0.0


# ----------------------------------------------------------------------
# LND path optimality
# ----------------------------------------------------------------------
@st.composite
def fee_graphs(draw):
    """A small random connected fee-charging network."""
    n = draw(st.integers(min_value=3, max_value=6))
    extra_edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=6,
        )
    )
    fee_rates = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
            min_size=n - 1 + len(extra_edges),
            max_size=n - 1 + len(extra_edges),
        )
    )
    network = PaymentNetwork()
    edges = [(i, i + 1) for i in range(n - 1)]  # a line keeps it connected
    for u, v in extra_edges:
        if u != v and not any({u, v} == {a, b} for a, b in edges):
            edges.append((u, v))
    for (u, v), rate in zip(edges, fee_rates):
        network.add_channel(u, v, 10_000.0, fee_rate=rate)
    return network, n


def brute_force_cheapest(network, source, dest, amount, hop_penalty):
    """Exhaustive cheapest path by total fee + hop penalty."""
    adjacency = {node: sorted(network.neighbors(node)) for node in network.nodes()}
    best_cost, best_path = float("inf"), None
    nodes = sorted(network.nodes())

    def walk(path):
        nonlocal best_cost, best_path
        node = path[-1]
        if node == dest:
            amounts = network.hop_amounts(tuple(path), amount)
            cost = (amounts[0] - amount) + hop_penalty * (len(path) - 1)
            if cost < best_cost - 1e-12:
                best_cost, best_path = cost, tuple(path)
            return
        for neighbor in adjacency[node]:
            if neighbor not in path:
                walk(path + [neighbor])

    walk([source])
    return best_cost, best_path


@settings(max_examples=80, deadline=None)
@given(fee_graphs(), st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
def test_lnd_dijkstra_matches_brute_force(graph_and_n, amount):
    from repro.routing.lnd import LndScheme

    network, n = graph_and_n
    scheme = LndScheme(hop_penalty=0.5)
    scheme._adjacency = {
        node: sorted(network.neighbors(node)) for node in network.nodes()
    }
    source, dest = 0, n - 1
    found = scheme._find_path(network, source, dest, amount, set(), now=0.0)
    expected_cost, _ = brute_force_cheapest(network, source, dest, amount, 0.5)
    assert found is not None
    amounts = network.hop_amounts(found, amount)
    found_cost = (amounts[0] - amount) + 0.5 * (len(found) - 1)
    assert found_cost == pytest.approx(expected_cost, abs=1e-6)


# ----------------------------------------------------------------------
# Backpressure delivers over simple trails
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=4, max_value=7),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=1000),
)
def test_backpressure_settled_trails_are_simple(num_nodes, num_payments, seed):
    from repro.core.runtime import RuntimeConfig
    from repro.metrics.collectors import MetricsCollector
    from repro.routing.backpressure import BackpressureRuntime, CelerScheme
    from repro.simulator.rng import make_rng
    from repro.topology.generators import cycle_topology
    from repro.workload.generator import TransactionRecord

    rng = make_rng(seed)

    class TrailCollector(MetricsCollector):
        def __init__(self):
            super().__init__()
            self.trails = []

        def on_unit_settled(self, unit, now):
            super().on_unit_settled(unit, now)
            self.trails.append(unit.path)

    network = cycle_topology(num_nodes).build_network(default_capacity=60.0)
    records = []
    for i in range(num_payments):
        source = int(rng.integers(0, num_nodes))
        dest = int((source + 1 + rng.integers(0, num_nodes - 1)) % num_nodes)
        records.append(
            TransactionRecord(i, 0.5 + 0.3 * i, source, dest, 10.0 + float(rng.integers(0, 20)))
        )
    collector = TrailCollector()
    runtime = BackpressureRuntime(
        network,
        records,
        CelerScheme(),
        RuntimeConfig(end_time=20.0, check_invariants=True),
        collector=collector,
    )
    runtime.run()
    for trail in collector.trails:
        assert len(set(trail)) == len(trail), f"trail revisits a node: {trail}"
        assert all(
            network.has_channel(a, b) for a, b in zip(trail, trail[1:])
        ), f"trail uses a missing channel: {trail}"
