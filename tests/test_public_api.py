"""Tests for the top-level public API surface."""

from __future__ import annotations

import doctest

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__

    def test_subpackage_all_names_resolve(self):
        import repro.core
        import repro.experiments
        import repro.fluid
        import repro.metrics
        import repro.network
        import repro.routing
        import repro.simulator
        import repro.topology
        import repro.workload

        for module in (
            repro.core,
            repro.experiments,
            repro.fluid,
            repro.metrics,
            repro.network,
            repro.routing,
            repro.simulator,
            repro.topology,
            repro.workload,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestQuickstartDoctest:
    def test_module_docstring_examples_run(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1  # the quickstart example


class TestEndToEndSurface:
    def test_readme_snippet(self):
        """The README quickstart, verbatim in spirit."""
        from repro import ExperimentConfig, run_experiment

        config = ExperimentConfig(
            scheme="spider-waterfilling",
            topology="isp",
            capacity=3_000.0,
            num_transactions=200,
            arrival_rate=100.0,
            sizes="isp",
            seed=42,
        )
        metrics = run_experiment(config)
        assert 0.0 <= metrics.success_ratio <= 1.0
        assert 0.0 <= metrics.success_volume <= 1.0

    def test_throughput_series_covers_active_period(self):
        from repro import ExperimentConfig, run_experiment

        metrics = run_experiment(
            ExperimentConfig(
                scheme="shortest-path",
                topology="cycle-5",
                capacity=5_000.0,
                num_transactions=300,
                arrival_rate=50.0,
                seed=1,
            )
        )
        assert metrics.throughput_series, "settled value must produce a series"
        times = [t for t, _ in metrics.throughput_series]
        values = [v for _, v in metrics.throughput_series]
        assert times == sorted(times)
        assert all(v > 0 for v in values)
        assert sum(values) == pytest.approx(metrics.delivered_value)
