"""Tests for transaction size distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simulator.rng import make_rng
from repro.workload.distributions import (
    ConstantSize,
    EmpiricalSize,
    ExponentialSize,
    TruncatedLognormalSize,
    UniformSize,
    ripple_full_sizes,
    ripple_isp_sizes,
)


class TestConstant:
    def test_samples_are_constant(self):
        sizes = ConstantSize(5.0).sample(make_rng(0), 10)
        assert np.all(sizes == 5.0)

    def test_mean(self):
        assert ConstantSize(7.5).mean == 7.5

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            ConstantSize(0.0)


class TestUniform:
    def test_bounds_respected(self):
        sizes = UniformSize(2.0, 4.0).sample(make_rng(0), 1000)
        assert sizes.min() >= 2.0
        assert sizes.max() <= 4.0

    def test_mean(self):
        assert UniformSize(2.0, 4.0).mean == 3.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigError):
            UniformSize(4.0, 2.0)
        with pytest.raises(ConfigError):
            UniformSize(0.0, 2.0)


class TestExponential:
    def test_mean_approximately_matches(self):
        sizes = ExponentialSize(10.0).sample(make_rng(0), 50_000)
        assert sizes.mean() == pytest.approx(10.0, rel=0.05)

    def test_positive_floor(self):
        sizes = ExponentialSize(1.0, minimum=0.5).sample(make_rng(0), 1000)
        assert sizes.min() >= 0.5

    def test_non_positive_mean_rejected(self):
        with pytest.raises(ConfigError):
            ExponentialSize(-1.0)


class TestTruncatedLognormal:
    def test_isp_calibration(self):
        dist = ripple_isp_sizes()
        sizes = dist.sample(make_rng(0), 100_000)
        # §6.1: mean 170 XRP, largest 1780 XRP.
        assert sizes.mean() == pytest.approx(170.0, rel=0.03)
        assert sizes.max() <= 1780.0

    def test_ripple_calibration(self):
        dist = ripple_full_sizes()
        sizes = dist.sample(make_rng(0), 100_000)
        # §6.1: mean 345 XRP, largest 2892 XRP.
        assert sizes.mean() == pytest.approx(345.0, rel=0.03)
        assert sizes.max() <= 2892.0

    def test_truncation_is_hard(self):
        dist = TruncatedLognormalSize(target_mean=10.0, max_value=20.0)
        sizes = dist.sample(make_rng(1), 10_000)
        assert sizes.max() <= 20.0
        assert sizes.min() > 0.0

    def test_mean_property_reports_target(self):
        assert TruncatedLognormalSize(50.0, 500.0).mean == 50.0

    def test_heavy_tail_relative_to_mean(self):
        sizes = ripple_isp_sizes().sample(make_rng(2), 50_000)
        assert np.percentile(sizes, 99) > 4 * sizes.mean()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            TruncatedLognormalSize(100.0, 50.0)  # mean above max
        with pytest.raises(ConfigError):
            TruncatedLognormalSize(-1.0, 50.0)
        with pytest.raises(ConfigError):
            TruncatedLognormalSize(10.0, 50.0, sigma=0.0)


class TestEmpirical:
    def test_samples_come_from_table(self):
        dist = EmpiricalSize([1.0, 2.0, 3.0])
        sizes = dist.sample(make_rng(0), 1000)
        assert set(np.unique(sizes)) <= {1.0, 2.0, 3.0}

    def test_weighted_mean(self):
        dist = EmpiricalSize([1.0, 3.0], weights=[3.0, 1.0])
        assert dist.mean == pytest.approx(1.5)

    def test_invalid_tables_rejected(self):
        with pytest.raises(ConfigError):
            EmpiricalSize([])
        with pytest.raises(ConfigError):
            EmpiricalSize([1.0, -2.0])
        with pytest.raises(ConfigError):
            EmpiricalSize([1.0], weights=[0.0])


class TestDeterminism:
    def test_same_seed_same_samples(self):
        a = ripple_isp_sizes().sample(make_rng(9), 100)
        b = ripple_isp_sizes().sample(make_rng(9), 100)
        assert np.array_equal(a, b)
