"""Tests for demand matrix estimation and synthetic demand construction."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fluid.circulation import PaymentGraph, decompose_payment_graph
from repro.workload.demand import (
    circulation_demand,
    dag_demand,
    estimate_demand_matrix,
    mixed_demand,
    payment_graph_from_records,
    records_from_demand,
)
from repro.workload.generator import TransactionRecord


def record(txn_id, t, source, dest, amount):
    return TransactionRecord(txn_id, t, source, dest, amount)


class TestEstimation:
    def test_rates_are_value_per_second(self):
        records = [record(0, 1.0, 0, 1, 30.0), record(1, 10.0, 0, 1, 70.0)]
        demands = estimate_demand_matrix(records, duration=10.0)
        assert demands[(0, 1)] == pytest.approx(10.0)

    def test_duration_defaults_to_last_arrival(self):
        records = [record(0, 2.0, 0, 1, 10.0), record(1, 5.0, 1, 2, 20.0)]
        demands = estimate_demand_matrix(records)
        assert demands[(0, 1)] == pytest.approx(2.0)
        assert demands[(1, 2)] == pytest.approx(4.0)

    def test_empty_trace(self):
        assert estimate_demand_matrix([]) == {}

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigError):
            estimate_demand_matrix([record(0, 1.0, 0, 1, 1.0)], duration=0.0)

    def test_payment_graph_from_records(self):
        records = [record(0, 1.0, 0, 1, 10.0)]
        graph = payment_graph_from_records(records, duration=1.0)
        assert isinstance(graph, PaymentGraph)
        assert graph.rate(0, 1) == pytest.approx(10.0)


class TestCirculationDemand:
    def test_is_pure_circulation(self):
        demands = circulation_demand(range(12), 100.0, seed=0)
        decomposition = decompose_payment_graph(PaymentGraph(demands))
        assert decomposition.value == pytest.approx(100.0)
        assert decomposition.dag_value == pytest.approx(0.0)

    def test_total_rate_exact(self):
        demands = circulation_demand(range(12), 55.5, seed=1)
        assert sum(demands.values()) == pytest.approx(55.5)

    def test_deterministic(self):
        assert circulation_demand(range(10), 10.0, seed=4) == circulation_demand(
            range(10), 10.0, seed=4
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            circulation_demand(range(2), 10.0)
        with pytest.raises(ConfigError):
            circulation_demand(range(10), -1.0)
        with pytest.raises(ConfigError):
            circulation_demand(range(10), 1.0, cycle_length=(3, 50))


class TestDagDemand:
    def test_has_zero_circulation(self):
        demands = dag_demand(range(12), 100.0, num_pairs=8, seed=0)
        decomposition = decompose_payment_graph(PaymentGraph(demands))
        assert decomposition.value == pytest.approx(0.0)
        assert decomposition.dag_value == pytest.approx(100.0)

    def test_total_rate_exact(self):
        demands = dag_demand(range(12), 42.0, seed=2)
        assert sum(demands.values()) == pytest.approx(42.0)


class TestMixedDemand:
    def test_total_rate(self):
        demands = mixed_demand(range(15), 100.0, circulation_fraction=0.6, seed=0)
        assert sum(demands.values()) == pytest.approx(100.0)

    def test_extremes_match_pure_constructors(self):
        pure_circ = mixed_demand(range(15), 50.0, 1.0, seed=1)
        decomposition = decompose_payment_graph(PaymentGraph(pure_circ))
        assert decomposition.value == pytest.approx(50.0)
        pure_dag = mixed_demand(range(15), 50.0, 0.0, seed=1)
        decomposition = decompose_payment_graph(PaymentGraph(pure_dag))
        assert decomposition.value == pytest.approx(0.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            mixed_demand(range(10), 10.0, 1.5)


class TestRecordsFromDemand:
    def test_rates_recovered_in_expectation(self):
        demands = {(0, 1): 50.0, (2, 3): 25.0}
        records = records_from_demand(demands, duration=200.0, mean_size=5.0, seed=0)
        estimated = estimate_demand_matrix(records, duration=200.0)
        assert estimated[(0, 1)] == pytest.approx(50.0, rel=0.2)
        assert estimated[(2, 3)] == pytest.approx(25.0, rel=0.2)

    def test_records_sorted_and_renumbered(self):
        demands = {(0, 1): 10.0, (1, 2): 10.0}
        records = records_from_demand(demands, duration=50.0, mean_size=5.0, seed=1)
        assert [r.txn_id for r in records] == list(range(len(records)))
        times = [r.arrival_time for r in records]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ConfigError):
            records_from_demand({}, duration=0.0, mean_size=1.0)
        with pytest.raises(ConfigError):
            records_from_demand({}, duration=1.0, mean_size=0.0)
