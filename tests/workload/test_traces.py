"""Tests for trace serialisation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workload.generator import TransactionRecord
from repro.workload.traces import dump_trace, dumps_trace, load_trace, loads_trace


@pytest.fixture
def records():
    return [
        TransactionRecord(0, 0.5, 1, 2, 17.25),
        TransactionRecord(1, 1.5, 2, 3, 3.125, deadline=11.5),
    ]


class TestRoundtrip:
    def test_string_roundtrip(self, records):
        assert loads_trace(dumps_trace(records)) == records

    def test_file_roundtrip(self, records, tmp_path):
        path = tmp_path / "trace.csv"
        dump_trace(records, path)
        assert load_trace(path) == records

    def test_deadline_preserved(self, records):
        parsed = loads_trace(dumps_trace(records))
        assert parsed[0].deadline is None
        assert parsed[1].deadline == 11.5

    def test_comments_ignored(self):
        assert loads_trace("# comment\n\n") == []


class TestErrors:
    def test_wrong_field_count_rejected(self):
        with pytest.raises(ConfigError):
            loads_trace("1,2,3\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigError):
            loads_trace("a,b,c,d,e\n")
