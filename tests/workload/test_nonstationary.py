"""Tests for non-stationary workload construction."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.workload.demand import (
    estimate_demand_matrix,
    rotating_records_from_demand,
)
from repro.workload.generator import TransactionRecord, WorkloadConfig, generate_workload
from repro.workload.nonstationary import phase_interleave, stretch_records


def trace(seed, n=200):
    return generate_workload(
        range(10), WorkloadConfig(num_transactions=n, arrival_rate=50.0, seed=seed)
    )


class TestStretch:
    def test_times_scale(self):
        records = trace(1, n=50)
        stretched = stretch_records(records, 2.0)
        assert stretched[-1].arrival_time == pytest.approx(
            2.0 * records[-1].arrival_time
        )

    def test_contents_preserved(self):
        records = trace(1, n=50)
        stretched = stretch_records(records, 3.0)
        assert Counter((r.source, r.dest, r.amount) for r in records) == Counter(
            (r.source, r.dest, r.amount) for r in stretched
        )

    def test_invalid_factor(self):
        with pytest.raises(ConfigError):
            stretch_records([], 0.0)


class TestPhaseInterleave:
    def test_both_modes_have_identical_transactions(self):
        a, b = trace(1), trace(2)
        stationary = phase_interleave(a, b, 2.0, rotate=False)
        rotating = phase_interleave(a, b, 2.0, rotate=True)
        key = lambda rs: Counter((r.source, r.dest, round(r.amount, 9)) for r in rs)
        assert key(stationary) == key(rotating)
        assert len(stationary) == len(a) + len(b)

    def test_long_run_demand_matrices_match(self):
        a, b = trace(1), trace(2)
        stationary = phase_interleave(a, b, 2.0, rotate=False)
        rotating = phase_interleave(a, b, 2.0, rotate=True)
        duration = max(
            stationary[-1].arrival_time, rotating[-1].arrival_time
        )
        d1 = estimate_demand_matrix(stationary, duration)
        d2 = estimate_demand_matrix(rotating, duration)
        assert set(d1) == set(d2)
        for pair in d1:
            assert d1[pair] == pytest.approx(d2[pair])

    def test_rotation_separates_patterns_in_time(self):
        a, b = trace(1), trace(2)
        length = 2.0
        rotating = phase_interleave(a, b, length, rotate=True)
        a_keys = {(r.source, r.dest, round(r.amount, 9)) for r in a}
        for record in rotating:
            window = int(record.arrival_time // length)
            is_a = (record.source, record.dest, round(record.amount, 9)) in a_keys
            if is_a:
                assert window % 2 == 0
        # And the stationary mode mixes them.
        stationary = phase_interleave(a, b, length, rotate=False)
        windows_with_a = set()
        for record in stationary:
            if (record.source, record.dest, round(record.amount, 9)) in a_keys:
                windows_with_a.add(int(record.arrival_time // length) % 2)
        assert windows_with_a == {0, 1}

    def test_ids_follow_arrival_order(self):
        a, b = trace(1, n=30), trace(2, n=30)
        combined = phase_interleave(a, b, 1.0, rotate=True)
        assert [r.txn_id for r in combined] == list(range(60))
        times = [r.arrival_time for r in combined]
        assert times == sorted(times)

    def test_invalid_phase_length(self):
        with pytest.raises(ConfigError):
            phase_interleave([], [], 0.0, rotate=True)


class TestRotatingRecordsFromDemand:
    def test_long_run_rate_matches_demand(self):
        demands = {(0, 1): 40.0, (2, 3): 40.0, (4, 5): 40.0, (6, 7): 40.0}
        records = rotating_records_from_demand(
            demands, duration=100.0, mean_size=4.0, num_phases=2, phase_length=5.0, seed=1
        )
        estimated = estimate_demand_matrix(records, duration=100.0)
        for pair, rate in demands.items():
            assert estimated[pair] == pytest.approx(rate, rel=0.25)

    def test_pairs_are_active_only_in_their_windows(self):
        demands = {(0, 1): 50.0, (2, 3): 50.0}
        records = rotating_records_from_demand(
            demands, duration=40.0, mean_size=2.0, num_phases=2, phase_length=5.0, seed=1
        )
        for record in records:
            window = int(record.arrival_time // 5.0)
            if (record.source, record.dest) == (0, 1):
                assert window % 2 == 0
            else:
                assert window % 2 == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            rotating_records_from_demand({}, 10.0, 1.0, num_phases=0, phase_length=1.0)
        with pytest.raises(ConfigError):
            rotating_records_from_demand({}, 10.0, 1.0, num_phases=2, phase_length=0.0)
        with pytest.raises(ConfigError):
            rotating_records_from_demand({}, 0.0, 1.0, num_phases=2, phase_length=1.0)
        with pytest.raises(ConfigError):
            rotating_records_from_demand({}, 10.0, 0.0, num_phases=2, phase_length=1.0)
