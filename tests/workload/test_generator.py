"""Tests for workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.distributions import ConstantSize
from repro.workload.generator import TransactionRecord, WorkloadConfig, generate_workload


def make_config(**overrides):
    defaults = dict(num_transactions=500, arrival_rate=100.0, seed=3)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestGeneration:
    def test_trace_length(self):
        records = generate_workload(range(10), make_config())
        assert len(records) == 500

    def test_arrival_times_are_increasing(self):
        records = generate_workload(range(10), make_config())
        times = [r.arrival_time for r in records]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_arrival_rate_approximately_respected(self):
        records = generate_workload(range(10), make_config(num_transactions=5000))
        duration = records[-1].arrival_time
        assert 5000 / duration == pytest.approx(100.0, rel=0.1)

    def test_sources_differ_from_destinations(self):
        records = generate_workload(range(5), make_config())
        assert all(r.source != r.dest for r in records)

    def test_nodes_are_from_supplied_set(self):
        nodes = [3, 7, 11, 19]
        records = generate_workload(nodes, make_config())
        used = {r.source for r in records} | {r.dest for r in records}
        assert used <= set(nodes)

    def test_sender_distribution_is_skewed(self):
        # Exponential sender popularity: busiest sender should dominate.
        records = generate_workload(range(20), make_config(num_transactions=5000))
        counts = {}
        for r in records:
            counts[r.source] = counts.get(r.source, 0) + 1
        values = sorted(counts.values(), reverse=True)
        assert values[0] > 3 * np.median(values)

    def test_size_distribution_is_used(self):
        config = make_config(size_distribution=ConstantSize(42.0))
        records = generate_workload(range(5), config)
        assert all(r.amount == 42.0 for r in records)

    def test_deadline_is_relative_to_arrival(self):
        config = make_config(deadline=5.0)
        records = generate_workload(range(5), config)
        assert all(r.deadline == pytest.approx(r.arrival_time + 5.0) for r in records)

    def test_determinism(self):
        a = generate_workload(range(8), make_config())
        b = generate_workload(range(8), make_config())
        assert a == b

    def test_seed_changes_trace(self):
        a = generate_workload(range(8), make_config(seed=1))
        b = generate_workload(range(8), make_config(seed=2))
        assert a != b


class TestRotation:
    def test_rotation_changes_sender_mix_over_time(self):
        quiet = generate_workload(
            range(30), make_config(num_transactions=6000, rotation_interval=None)
        )
        rotating = generate_workload(
            range(30),
            make_config(num_transactions=6000, rotation_interval=5.0),
        )

        def top_sender(records):
            counts = {}
            for r in records:
                counts[r.source] = counts.get(r.source, 0) + 1
            return max(counts, key=counts.get)

        halves_quiet = {top_sender(quiet[:3000]), top_sender(quiet[3000:])}
        halves_rotating = {top_sender(rotating[:3000]), top_sender(rotating[3000:])}
        # The stationary trace keeps one dominant sender over both halves;
        # the rotating trace (almost surely) does not.
        assert len(halves_quiet) == 1
        assert len(halves_rotating) == 2


class TestValidation:
    def test_too_few_nodes_rejected(self):
        with pytest.raises(ConfigError):
            generate_workload([1], make_config())

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(num_transactions=0, arrival_rate=1.0)
        with pytest.raises(ConfigError):
            WorkloadConfig(num_transactions=1, arrival_rate=0.0)
        with pytest.raises(ConfigError):
            WorkloadConfig(num_transactions=1, arrival_rate=1.0, rotation_interval=0.0)
        with pytest.raises(ConfigError):
            WorkloadConfig(num_transactions=1, arrival_rate=1.0, deadline=-1.0)
