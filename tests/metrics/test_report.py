"""Tests for table rendering."""

from __future__ import annotations

from repro.metrics.report import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert all(len(line) >= len("a    bbbb") - 1 for line in lines[:2])

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_none_renders_empty(self):
        text = format_table(["x", "y"], [[None, 1]])
        assert "None" not in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
