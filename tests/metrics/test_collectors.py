"""Tests for metrics collection."""

from __future__ import annotations

import pytest

from repro.core.payments import Payment, TransactionUnit
from repro.metrics.collectors import MetricsCollector
from repro.network.network import PaymentNetwork


def make_payment(pid=0, amount=100.0, arrival=1.0):
    return Payment(payment_id=pid, source=0, dest=1, amount=amount, arrival_time=arrival)


def make_unit(payment, amount):
    payment.register_inflight(amount)
    return TransactionUnit.create(payment, amount, (0, 1), [], None, sent_at=1.0)


@pytest.fixture
def network():
    net = PaymentNetwork()
    net.add_channel(0, 1, 100.0)
    return net


class TestCollector:
    def test_success_ratio(self, network):
        collector = MetricsCollector()
        for pid in range(4):
            collector.on_payment_arrival(make_payment(pid))
        done = make_payment(10)
        collector.on_payment_completed(done, now=2.0)
        metrics = collector.finalize("x", network, duration=10.0)
        assert metrics.attempted == 4
        assert metrics.success_ratio == 0.25

    def test_success_volume_counts_partials(self, network):
        collector = MetricsCollector()
        payment = make_payment(0, amount=100.0)
        collector.on_payment_arrival(payment)
        unit = make_unit(payment, 30.0)
        collector.on_unit_settled(unit, now=2.0)
        metrics = collector.finalize("x", network, duration=10.0)
        assert metrics.success_volume == pytest.approx(0.3)
        assert metrics.delivered_value == 30.0

    def test_latency_percentiles(self, network):
        collector = MetricsCollector()
        for pid, latency in enumerate([1.0, 2.0, 3.0]):
            payment = make_payment(pid, arrival=0.0)
            collector.on_payment_arrival(payment)
            collector.on_payment_completed(payment, now=latency)
        metrics = collector.finalize("x", network, duration=10.0)
        assert metrics.mean_completion_latency == pytest.approx(2.0)
        assert metrics.p50_completion_latency == pytest.approx(2.0)

    def test_no_completions_yields_none_latency(self, network):
        collector = MetricsCollector()
        metrics = collector.finalize("x", network, duration=10.0)
        assert metrics.mean_completion_latency is None
        assert metrics.success_ratio == 0.0
        assert metrics.success_volume == 0.0

    def test_throughput_series_buckets(self, network):
        collector = MetricsCollector(throughput_bucket=1.0)
        payment = make_payment(0, amount=100.0)
        collector.on_payment_arrival(payment)
        collector.on_unit_settled(make_unit(payment, 10.0), now=0.5)
        collector.on_unit_settled(make_unit(payment, 20.0), now=0.9)
        collector.on_unit_settled(make_unit(payment, 5.0), now=2.5)
        metrics = collector.finalize("x", network, duration=3.0)
        assert metrics.throughput_series == [(0.0, 30.0), (2.0, 5.0)]

    def test_channel_imbalance_reported(self, network):
        htlc = network.channel(0, 1).lock(0, 30.0)
        network.channel(0, 1).settle(htlc)
        collector = MetricsCollector()
        metrics = collector.finalize("x", network, duration=1.0)
        assert metrics.mean_channel_imbalance == pytest.approx(60.0)
        assert metrics.max_channel_imbalance == pytest.approx(60.0)

    def test_unit_counters(self, network):
        collector = MetricsCollector()
        payment = make_payment(0, amount=50.0)
        collector.on_payment_arrival(payment)
        settled = make_unit(payment, 10.0)
        cancelled = make_unit(payment, 10.0)
        collector.on_unit_settled(settled, now=1.0)
        collector.on_unit_cancelled(cancelled, now=1.0)
        metrics = collector.finalize("x", network, duration=1.0)
        assert metrics.units_settled == 1
        assert metrics.units_cancelled == 1

    def test_as_row_shape(self, network):
        metrics = MetricsCollector().finalize("myscheme", network, duration=1.0)
        row = metrics.as_row()
        assert row["scheme"] == "myscheme"
        assert "success_ratio_%" in row

    def test_invalid_bucket_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(throughput_bucket=0.0)
