"""Tests for router economics (fee revenue, escrow, yield, Gini)."""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.metrics.incentives import (
    IncentiveCollector,
    escrow_by_node,
    fee_yield_report,
    gini,
)
from repro.network.network import PaymentNetwork
from repro.routing import make_scheme
from repro.topology.generators import line_topology, star_topology
from repro.workload.generator import TransactionRecord


def run_with_fees(network, records, end_time=30.0):
    collector = IncentiveCollector()
    runtime = Runtime(
        network,
        records,
        make_scheme("shortest-path"),
        RuntimeConfig(end_time=end_time, check_invariants=True),
        collector=collector,
    )
    metrics = runtime.run()
    return metrics, collector


class TestRevenueAttribution:
    def fee_line(self, fee_rate=0.1):
        """0—1—2—3 where every channel charges ``fee_rate`` proportional."""
        network = PaymentNetwork()
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            network.add_channel(u, v, 1_000.0, fee_rate=fee_rate)
        return network

    def test_intermediaries_earn_their_hop_fee(self):
        network = self.fee_line(fee_rate=0.1)
        metrics, collector = run_with_fees(
            network, [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        )
        assert metrics.completed == 1
        # Working back from 100 delivered: node 2 charges 10 (fee of channel
        # 2-3 on 100), node 1 charges 11 (fee of channel 1-2 on 110).
        assert collector.router_revenue[2] == pytest.approx(10.0)
        assert collector.router_revenue[1] == pytest.approx(11.0)
        assert 0 not in collector.router_revenue  # senders earn nothing
        assert 3 not in collector.router_revenue  # receivers earn nothing

    def test_revenue_matches_total_fees_paid(self):
        network = self.fee_line(fee_rate=0.05)
        records = [
            TransactionRecord(0, 1.0, 0, 3, 50.0),
            TransactionRecord(1, 2.0, 3, 0, 80.0),
        ]
        metrics, collector = run_with_fees(network, records)
        assert sum(collector.router_revenue.values()) == pytest.approx(
            metrics.total_fees_paid
        )

    def test_forwarded_value_counts_only_relay_traffic(self):
        network = self.fee_line(fee_rate=0.0)
        metrics, collector = run_with_fees(
            network, [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        )
        assert collector.router_forwarded[1] == pytest.approx(100.0)
        assert collector.router_forwarded[2] == pytest.approx(100.0)
        assert collector.router_revenue == {}  # fee-free network

    def test_cancelled_units_earn_nothing(self):
        network = self.fee_line(fee_rate=0.1)
        # Deadline shorter than the confirmation delay: the unit settles
        # too late and is withheld.
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0, deadline=1.1)]
        metrics, collector = run_with_fees(network, records)
        assert metrics.completed == 0
        assert collector.router_revenue == {}


class TestEscrow:
    def test_escrow_by_node_even_split(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        escrow = escrow_by_node(network)
        assert escrow[0] == pytest.approx(50.0)
        assert escrow[1] == pytest.approx(100.0)  # two channels
        assert escrow[2] == pytest.approx(50.0)

    def test_escrow_includes_inflight(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        network.channel(0, 1).lock(0, 20.0)
        escrow = escrow_by_node(network)
        assert escrow[0] == pytest.approx(50.0)  # 30 spendable + 20 in flight


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini(values) == pytest.approx(0.99, abs=0.01)

    def test_empty_and_zero_inputs(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            gini([1.0, -2.0])

    def test_known_value(self):
        # For [1, 2, 3]: G = (2*(1*1+2*2+3*3))/(3*6) - 4/3 = 28/18 - 4/3 = 2/9.
        assert gini([1.0, 2.0, 3.0]) == pytest.approx(2.0 / 9.0)


class TestYieldReport:
    def test_hub_earns_the_yield(self):
        # A star: every payment relays through the hub (node 0).
        network = star_topology(5).build_network(default_capacity=1_000.0)
        for channel in network.channels():
            channel.fee_rate = 0.01
        initial = escrow_by_node(network)
        records = [
            TransactionRecord(i, 1.0 + 0.1 * i, 1 + i % 4, 1 + (i + 1) % 4, 50.0)
            for i in range(8)
        ]
        collector = IncentiveCollector()
        runtime = Runtime(
            network,
            records,
            make_scheme("shortest-path"),
            RuntimeConfig(end_time=30.0),
            collector=collector,
        )
        runtime.run()
        report = fee_yield_report(collector, initial, duration=30.0)
        assert report[0].node == 0  # hub tops the revenue table
        assert report[0].revenue == pytest.approx(8 * 0.5)
        assert report[0].fee_yield > 0
        leaf_rows = [r for r in report if r.node != 0]
        assert all(r.revenue == 0.0 for r in leaf_rows)
        revenue_gini = gini([r.revenue for r in report])
        assert revenue_gini > 0.7  # hub topology concentrates income

    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            fee_yield_report(IncentiveCollector(), {}, duration=0.0)

    def test_zero_escrow_yields_zero(self):
        collector = IncentiveCollector()
        report = fee_yield_report(collector, {7: 0.0}, duration=10.0)
        assert report[0].fee_yield == 0.0
