"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.network import PaymentNetwork
from repro.simulator.engine import Simulator
from repro.topology.examples import FIG4_DEMANDS, fig4_topology
from repro.topology.generators import line_topology


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator starting at t=0."""
    return Simulator()


@pytest.fixture
def fig4():
    """The paper's 5-node example topology."""
    return fig4_topology()


@pytest.fixture
def fig4_demands():
    """The paper's example demand matrix."""
    return dict(FIG4_DEMANDS)


@pytest.fixture
def line3() -> PaymentNetwork:
    """A 3-node line network 0—1—2 with capacity 100 per channel, split evenly."""
    return line_topology(3).build_network(default_capacity=100.0)


@pytest.fixture
def triangle() -> PaymentNetwork:
    """A 3-cycle network with capacity 100 per channel."""
    network = PaymentNetwork()
    for u, v in [(0, 1), (1, 2), (0, 2)]:
        network.add_channel(u, v, 100.0)
    return network
