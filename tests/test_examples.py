"""Smoke tests: every example script runs cleanly and prints something.

The examples are the documentation users actually execute; the suite
keeps them from rotting as the library evolves.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    # The deliverable demands at least three runnable examples.
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda path: path.stem
)
def test_example_runs_and_prints(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
