"""Tests for the simulation runtime: unit transmission, settlement, deadlines."""

from __future__ import annotations

import math

import pytest

from repro.core.payments import PaymentState
from repro.core.runtime import Runtime, RuntimeConfig
from repro.errors import ConfigError
from repro.routing.base import RoutingScheme
from repro.topology.generators import line_topology
from repro.workload.generator import TransactionRecord


def line_path(source, dest):
    """Node sequence between two nodes of a line topology (either direction)."""
    step = 1 if dest >= source else -1
    return tuple(range(source, dest + step, step))


class SingleShotScheme(RoutingScheme):
    """Sends the whole payment along the line path once per attempt."""

    name = "test-single-shot"
    atomic = False

    def attempt(self, payment, runtime):
        runtime.send_on_path(payment, line_path(payment.source, payment.dest))


class AtomicLineScheme(RoutingScheme):
    name = "test-atomic"
    atomic = True

    def attempt(self, payment, runtime):
        path = line_path(payment.source, payment.dest)
        if not runtime.send_atomic(payment, [(path, payment.amount)]):
            runtime.fail_payment(payment)


class NullScheme(RoutingScheme):
    """Never sends anything."""

    name = "test-null"
    atomic = False

    def attempt(self, payment, runtime):
        return None


def make_runtime(records, scheme=None, capacity=100.0, nodes=3, **config_kwargs):
    network = line_topology(nodes).build_network(default_capacity=capacity)
    config = RuntimeConfig(**config_kwargs)
    return Runtime(network, records, scheme or SingleShotScheme(), config)


def record(txn_id, t, source, dest, amount, deadline=None):
    return TransactionRecord(txn_id, t, source, dest, amount, deadline)


class TestBasicDelivery:
    def test_single_payment_completes_after_delay(self):
        runtime = make_runtime([record(0, 1.0, 0, 2, 10.0)], confirmation_delay=0.5)
        metrics = runtime.run()
        assert metrics.completed == 1
        assert metrics.success_ratio == 1.0
        assert metrics.success_volume == pytest.approx(1.0)
        payment = runtime.payments[0]
        assert payment.completed_at == pytest.approx(1.5)

    def test_funds_move_end_to_end(self):
        runtime = make_runtime([record(0, 1.0, 0, 2, 10.0)])
        runtime.run()
        network = runtime.network
        assert network.channel(0, 1).balance(0) == pytest.approx(40.0)
        assert network.channel(1, 2).balance(2) == pytest.approx(60.0)
        # Relay node 1 is flat.
        relay_total = network.channel(0, 1).balance(1) + network.channel(1, 2).balance(1)
        assert relay_total == pytest.approx(100.0)
        network.check_invariants()

    def test_oversized_payment_partially_delivers(self):
        # 80 > bottleneck 50: first attempt sends 50, the poll retries the
        # rest once the settlement frees... nothing (one-way traffic), so 30
        # remains undelivered.
        runtime = make_runtime([record(0, 1.0, 0, 2, 80.0)], end_time=20.0)
        metrics = runtime.run()
        assert metrics.completed == 0
        assert metrics.delivered_value == pytest.approx(50.0)
        assert metrics.success_volume == pytest.approx(50.0 / 80.0)
        assert metrics.failed == 1

    def test_reverse_traffic_replenishes_capacity(self):
        # Two opposing payments of 50: after the first settles, the reverse
        # direction has funds again (the balance argument of §5).
        records = [record(0, 1.0, 0, 2, 50.0), record(1, 2.0, 2, 0, 50.0)]
        runtime = make_runtime(records, end_time=20.0)
        metrics = runtime.run()
        assert metrics.completed == 2

    def test_pending_payment_retries_on_poll(self):
        # Payment 1 exhausts the path; payment 2 waits and completes after
        # payment 1's reverse flow... there is none, so instead: payment 2
        # fits after payment 1 settles only if capacity remains.  Use small
        # amounts so both fit sequentially.
        records = [record(0, 1.0, 0, 2, 40.0), record(1, 1.1, 0, 2, 40.0)]
        runtime = make_runtime(records, end_time=30.0, poll_interval=0.5)
        metrics = runtime.run()
        # First takes 40 of 50; second sends 10 immediately, then 30 more
        # as... no reverse flow exists, so second delivers only 10.
        assert runtime.payments[0].is_complete
        assert metrics.delivered_value == pytest.approx(50.0)


class TestMtu:
    def test_mtu_bounds_unit_size(self):
        runtime = make_runtime(
            [record(0, 1.0, 0, 2, 30.0)], mtu=10.0, end_time=10.0
        )
        metrics = runtime.run()
        assert metrics.completed == 1
        assert metrics.units_settled == 3  # 30 / 10

    def test_unbounded_mtu_sends_single_unit(self):
        runtime = make_runtime([record(0, 1.0, 0, 2, 30.0)], end_time=10.0)
        metrics = runtime.run()
        assert metrics.units_settled == 1


class TestDeadlines:
    def test_expired_pending_payment_fails(self):
        records = [record(0, 1.0, 0, 2, 80.0, deadline=3.0)]
        runtime = make_runtime(records, end_time=20.0)
        metrics = runtime.run()
        payment = runtime.payments[0]
        assert payment.state is PaymentState.FAILED
        assert metrics.failed == 1

    def test_units_settling_after_deadline_are_withheld(self):
        # Deadline falls inside the confirmation delay: the sender withholds
        # the key, the unit refunds, no value is delivered (§4.1).
        records = [record(0, 1.0, 0, 2, 10.0, deadline=1.2)]
        runtime = make_runtime(records, confirmation_delay=0.5, end_time=10.0)
        metrics = runtime.run()
        assert metrics.delivered_value == 0.0
        assert metrics.units_cancelled == 1
        assert runtime.payments[0].state is PaymentState.FAILED
        runtime.network.check_invariants()
        assert runtime.network.total_inflight() == 0.0


class TestAtomicSchemes:
    def test_atomic_success(self):
        runtime = make_runtime([record(0, 1.0, 0, 2, 50.0)], scheme=AtomicLineScheme())
        metrics = runtime.run()
        assert metrics.completed == 1

    def test_atomic_failure_is_immediate_and_final(self):
        runtime = make_runtime(
            [record(0, 1.0, 0, 2, 60.0)], scheme=AtomicLineScheme(), end_time=20.0
        )
        metrics = runtime.run()
        assert metrics.failed == 1
        assert metrics.delivered_value == 0.0
        # No retry: exactly one attempt happened.
        assert runtime.payments[0].attempts == 1

    def test_atomic_payments_are_not_re_polled(self):
        records = [record(0, 1.0, 0, 2, 60.0), record(1, 1.5, 0, 2, 10.0)]
        runtime = make_runtime(records, scheme=AtomicLineScheme(), end_time=20.0)
        metrics = runtime.run()
        assert metrics.completed == 1  # the small one
        assert runtime.payments[0].attempts == 1


class TestEndOfRun:
    def test_unfinished_payments_fail_at_end(self):
        runtime = make_runtime([record(0, 1.0, 0, 2, 80.0)], scheme=NullScheme(), end_time=5.0)
        metrics = runtime.run()
        assert metrics.failed == 1
        assert metrics.attempted == 1

    def test_end_time_cuts_the_trace(self):
        records = [record(0, 1.0, 0, 2, 10.0), record(1, 100.0, 0, 2, 10.0)]
        runtime = make_runtime(records, end_time=5.0)
        metrics = runtime.run()
        assert metrics.attempted == 1

    def test_default_end_time_covers_trace(self):
        records = [record(0, 1.0, 0, 2, 10.0), record(1, 7.0, 0, 2, 10.0)]
        runtime = make_runtime(records)
        metrics = runtime.run()
        assert metrics.attempted == 2
        assert metrics.completed == 2

    def test_metrics_duration_matches_end_time(self):
        runtime = make_runtime([record(0, 1.0, 0, 2, 10.0)], end_time=42.0)
        assert runtime.run().duration == 42.0


class TestSendUnitEdgeCases:
    def test_dust_units_are_not_sent(self):
        runtime = make_runtime(
            [record(0, 1.0, 0, 2, 0.0005)], min_unit_value=0.001, end_time=5.0
        )
        metrics = runtime.run()
        assert metrics.delivered_value == 0.0

    def test_invariant_checking_mode(self):
        runtime = make_runtime(
            [record(0, 1.0, 0, 2, 10.0)], check_invariants=True, end_time=5.0
        )
        metrics = runtime.run()
        assert metrics.completed == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(confirmation_delay=-1.0)
        with pytest.raises(ConfigError):
            RuntimeConfig(poll_interval=0.0)
        with pytest.raises(ConfigError):
            RuntimeConfig(mtu=0.0)
        with pytest.raises(ConfigError):
            RuntimeConfig(scheduling_policy="bogus")


class TestSchedulingIntegration:
    def test_srpt_lets_small_payment_jump_queue(self):
        """Two queued payments compete for capacity freed over time; SRPT
        serves the smaller one first."""
        # Saturate the path with a big payment, then queue one small and one
        # medium payment.  The freed capacity (from reverse flow) goes to
        # the small one first under SRPT.
        records = [
            record(0, 1.0, 0, 2, 50.0),  # consumes all 0->2 capacity
            record(1, 1.1, 0, 2, 30.0),  # medium, queued
            record(2, 1.2, 0, 2, 5.0),   # small, queued
            record(3, 2.0, 2, 0, 20.0),  # reverse: frees 20 after settling
        ]
        runtime = make_runtime(records, end_time=30.0, poll_interval=0.5)
        runtime.run()
        small = runtime.payments[2]
        medium = runtime.payments[1]
        assert small.is_complete
        # The medium payment got at most the leftover (20 - 5 = 15).
        assert medium.delivered <= 15.0 + 1e-6
