"""Tests for routing fees (§2, §4.1's max-fee budget)."""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.core.waterfilling import WaterfillingScheme
from repro.routing.shortest_path import ShortestPathScheme
from repro.topology.generators import line_topology
from repro.workload.generator import TransactionRecord


def fee_network(base_fee=0.0, fee_rate=0.0, nodes=4, capacity=1000.0):
    return line_topology(nodes).build_network(
        default_capacity=capacity, base_fee=base_fee, fee_rate=fee_rate
    )


def run(network, records, **config_kwargs):
    config = RuntimeConfig(end_time=20.0, check_invariants=True, **config_kwargs)
    runtime = Runtime(network, records, ShortestPathScheme(), config)
    return runtime.run(), runtime


class TestHopAmounts:
    def test_fee_free_network_locks_flat(self):
        network = fee_network()
        assert network.hop_amounts((0, 1, 2, 3), 100.0) == [100.0, 100.0, 100.0]

    def test_proportional_fees_compound_upstream(self):
        network = fee_network(fee_rate=0.01)
        amounts = network.hop_amounts((0, 1, 2, 3), 100.0)
        # Last hop delivers 100; node 2 charges 1% of 100; node 1 charges 1%
        # of 101.
        assert amounts[2] == pytest.approx(100.0)
        assert amounts[1] == pytest.approx(101.0)
        assert amounts[0] == pytest.approx(102.01)

    def test_base_fees_add_per_intermediate(self):
        network = fee_network(base_fee=2.0)
        amounts = network.hop_amounts((0, 1, 2, 3), 100.0)
        assert amounts == pytest.approx([104.0, 102.0, 100.0])

    def test_direct_path_has_no_fee(self):
        network = fee_network(base_fee=5.0, fee_rate=0.1)
        # No intermediaries on a single hop: sender pays exactly the amount.
        assert network.hop_amounts((0, 1), 100.0) == [100.0]


class TestFeeSettlement:
    def test_intermediaries_earn_their_fee(self):
        network = fee_network(base_fee=2.0)
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        metrics, runtime = run(network, records)
        assert metrics.completed == 1
        assert metrics.total_fees_paid == pytest.approx(4.0)
        assert runtime.payments[0].fees_paid == pytest.approx(4.0)
        # Router 1 received 104 on (0,1) and forwarded 102 on (1,2): +2 net.
        node1_total = network.channel(0, 1).balance(1) + network.channel(1, 2).balance(1)
        assert node1_total == pytest.approx(1000.0 + 2.0)
        node2_total = network.channel(1, 2).balance(2) + network.channel(2, 3).balance(2)
        assert node2_total == pytest.approx(1000.0 + 2.0)
        # The destination receives exactly the payment amount.
        assert network.channel(2, 3).balance(3) == pytest.approx(500.0 + 100.0)
        network.check_invariants()

    def test_sender_pays_amount_plus_fees(self):
        network = fee_network(base_fee=2.0)
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        run(network, records)
        assert network.channel(0, 1).balance(0) == pytest.approx(500.0 - 104.0)

    def test_refund_returns_fees_too(self):
        network = fee_network(base_fee=2.0)
        # Expired at settlement: everything refunds, including fee margins.
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0, 1.2)]
        metrics, runtime = run(network, records)
        assert metrics.delivered_value == 0.0
        assert metrics.total_fees_paid == 0.0
        assert network.channel(0, 1).balance(0) == pytest.approx(500.0)
        network.check_invariants()

    def test_fee_free_default_is_unchanged(self):
        network = fee_network()
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        metrics, _ = run(network, records)
        assert metrics.total_fees_paid == 0.0


class TestMaxFeeBudget:
    def test_unit_blocked_when_fee_exceeds_budget(self):
        network = fee_network(fee_rate=0.10)  # ~21% fee over 2 intermediaries
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        metrics, runtime = run(network, records, max_fee_fraction=0.05)
        assert metrics.completed == 0
        assert metrics.delivered_value == 0.0
        assert runtime.payments[0].fees_paid == 0.0

    def test_budget_allows_cheap_routes(self):
        network = fee_network(fee_rate=0.01)  # ~2% total
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        metrics, _ = run(network, records, max_fee_fraction=0.05)
        assert metrics.completed == 1

    def test_no_budget_means_unlimited(self):
        network = fee_network(fee_rate=0.10)
        records = [TransactionRecord(0, 1.0, 0, 3, 100.0)]
        metrics, _ = run(network, records)
        assert metrics.completed == 1
        assert metrics.total_fees_paid > 0.0

    def test_invalid_fraction_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RuntimeConfig(max_fee_fraction=-0.1)


class TestFeesWithMultipath:
    def test_waterfilling_pays_fees_on_every_path(self, triangle=None):
        from repro.network.network import PaymentNetwork

        network = PaymentNetwork()
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            network.add_channel(u, v, 100.0, base_fee=1.0)
        records = [TransactionRecord(0, 1.0, 0, 1, 70.0)]
        runtime = Runtime(
            network,
            records,
            WaterfillingScheme(num_paths=2),
            RuntimeConfig(end_time=20.0, check_invariants=True),
        )
        metrics = runtime.run()
        assert metrics.completed == 1
        # Only the 0-2-1 detour has an intermediary: fee == 1 (one unit via 2).
        assert metrics.total_fees_paid == pytest.approx(1.0)

    def test_experiment_config_propagates_fees(self):
        from repro.experiments import ExperimentConfig, run_experiment

        metrics = run_experiment(
            ExperimentConfig(
                scheme="spider-waterfilling",
                topology="isp",
                capacity=3_000.0,
                num_transactions=150,
                arrival_rate=60.0,
                seed=2,
                fee_rate=0.001,
            )
        )
        assert metrics.total_fees_paid > 0.0
        zero_fee = run_experiment(
            ExperimentConfig(
                scheme="spider-waterfilling",
                topology="isp",
                capacity=3_000.0,
                num_transactions=150,
                arrival_rate=60.0,
                seed=2,
            )
        )
        assert zero_fee.total_fees_paid == 0.0
