"""Tests for the payment and transaction-unit state machines."""

from __future__ import annotations

import pytest

from repro.core.payments import Payment, PaymentState, TransactionUnit, UnitState
from repro.errors import PaymentError


def make_payment(amount=100.0, deadline=None, atomic=False):
    return Payment(
        payment_id=1,
        source=0,
        dest=5,
        amount=amount,
        arrival_time=1.0,
        deadline=deadline,
        atomic=atomic,
    )


class TestLifecycle:
    def test_initial_state(self):
        payment = make_payment()
        assert payment.state is PaymentState.PENDING
        assert payment.remaining == 100.0
        assert payment.outstanding == 100.0
        assert not payment.is_terminal

    def test_non_positive_amount_rejected(self):
        with pytest.raises(PaymentError):
            make_payment(amount=0.0)

    def test_partial_progress(self):
        payment = make_payment()
        payment.register_inflight(30.0)
        assert payment.remaining == 70.0
        assert payment.inflight == 30.0
        payment.register_settled(30.0, now=2.0)
        assert payment.delivered == 30.0
        assert payment.outstanding == 70.0
        assert payment.state is PaymentState.PENDING

    def test_completion_on_full_delivery(self):
        payment = make_payment(amount=50.0)
        payment.register_inflight(50.0)
        payment.register_settled(50.0, now=3.5)
        assert payment.state is PaymentState.COMPLETED
        assert payment.completed_at == 3.5
        assert payment.is_complete and payment.is_terminal

    def test_cancelled_units_return_to_remaining(self):
        payment = make_payment()
        payment.register_inflight(40.0)
        payment.register_cancelled(40.0)
        assert payment.remaining == 100.0
        assert payment.inflight == 0.0

    def test_overcommit_rejected(self):
        payment = make_payment(amount=10.0)
        payment.register_inflight(10.0)
        with pytest.raises(PaymentError):
            payment.register_inflight(1.0)

    def test_settle_more_than_inflight_rejected(self):
        payment = make_payment()
        payment.register_inflight(5.0)
        with pytest.raises(PaymentError):
            payment.register_settled(6.0, now=1.0)

    def test_cancel_more_than_inflight_rejected(self):
        payment = make_payment()
        payment.register_inflight(5.0)
        with pytest.raises(PaymentError):
            payment.register_cancelled(6.0)

    def test_mark_failed(self):
        payment = make_payment()
        payment.mark_failed(now=9.0)
        assert payment.state is PaymentState.FAILED
        assert payment.failed_at == 9.0

    def test_mark_failed_after_completion_is_noop(self):
        payment = make_payment(amount=10.0)
        payment.register_inflight(10.0)
        payment.register_settled(10.0, now=1.0)
        payment.mark_failed(now=2.0)
        assert payment.state is PaymentState.COMPLETED

    def test_units_sent_counter(self):
        payment = make_payment()
        payment.register_inflight(10.0)
        payment.register_inflight(10.0)
        assert payment.units_sent == 2


class TestDeadlines:
    def test_no_deadline_never_expires(self):
        assert not make_payment().expired(1e9)

    def test_expiry_boundary(self):
        payment = make_payment(deadline=10.0)
        assert not payment.expired(10.0)
        assert payment.expired(10.1)


class TestTransactionUnit:
    def test_create_assigns_ids(self):
        payment = make_payment()
        payment.register_inflight(10.0)
        a = TransactionUnit.create(payment, 5.0, (0, 1), [], None, sent_at=1.0)
        b = TransactionUnit.create(payment, 5.0, (0, 1), [], None, sent_at=1.0)
        assert a.unit_id != b.unit_id
        assert a.state is UnitState.INFLIGHT

    def test_state_transitions(self):
        payment = make_payment()
        unit = TransactionUnit.create(payment, 5.0, (0, 1), [], None, sent_at=1.0)
        unit.mark_settled()
        assert unit.state is UnitState.SETTLED
        with pytest.raises(PaymentError):
            unit.mark_cancelled()

    def test_cancel_transition(self):
        payment = make_payment()
        unit = TransactionUnit.create(payment, 5.0, (0, 1), [], None, sent_at=1.0)
        unit.mark_cancelled()
        assert unit.state is UnitState.CANCELLED
        with pytest.raises(PaymentError):
            unit.mark_settled()
