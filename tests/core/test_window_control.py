"""Tests for the windowed transport (per-path AIMD + router marking)."""

from __future__ import annotations

import pytest

from repro.core.payments import Payment
from repro.core.queueing import HopUnit, QueueingRuntime
from repro.core.runtime import RuntimeConfig
from repro.core.window_control import (
    ImbalanceAwareWindowScheme,
    PathWindow,
    WindowedSpiderScheme,
)
from repro.experiments import ExperimentConfig, run_experiment
from repro.network.htlc import HashLock
from repro.topology.generators import cycle_topology, line_topology
from repro.workload.generator import TransactionRecord


def run(records, network, scheme=None, end_time=30.0, **runtime_kwargs):
    scheme = scheme or WindowedSpiderScheme()
    kwargs = dict(scheme.runtime_kwargs())
    kwargs.update(runtime_kwargs)
    runtime = QueueingRuntime(
        network,
        records,
        scheme,
        RuntimeConfig(end_time=end_time, check_invariants=True),
        **kwargs,
    )
    return runtime.run(), runtime


def make_unit(path=(0, 1, 2), amount=10.0, marked=False):
    payment = Payment(payment_id=1, source=path[0], dest=path[-1],
                      amount=amount, arrival_time=0.0)
    payment.register_inflight(amount)
    unit = HopUnit(payment, amount, tuple(path), HashLock.generate(1, 0), now=0.0)
    unit.marked = marked
    return unit


class TestAimdRules:
    def make_scheme(self, **kwargs):
        defaults = dict(initial_window=100.0, alpha=10.0, beta=0.5, rtt=0.5)
        defaults.update(kwargs)
        return WindowedSpiderScheme(**defaults)

    def test_clean_ack_grows_window_additively(self):
        scheme = self.make_scheme()
        unit = make_unit(amount=10.0)
        state = scheme.window(unit.path)
        state.inflight = 10.0
        scheme.on_unit_resolved(unit, "settled", now=1.0)
        # +alpha * amount / window = 10 * 10 / 100 = 1.
        assert state.window == pytest.approx(101.0)
        assert state.inflight == 0.0
        assert scheme.clean_acks == 1

    def test_marked_ack_halves_window(self):
        scheme = self.make_scheme()
        unit = make_unit(marked=True)
        state = scheme.window(unit.path)
        state.inflight = 10.0
        scheme.on_unit_resolved(unit, "settled", now=1.0)
        assert state.window == pytest.approx(50.0)
        assert scheme.marked_acks == 1

    def test_loss_decreases_like_a_mark(self):
        scheme = self.make_scheme()
        unit = make_unit()
        scheme.window(unit.path).inflight = 10.0
        scheme.on_unit_resolved(unit, "lost", now=1.0)
        assert scheme.window(unit.path).window == pytest.approx(50.0)
        assert scheme.losses == 1

    def test_at_most_one_decrease_per_rtt(self):
        scheme = self.make_scheme(rtt=1.0)
        path = (0, 1, 2)
        state = scheme.window(path)
        state.inflight = 20.0
        scheme.on_unit_resolved(make_unit(marked=True), "settled", now=1.0)
        scheme.on_unit_resolved(make_unit(marked=True), "settled", now=1.4)
        # Second mark is inside the guard interval: no second decrease.
        assert state.window == pytest.approx(50.0)
        scheme.on_unit_resolved(make_unit(marked=True), "settled", now=2.1)
        assert state.window == pytest.approx(25.0)

    def test_window_never_below_min(self):
        scheme = self.make_scheme(min_window=30.0, rtt=0.1)
        state = scheme.window((0, 1, 2))
        for i in range(10):
            state.inflight = 10.0
            scheme.on_unit_resolved(make_unit(marked=True), "settled", now=float(i))
        assert state.window == pytest.approx(30.0)

    def test_window_never_above_max(self):
        scheme = self.make_scheme(max_window=101.5)
        state = scheme.window((0, 1, 2))
        for i in range(10):
            state.inflight = 10.0
            scheme.on_unit_resolved(make_unit(amount=50.0), "settled", now=float(i))
        assert state.window <= 101.5

    def test_deadline_cancel_is_congestion_neutral(self):
        scheme = self.make_scheme()
        state = scheme.window((0, 1, 2))
        state.inflight = 10.0
        scheme.on_unit_resolved(make_unit(marked=False), "cancelled", now=1.0)
        assert state.window == pytest.approx(100.0)  # unchanged

    def test_headroom(self):
        state = PathWindow(window=100.0, inflight=30.0)
        assert state.headroom == pytest.approx(70.0)
        state.inflight = 150.0
        assert state.headroom == 0.0


class TestTransportIntegration:
    def test_delivers_on_a_line(self):
        network = line_topology(3).build_network(default_capacity=200.0)
        metrics, _ = run([TransactionRecord(0, 1.0, 0, 2, 20.0)], network)
        assert metrics.completed == 1
        assert metrics.delivered_value == pytest.approx(20.0)

    def test_window_limits_inflight_value(self):
        # Window 15 < payment 60: at most 15 can be in flight at once, so
        # the payment needs several RTTs' worth of polls to finish.
        network = line_topology(3).build_network(default_capacity=1000.0)
        scheme = WindowedSpiderScheme(initial_window=15.0, max_window=15.0)
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 2, 60.0)], network, scheme=scheme
        )
        assert metrics.completed == 1
        # 60 value over a 15-value window needs >= 4 units.
        assert runtime.payments[0].units_sent >= 4

    def test_marks_shrink_windows_under_congestion(self):
        # A wide access channel feeding a narrow core: units launch freely
        # and park at router 1.  Reverse traffic later replenishes the
        # bottleneck, so the parked units are serviced *after* overstaying
        # the threshold — they come back marked and the window shrinks.
        from repro.network.network import PaymentNetwork

        network = PaymentNetwork()
        network.add_channel(0, 1, 1000.0)
        network.add_channel(1, 2, 60.0)
        scheme = WindowedSpiderScheme(
            initial_window=500.0, mark_threshold=0.1, queue_timeout=30.0
        )
        records = [
            TransactionRecord(i, 1.0 + 0.05 * i, 0, 2, 40.0) for i in range(4)
        ] + [
            TransactionRecord(10 + i, 4.0 + 0.5 * i, 2, 0, 15.0) for i in range(4)
        ]
        runtime = QueueingRuntime(
            network,
            records,
            scheme,
            RuntimeConfig(end_time=60.0, check_invariants=True, mtu=10.0),
            **scheme.runtime_kwargs(),
        )
        runtime.run()
        assert runtime.units_marked > 0
        assert scheme.marked_acks > 0
        window = scheme.window_snapshot()[(0, 1, 2)]
        assert window < 500.0  # congestion shrank it

    def test_uses_multiple_paths(self):
        network = cycle_topology(6).build_network(default_capacity=100.0)
        scheme = WindowedSpiderScheme(num_paths=2)
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 3, 80.0)], network, scheme=scheme
        )
        assert metrics.delivered_value == pytest.approx(80.0)
        assert runtime.network.channel(0, 1).attempted_flow(0) > 0
        assert runtime.network.channel(0, 5).attempted_flow(0) > 0

    def test_requires_queueing_runtime(self):
        from repro.core.runtime import Runtime

        network = line_topology(3).build_network(default_capacity=100.0)
        runtime = Runtime(network, [], WindowedSpiderScheme())
        payment = Payment(payment_id=1, source=0, dest=2, amount=1.0, arrival_time=0.0)
        with pytest.raises(TypeError):
            WindowedSpiderScheme().attempt(payment, runtime)

    def test_no_path_fails_payment(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        network.add_node(99)
        metrics, _ = run([TransactionRecord(0, 1.0, 0, 99, 10.0)], network)
        assert metrics.failed == 1

    def test_runs_via_experiment_runner(self):
        config = ExperimentConfig(
            scheme="spider-window",
            scheme_params={"initial_window": 200.0},
            topology="line-4",
            capacity=5_000.0,
            num_transactions=40,
            arrival_rate=20.0,
            seed=5,
        )
        metrics = run_experiment(config)
        assert metrics.attempted == 40
        assert metrics.completed > 0

    def test_funds_conserved_under_windowed_transport(self):
        network = cycle_topology(5).build_network(default_capacity=80.0)
        total_before = network.total_funds()
        records = [
            TransactionRecord(i, 1.0 + 0.1 * i, i % 5, (i + 2) % 5, 25.0)
            for i in range(12)
        ]
        _, runtime = run(records, network, end_time=40.0)
        runtime.network.check_invariants()
        assert runtime.network.total_funds() == pytest.approx(total_before)


class TestImbalanceAwareVariant:
    def prepared_scheme(self, balance_first_hop, **kwargs):
        """Scheme prepared on a 3-node line with a chosen 0-side balance."""
        from repro.network.network import PaymentNetwork

        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0, balance_u=balance_first_hop)
        network.add_channel(1, 2, 100.0, balance_u=balance_first_hop)
        defaults = dict(initial_window=100.0, alpha=10.0, beta=0.5, rtt=0.5)
        defaults.update(kwargs)
        scheme = ImbalanceAwareWindowScheme(**defaults)
        runtime = QueueingRuntime(network, [], scheme, RuntimeConfig())
        scheme.prepare(runtime)
        return scheme

    def test_rebalance_score_sign(self):
        # Sender side holds 90 of 100: sending 0->2 drains the fuller side.
        scheme = self.prepared_scheme(balance_first_hop=90.0)
        assert scheme.rebalance_score((0, 1, 2)) == pytest.approx(0.8)
        assert scheme.rebalance_score((2, 1, 0)) == pytest.approx(-0.8)

    def test_balanced_channels_score_zero(self):
        scheme = self.prepared_scheme(balance_first_hop=50.0)
        assert scheme.rebalance_score((0, 1, 2)) == pytest.approx(0.0)

    def test_rebalancing_path_grows_faster(self):
        scheme = self.prepared_scheme(balance_first_hop=90.0, imbalance_gain=1.0)
        state = scheme.window((0, 1, 2))
        state.inflight = 10.0
        scheme.on_unit_resolved(make_unit(), "settled", now=1.0)
        # Base increment 1.0 scaled by (1 + 0.8) = 1.8.
        assert state.window == pytest.approx(101.8)

    def test_anti_balancing_path_growth_is_damped(self):
        scheme = self.prepared_scheme(balance_first_hop=10.0, imbalance_gain=1.0)
        state = scheme.window((0, 1, 2))
        state.inflight = 10.0
        scheme.on_unit_resolved(make_unit(), "settled", now=1.0)
        # Scale (1 - 0.8) = 0.2: increment 0.2, still positive.
        assert state.window == pytest.approx(100.2)

    def test_growth_never_negative_even_at_max_gain(self):
        scheme = self.prepared_scheme(balance_first_hop=0.0, imbalance_gain=5.0)
        state = scheme.window((0, 1, 2))
        state.inflight = 10.0
        scheme.on_unit_resolved(make_unit(), "settled", now=1.0)
        assert state.window >= 100.0  # floored at 10% of the base increase

    def test_marks_still_shrink_the_window(self):
        scheme = self.prepared_scheme(balance_first_hop=90.0, imbalance_gain=2.0)
        state = scheme.window((0, 1, 2))
        state.inflight = 10.0
        scheme.on_unit_resolved(make_unit(marked=True), "settled", now=1.0)
        assert state.window == pytest.approx(50.0)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            ImbalanceAwareWindowScheme(imbalance_gain=-0.5)

    def test_registered(self):
        from repro.routing.registry import make_scheme

        scheme = make_scheme("spider-window-imbalance", imbalance_gain=0.5)
        assert isinstance(scheme, ImbalanceAwareWindowScheme)

    def test_runs_via_experiment_runner(self):
        config = ExperimentConfig(
            scheme="spider-window-imbalance",
            topology="cycle-5",
            capacity=2_000.0,
            num_transactions=40,
            arrival_rate=20.0,
            seed=9,
        )
        metrics = run_experiment(config)
        assert metrics.attempted == 40
        assert metrics.completed > 0


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_paths": 0},
            {"initial_window": 0.0},
            {"alpha": 0.0},
            {"beta": 0.0},
            {"beta": 1.0},
            {"min_window": 0.0},
            {"min_window": 10.0, "max_window": 5.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            WindowedSpiderScheme(**kwargs)

    def test_registered(self):
        from repro.routing.registry import make_scheme

        scheme = make_scheme("spider-window", alpha=5.0)
        assert isinstance(scheme, WindowedSpiderScheme)
        assert scheme.alpha == 5.0

    def test_runtime_kwargs(self):
        scheme = WindowedSpiderScheme(
            mark_threshold=0.2, hop_delay=0.01, queue_timeout=3.0
        )
        assert scheme.runtime_kwargs() == {
            "mark_threshold": 0.2,
            "hop_delay": 0.01,
            "queue_timeout": 3.0,
        }

    def test_queueing_runtime_rejects_negative_mark_threshold(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        with pytest.raises(ValueError):
            QueueingRuntime(
                network, [], WindowedSpiderScheme(), RuntimeConfig(),
                mark_threshold=-0.1,
            )
