"""Tests for admission control (§7)."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionControlScheme
from repro.core.runtime import Runtime, RuntimeConfig
from repro.metrics.collectors import MetricsCollector
from repro.topology.generators import line_topology
from repro.workload.generator import TransactionRecord


def run(records, scheme, capacity=100.0):
    network = line_topology(3).build_network(default_capacity=capacity)
    runtime = Runtime(network, records, scheme, RuntimeConfig(end_time=20.0))
    return runtime.run(), runtime


class TestAdmissionControl:
    def test_oversized_payment_rejected_without_locking(self):
        scheme = AdmissionControlScheme("spider-waterfilling", admit_fraction=1.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 80.0)]  # capacity probe: 50
        metrics, runtime = run(records, scheme)
        assert scheme.rejected == 1
        assert metrics.failed == 1
        assert metrics.delivered_value == 0.0
        # Nothing was ever locked.
        assert runtime.network.channel(0, 1).attempted_flow(0) == 0.0

    def test_feasible_payment_delegated_to_inner(self):
        scheme = AdmissionControlScheme("spider-waterfilling", admit_fraction=1.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 30.0)]
        metrics, _ = run(records, scheme)
        assert scheme.rejected == 0
        assert metrics.completed == 1

    def test_admit_fraction_scales_the_threshold(self):
        strict = AdmissionControlScheme("spider-waterfilling", admit_fraction=0.4)
        records = [TransactionRecord(0, 1.0, 0, 2, 30.0)]  # 30 > 0.4 * 50
        metrics, _ = run(records, strict)
        assert strict.rejected == 1

        lenient = AdmissionControlScheme("spider-waterfilling", admit_fraction=2.0)
        metrics, _ = run([TransactionRecord(0, 1.0, 0, 2, 80.0)], lenient)
        # 80 <= 2 * 50: admitted (will partially deliver via queue+retry).
        assert lenient.rejected == 0
        assert metrics.delivered_value > 0.0

    def test_wraps_scheme_instances(self):
        from repro.core.waterfilling import WaterfillingScheme

        inner = WaterfillingScheme(num_paths=2)
        scheme = AdmissionControlScheme(inner)
        assert scheme.inner is inner
        assert scheme.name == "admission(spider-waterfilling)"

    def test_atomicity_follows_inner(self):
        atomic = AdmissionControlScheme("max-flow")
        assert atomic.atomic is True
        non_atomic = AdmissionControlScheme("spider-waterfilling")
        assert non_atomic.atomic is False

    def test_admission_decision_happens_once(self):
        """A payment admitted at arrival keeps being retried even when the
        live capacity later falls below its threshold."""
        # fraction 2.0 admits an 80-unit payment against a 50-unit probe;
        # it sends 50, and the remaining 30 keeps retrying at polls even
        # though later probes (capacity ~0) would fail a fresh admission.
        scheme = AdmissionControlScheme("spider-waterfilling", admit_fraction=2.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 80.0)]
        metrics, runtime = run(records, scheme)
        assert scheme.rejected == 0
        assert runtime.payments[0].attempts > 1
        assert metrics.delivered_value == pytest.approx(50.0)

    def test_rejection_uses_live_capacity(self):
        """Back-to-back payments: the second is rejected because the first
        has already drained the probe (§7's router-side estimate)."""
        scheme = AdmissionControlScheme("spider-waterfilling", admit_fraction=1.0)
        records = [
            TransactionRecord(0, 1.0, 0, 2, 45.0),
            TransactionRecord(1, 1.1, 0, 2, 45.0),  # probe sees 5 left
        ]
        metrics, _ = run(records, scheme)
        assert scheme.rejected == 1
        assert metrics.completed == 1

    def test_rejects_whales_preserves_ratio_sacrifices_volume(self):
        """The §7 trade-off, measured in isolation: whales arrive in a quiet
        period, are rejected, and the controlled run matches the plain
        run's ratio while giving up the whales' partial volume."""
        from repro.core.waterfilling import WaterfillingScheme

        # Bidirectional small payments keep the channels balanced, so every
        # small is admitted; the whales (500 >> any probe) are doomed.
        records = []
        for i in range(10):
            records.append(TransactionRecord(2 * i, 0.4 + i, 0, 2, 10.0))
            records.append(TransactionRecord(2 * i + 1, 0.6 + i, 2, 0, 10.0))
        for i in range(5):
            records.append(TransactionRecord(20 + i, 11.0 + i, 0, 2, 500.0))

        plain_metrics, _ = run(records, WaterfillingScheme())
        controlled = AdmissionControlScheme("spider-waterfilling", admit_fraction=1.0)
        controlled_metrics, _ = run(records, controlled)
        assert controlled.rejected == 5
        assert controlled_metrics.success_ratio >= plain_metrics.success_ratio
        # Plain mode partially delivers the doomed whales.
        assert plain_metrics.delivered_value > controlled_metrics.delivered_value

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdmissionControlScheme(admit_fraction=0.0)
        with pytest.raises(ValueError):
            AdmissionControlScheme(num_paths=0)

    def test_registry_integration(self):
        from repro.routing.registry import make_scheme

        scheme = make_scheme("spider-admission", inner="shortest-path")
        assert scheme.name == "admission(shortest-path)"
