"""Tests for token-bucket congestion control."""

from __future__ import annotations

import pytest

from repro.core.congestion import TokenBucket
from repro.errors import ConfigError


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert bucket.available(0.0) == 5.0

    def test_consume_reduces_tokens(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert bucket.consume(3.0, now=0.0)
        assert bucket.available(0.0) == pytest.approx(2.0)

    def test_consume_beyond_tokens_fails(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert not bucket.consume(6.0, now=0.0)
        assert bucket.available(0.0) == 5.0

    def test_refill_follows_rate(self):
        bucket = TokenBucket(rate=2.0, burst=10.0)
        bucket.consume(10.0, now=0.0)
        assert bucket.available(3.0) == pytest.approx(6.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=5.0)
        bucket.consume(5.0, now=0.0)
        assert bucket.available(1000.0) == 5.0

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=4.0)
        bucket.consume(4.0, now=0.0)
        assert bucket.available(100.0) == 0.0

    def test_set_rate_refills_first(self):
        bucket = TokenBucket(rate=1.0, burst=10.0)
        bucket.consume(10.0, now=0.0)
        bucket.set_rate(5.0, now=2.0)  # 2 tokens accrued at old rate
        assert bucket.available(3.0) == pytest.approx(2.0 + 5.0)

    def test_set_burst_clips_tokens(self):
        bucket = TokenBucket(rate=0.0, burst=10.0)
        bucket.set_burst(3.0, now=0.0)
        assert bucket.available(0.0) == 3.0

    def test_time_going_backwards_raises(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=5.0)
        with pytest.raises(ConfigError):
            bucket.available(4.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0.0)

    def test_invalid_consume(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ConfigError):
            bucket.consume(0.0, now=0.0)
