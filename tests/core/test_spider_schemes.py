"""Tests for the Spider routing schemes (waterfilling, LP, primal-dual)."""

from __future__ import annotations

import pytest

from repro.core.lp_routing import SpiderLPScheme
from repro.core.primal_dual_routing import SpiderPrimalDualScheme
from repro.core.runtime import Runtime, RuntimeConfig
from repro.core.waterfilling import WaterfillingScheme
from repro.topology.generators import cycle_topology, line_topology
from repro.topology.isp import isp_topology
from repro.workload.demand import records_from_demand
from repro.workload.generator import TransactionRecord


def run(records, network, scheme, **config_kwargs):
    kwargs = dict(end_time=30.0)
    kwargs.update(config_kwargs)
    runtime = Runtime(network, records, scheme, RuntimeConfig(**kwargs))
    return runtime.run(), runtime


class TestWaterfilling:
    def test_splits_across_parallel_paths(self, triangle):
        # 0 -> 1: direct path (50) and via 2 (50).  70 needs both.
        records = [TransactionRecord(0, 1.0, 0, 1, 70.0)]
        metrics, runtime = run(records, triangle, WaterfillingScheme(num_paths=2))
        assert metrics.completed == 1
        assert runtime.network.channel(0, 2).settled_flow(0) > 0

    def test_prefers_higher_capacity_path(self, triangle):
        # Skew balances: direct 0-1 has 20 available, the 0-2-1 detour 50.
        triangle.channel(0, 1).lock(0, 30.0)
        records = [TransactionRecord(0, 1.0, 0, 1, 10.0)]
        metrics, runtime = run(records, triangle, WaterfillingScheme(num_paths=2))
        assert metrics.completed == 1
        # The unit went on the detour (more available capacity).
        assert runtime.network.channel(0, 2).settled_flow(0) == pytest.approx(10.0)

    def test_waterfilling_reduces_imbalance_relative_to_shortest_path(self):
        """The §5.3.1 motivation: waterfilling spreads load, keeping
        channels more balanced than always-shortest-path."""
        from repro.routing.shortest_path import ShortestPathScheme

        demands = {(0, 2): 40.0, (2, 0): 40.0}
        records = records_from_demand(demands, duration=20.0, mean_size=4.0, seed=0)
        wf_net = cycle_topology(4).build_network(default_capacity=100.0)
        sp_net = cycle_topology(4).build_network(default_capacity=100.0)
        wf_metrics, _ = run(list(records), wf_net, WaterfillingScheme(), end_time=30.0)
        sp_metrics, _ = run(list(records), sp_net, ShortestPathScheme(), end_time=30.0)
        assert wf_metrics.success_volume >= sp_metrics.success_volume - 0.05

    def test_queues_when_no_capacity(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 80.0)]
        metrics, _ = run(records, network, WaterfillingScheme())
        assert metrics.delivered_value == pytest.approx(50.0)

    def test_disconnected_fails(self):
        from repro.network.network import PaymentNetwork

        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        network.add_node(2)
        records = [TransactionRecord(0, 1.0, 0, 2, 10.0)]
        metrics, _ = run(records, network, WaterfillingScheme())
        assert metrics.failed == 1

    def test_fee_budget_veto_terminates(self):
        # Regression: send_unit vetoed for a *non-capacity* reason (the fee
        # budget) used to leave the path's availability estimate high and
        # spin the waterfilling loop forever.
        network = line_topology(3).build_network(default_capacity=1_000.0)
        for channel in network.channels():
            channel.fee_rate = 0.2  # 20% per hop >> any sane budget
        records = [TransactionRecord(0, 1.0, 0, 2, 100.0)]
        metrics, _ = run(
            records, network, WaterfillingScheme(), max_fee_fraction=0.01
        )
        assert metrics.completed == 0  # blocked by the budget, but finishes

    def test_invalid_num_paths(self):
        with pytest.raises(ValueError):
            WaterfillingScheme(num_paths=0)


class TestSpiderLP:
    def test_routes_circulation_demand_fully(self):
        """On a bidirectional demand the LP finds full flow and the scheme
        delivers it."""
        network = line_topology(3).build_network(default_capacity=200.0)
        demands = {(0, 2): 10.0, (2, 0): 10.0}
        records = records_from_demand(demands, duration=10.0, mean_size=5.0, seed=1)
        metrics, _ = run(list(records), network, SpiderLPScheme(), end_time=20.0)
        assert metrics.success_volume > 0.9

    def test_zero_flow_pairs_fail_immediately(self):
        """A pure one-way (DAG) demand gets zero LP flow under perfect
        balance; the paper notes those payments are never attempted."""
        network = line_topology(3).build_network(default_capacity=200.0)
        records = [TransactionRecord(i, 1.0 + i, 0, 2, 10.0) for i in range(5)]
        metrics, runtime = run(records, network, SpiderLPScheme(), end_time=20.0)
        assert metrics.completed == 0
        assert metrics.delivered_value == 0.0
        assert runtime.payments[0].attempts == 1  # failed at arrival

    def test_lp_volume_tracks_circulation_share(self):
        """Success volume approximates the circulation fraction of the
        demand (the Fig. 6 observation for Spider-LP)."""
        from repro.fluid.circulation import PaymentGraph, decompose_payment_graph
        from repro.workload.demand import estimate_demand_matrix, mixed_demand

        topology = isp_topology()
        network = topology.build_network(default_capacity=100_000.0)
        demands = mixed_demand(list(topology.nodes), 400.0, circulation_fraction=0.5, seed=3)
        records = records_from_demand(demands, duration=50.0, mean_size=10.0, seed=3)
        estimated = estimate_demand_matrix(records, duration=50.0)
        circulation_share = decompose_payment_graph(
            PaymentGraph(estimated), method="lp"
        ).circulation_fraction
        metrics, _ = run(list(records), network, SpiderLPScheme(), end_time=60.0)
        assert metrics.success_volume == pytest.approx(circulation_share, abs=0.15)

    def test_rebalancing_gamma_extension_unlocks_dag(self):
        """With the eqs. 6-11 objective and cheap rebalancing, one-way
        demand gets nonzero flow weights (funds are modelled as deposited
        on-chain out of band)."""
        network = line_topology(3).build_network(default_capacity=200.0)
        records = [TransactionRecord(i, 1.0 + i, 0, 2, 10.0) for i in range(3)]
        scheme = SpiderLPScheme(rebalancing_gamma=0.01)
        metrics, _ = run(records, network, scheme, end_time=20.0)
        assert metrics.delivered_value > 0.0


class TestSpiderPrimalDual:
    def test_completes_balanced_traffic(self):
        network = line_topology(3).build_network(default_capacity=400.0)
        demands = {(0, 2): 20.0, (2, 0): 20.0}
        records = records_from_demand(demands, duration=20.0, mean_size=5.0, seed=2)
        metrics, _ = run(
            list(records), network, SpiderPrimalDualScheme(), end_time=40.0
        )
        assert metrics.success_volume > 0.8

    def test_rates_adapt_over_time(self):
        network = cycle_topology(4).build_network(default_capacity=400.0)
        demands = {(0, 2): 30.0, (2, 0): 30.0}
        records = records_from_demand(demands, duration=20.0, mean_size=5.0, seed=4)
        scheme = SpiderPrimalDualScheme(update_interval=0.5)
        metrics, runtime = run(list(records), network, scheme, end_time=30.0)
        # The pair state must exist and have non-trivial rates.
        state = scheme._pairs[(0, 2)]
        assert state.rates.sum() > 0.0
        assert metrics.completed > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpiderPrimalDualScheme(num_paths=0)
        with pytest.raises(ValueError):
            SpiderPrimalDualScheme(update_interval=0.0)
        with pytest.raises(ValueError):
            SpiderPrimalDualScheme(demand_headroom=0.5)
