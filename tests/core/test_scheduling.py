"""Tests for pending-queue scheduling policies."""

from __future__ import annotations

import pytest

from repro.core.payments import Payment
from repro.core.scheduling import SCHEDULING_POLICIES, get_policy, order_payments
from repro.errors import ConfigError


def payment(pid, amount, arrival, delivered=0.0, deadline=None):
    p = Payment(
        payment_id=pid,
        source=0,
        dest=1,
        amount=amount,
        arrival_time=arrival,
        deadline=deadline,
    )
    if delivered:
        p.register_inflight(delivered)
        p.register_settled(delivered, now=arrival)
    return p


class TestSrpt:
    def test_orders_by_remaining_amount(self):
        payments = [payment(1, 100.0, 0.0), payment(2, 10.0, 1.0), payment(3, 50.0, 2.0)]
        ordered = order_payments(payments, "srpt")
        assert [p.payment_id for p in ordered] == [2, 3, 1]

    def test_partial_delivery_moves_payment_forward(self):
        big_but_almost_done = payment(1, 100.0, 0.0, delivered=95.0)
        small_fresh = payment(2, 10.0, 1.0)
        ordered = order_payments([small_fresh, big_but_almost_done], "srpt")
        assert ordered[0].payment_id == 1  # 5 remaining < 10 remaining

    def test_ties_break_by_id(self):
        payments = [payment(2, 10.0, 0.0), payment(1, 10.0, 5.0)]
        ordered = order_payments(payments, "srpt")
        assert [p.payment_id for p in ordered] == [1, 2]


class TestOtherPolicies:
    def test_fifo(self):
        payments = [payment(1, 5.0, 3.0), payment(2, 50.0, 1.0)]
        assert [p.payment_id for p in order_payments(payments, "fifo")] == [2, 1]

    def test_lifo(self):
        payments = [payment(1, 5.0, 3.0), payment(2, 50.0, 1.0)]
        assert [p.payment_id for p in order_payments(payments, "lifo")] == [1, 2]

    def test_edf_orders_by_deadline(self):
        payments = [
            payment(1, 5.0, 0.0, deadline=100.0),
            payment(2, 5.0, 0.0, deadline=10.0),
            payment(3, 5.0, 0.0),  # no deadline -> last
        ]
        assert [p.payment_id for p in order_payments(payments, "edf")] == [2, 1, 3]

    def test_smallest_total_ignores_progress(self):
        nearly_done_big = payment(1, 100.0, 0.0, delivered=99.0)
        fresh_small = payment(2, 10.0, 0.0)
        ordered = order_payments([nearly_done_big, fresh_small], "smallest-total")
        assert ordered[0].payment_id == 2

    def test_largest_remaining_is_reverse_srpt(self):
        payments = [payment(1, 100.0, 0.0), payment(2, 10.0, 0.0)]
        assert [p.payment_id for p in order_payments(payments, "largest-remaining")] == [1, 2]


class TestRegistry:
    def test_all_policies_are_callable(self):
        for name in SCHEDULING_POLICIES:
            assert callable(get_policy(name))

    def test_unknown_policy_raises_with_listing(self):
        with pytest.raises(ConfigError, match="srpt"):
            get_policy("bogus")
