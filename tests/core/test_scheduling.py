"""Tests for pending-queue scheduling policies."""

from __future__ import annotations

import pytest

from repro.core.payments import Payment
from repro.core.scheduling import (
    PendingHeap,
    SCHEDULING_POLICIES,
    get_policy,
    order_payments,
)
from repro.errors import ConfigError
from repro.simulator.rng import make_rng


def payment(pid, amount, arrival, delivered=0.0, deadline=None):
    p = Payment(
        payment_id=pid,
        source=0,
        dest=1,
        amount=amount,
        arrival_time=arrival,
        deadline=deadline,
    )
    if delivered:
        p.register_inflight(delivered)
        p.register_settled(delivered, now=arrival)
    return p


class TestSrpt:
    def test_orders_by_remaining_amount(self):
        payments = [payment(1, 100.0, 0.0), payment(2, 10.0, 1.0), payment(3, 50.0, 2.0)]
        ordered = order_payments(payments, "srpt")
        assert [p.payment_id for p in ordered] == [2, 3, 1]

    def test_partial_delivery_moves_payment_forward(self):
        big_but_almost_done = payment(1, 100.0, 0.0, delivered=95.0)
        small_fresh = payment(2, 10.0, 1.0)
        ordered = order_payments([small_fresh, big_but_almost_done], "srpt")
        assert ordered[0].payment_id == 1  # 5 remaining < 10 remaining

    def test_ties_break_by_id(self):
        payments = [payment(2, 10.0, 0.0), payment(1, 10.0, 5.0)]
        ordered = order_payments(payments, "srpt")
        assert [p.payment_id for p in ordered] == [1, 2]


class TestOtherPolicies:
    def test_fifo(self):
        payments = [payment(1, 5.0, 3.0), payment(2, 50.0, 1.0)]
        assert [p.payment_id for p in order_payments(payments, "fifo")] == [2, 1]

    def test_lifo(self):
        payments = [payment(1, 5.0, 3.0), payment(2, 50.0, 1.0)]
        assert [p.payment_id for p in order_payments(payments, "lifo")] == [1, 2]

    def test_edf_orders_by_deadline(self):
        payments = [
            payment(1, 5.0, 0.0, deadline=100.0),
            payment(2, 5.0, 0.0, deadline=10.0),
            payment(3, 5.0, 0.0),  # no deadline -> last
        ]
        assert [p.payment_id for p in order_payments(payments, "edf")] == [2, 1, 3]

    def test_smallest_total_ignores_progress(self):
        nearly_done_big = payment(1, 100.0, 0.0, delivered=99.0)
        fresh_small = payment(2, 10.0, 0.0)
        ordered = order_payments([nearly_done_big, fresh_small], "smallest-total")
        assert ordered[0].payment_id == 2

    def test_largest_remaining_is_reverse_srpt(self):
        payments = [payment(1, 100.0, 0.0), payment(2, 10.0, 0.0)]
        assert [p.payment_id for p in order_payments(payments, "largest-remaining")] == [1, 2]


class TestPendingHeap:
    """The incremental heap must reproduce the retired full sort exactly."""

    def _reference(self, heap, payments, policy):
        alive = [payments[pid] for pid in heap]
        return [p.payment_id for p in sorted(alive, key=policy)]

    @pytest.mark.parametrize("policy_name", sorted(SCHEDULING_POLICIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_churn_matches_full_sort(self, policy_name, seed):
        """Adds, partial settles (touch) and removals under every policy."""
        policy = get_policy(policy_name)
        heap = PendingHeap(policy)
        rng = make_rng(1000 * seed + 17)
        payments = {}
        next_pid = 0
        for _ in range(300):
            action = rng.random()
            if action < 0.45 or not payments:
                p = payment(
                    next_pid,
                    float(rng.uniform(1.0, 200.0)),
                    float(rng.uniform(0.0, 50.0)),
                    deadline=(
                        float(rng.uniform(1.0, 100.0)) if rng.random() < 0.5 else None
                    ),
                )
                payments[next_pid] = p
                heap.add(p)
                next_pid += 1
            elif action < 0.75:
                pid = int(rng.choice(sorted(payments)))
                p = payments[pid]
                chunk = p.remaining * 0.5
                if chunk > 0:
                    p.register_inflight(chunk)
                    p.register_settled(chunk, now=0.0)
                    heap.touch(p)
            else:
                pid = int(rng.choice(sorted(payments)))
                heap.discard(pid)
                del payments[pid]
            if rng.random() < 0.3:
                assert heap.ordered() == self._reference(heap, payments, policy)
        assert heap.ordered() == self._reference(heap, payments, policy)

    def test_ordered_is_memoised_until_mutation(self):
        heap = PendingHeap(get_policy("srpt"))
        a, b = payment(1, 50.0, 0.0), payment(2, 10.0, 1.0)
        heap.add(a)
        heap.add(b)
        assert heap.ordered() == [2, 1]
        assert heap.ordered() == [2, 1]  # served from the memo
        heap.discard(2)
        assert heap.ordered() == [1]

    def test_touch_reorders_on_partial_settle(self):
        heap = PendingHeap(get_policy("srpt"))
        big, small = payment(1, 100.0, 0.0), payment(2, 60.0, 1.0)
        heap.add(big)
        heap.add(small)
        assert heap.ordered() == [2, 1]
        big.register_inflight(90.0)
        big.register_settled(90.0, now=2.0)
        heap.touch(big)
        assert heap.ordered() == [1, 2]  # 10 outstanding < 60

    def test_touch_on_unknown_payment_is_a_noop(self):
        heap = PendingHeap(get_policy("srpt"))
        heap.touch(payment(9, 5.0, 0.0))
        assert len(heap) == 0

    def test_set_like_surface(self):
        heap = PendingHeap(get_policy("fifo"))
        p = payment(4, 5.0, 0.0)
        heap.add(p)
        assert 4 in heap and len(heap) == 1 and list(heap) == [4]
        heap.discard(4)
        heap.discard(4)  # idempotent
        assert 4 not in heap and not heap
        heap.add(p)
        heap.clear()
        assert not heap and heap.ordered() == []

    def test_stale_entries_do_not_resurface(self):
        """A→B→A re-keys leave corpses that must be skipped exactly once."""
        heap = PendingHeap(get_policy("srpt"))
        p = payment(1, 100.0, 0.0)
        other = payment(2, 50.0, 0.0)
        heap.add(p)
        heap.add(other)
        p.register_inflight(80.0)
        p.register_settled(80.0, now=1.0)
        heap.touch(p)  # key: 20
        p.register_inflight(20.0)
        heap.touch(p)  # outstanding still 20 -> same key, no push
        assert heap.ordered() == [1, 2]
        assert heap.ordered().count(1) == 1


class TestRegistry:
    def test_all_policies_are_callable(self):
        for name in SCHEDULING_POLICIES:
            assert callable(get_policy(name))

    def test_unknown_policy_raises_with_listing(self):
        with pytest.raises(ConfigError, match="srpt"):
            get_policy("bogus")
