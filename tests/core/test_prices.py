"""Tests for the online price state (eqs. 23–24, normalised)."""

from __future__ import annotations

import pytest

from repro.core.prices import ChannelPriceState, PriceTable
from repro.errors import ConfigError
from repro.network.network import PaymentNetwork


@pytest.fixture
def network():
    net = PaymentNetwork()
    net.add_channel(0, 1, 100.0)
    net.add_channel(1, 2, 100.0)
    return net


class TestChannelPriceState:
    def test_initial_prices_are_zero(self):
        state = ChannelPriceState(0, 1)
        assert state.price(0, 1) == 0.0
        assert state.price(1, 0) == 0.0

    def test_imbalanced_traffic_raises_directional_price(self):
        state = ChannelPriceState(0, 1)
        state.observe(0, 1, 50.0)
        state.update(dt=1.0, capacity_rate=100.0, eta=0.1, kappa=0.1)
        assert state.price(0, 1) > 0.0
        # The reverse direction's mu cannot go negative; its price stays at
        # lambda - mu_forward < price(0,1).
        assert state.price(1, 0) < state.price(0, 1)

    def test_balanced_traffic_keeps_mu_flat(self):
        state = ChannelPriceState(0, 1)
        state.observe(0, 1, 30.0)
        state.observe(1, 0, 30.0)
        state.update(dt=1.0, capacity_rate=100.0, eta=0.1, kappa=0.1)
        assert state.mu[(0, 1)] == pytest.approx(0.0)
        assert state.mu[(1, 0)] == pytest.approx(0.0)

    def test_overload_raises_lambda(self):
        state = ChannelPriceState(0, 1)
        state.observe(0, 1, 100.0)
        state.observe(1, 0, 100.0)
        state.update(dt=1.0, capacity_rate=100.0, eta=0.1, kappa=0.1)
        assert state.lam > 0.0

    def test_underload_decays_lambda_to_zero(self):
        state = ChannelPriceState(0, 1)
        state.lam = 0.05
        state.update(dt=1.0, capacity_rate=100.0, eta=0.1, kappa=0.1)
        assert state.lam == pytest.approx(0.0)  # clamped at zero

    def test_window_resets_after_update(self):
        state = ChannelPriceState(0, 1)
        state.observe(0, 1, 10.0)
        state.update(dt=1.0, capacity_rate=100.0, eta=0.1, kappa=0.1)
        assert state.window[(0, 1)] == 0.0

    def test_invalid_dt_rejected(self):
        with pytest.raises(ConfigError):
            ChannelPriceState(0, 1).update(dt=0.0, capacity_rate=1.0, eta=0.1, kappa=0.1)


class TestPriceTable:
    def test_path_price_sums_hops(self, network):
        table = PriceTable(network, delta=0.5)
        table.state(0, 1).mu[(0, 1)] = 0.2
        table.state(1, 2).mu[(1, 2)] = 0.3
        assert table.path_price([0, 1, 2]) == pytest.approx(0.5)

    def test_observe_path_feeds_both_hops(self, network):
        table = PriceTable(network, delta=0.5)
        table.observe_path([0, 1, 2], 10.0)
        assert table.state(0, 1).window[(0, 1)] == 10.0
        assert table.state(1, 2).window[(1, 2)] == 10.0

    def test_update_all_moves_prices(self, network):
        table = PriceTable(network, delta=0.5)
        table.observe_path([0, 1], 500.0)
        table.update_all(dt=1.0, eta=0.1, kappa=0.1)
        assert table.state(0, 1).price(0, 1) > 0.0

    def test_imbalance_price_steers_against_skewed_direction(self, network):
        """The §5.3 property: heavy one-way traffic must make that direction
        expensive relative to the reverse, steering senders to rebalance."""
        table = PriceTable(network, delta=0.5)
        for _ in range(10):
            table.observe_path([0, 1], 100.0)
            table.update_all(dt=1.0, eta=0.05, kappa=0.05)
        assert table.path_price([0, 1]) > table.path_price([1, 0])

    def test_invalid_delta_rejected(self, network):
        with pytest.raises(ConfigError):
            PriceTable(network, delta=0.0)
