"""Tests for in-network router queues (§4.2, hop-by-hop forwarding)."""

from __future__ import annotations

import pytest

from repro.core.queueing import QueueingRuntime, SpiderQueueingScheme
from repro.core.runtime import Runtime, RuntimeConfig
from repro.routing.base import RoutingScheme
from repro.topology.generators import line_topology
from repro.workload.generator import TransactionRecord


class LaunchOnLine(RoutingScheme):
    """Minimal hop-by-hop scheme: launch the remaining value on the line path."""

    name = "test-hop-launch"
    atomic = False
    hop_by_hop = True

    def attempt(self, payment, runtime):
        step = 1 if payment.dest >= payment.source else -1
        path = tuple(range(payment.source, payment.dest + step, step))
        runtime.send_unit_hop_by_hop(payment, path, payment.remaining)


def make_runtime(records, capacity=100.0, nodes=4, scheme=None, end_time=30.0, **kwargs):
    network = line_topology(nodes).build_network(default_capacity=capacity)
    defaults = dict(
        hop_delay=0.05, queue_timeout=5.0, settle_delay=0.5
    )
    defaults.update(kwargs)
    runtime = QueueingRuntime(
        network,
        records,
        scheme or LaunchOnLine(),
        RuntimeConfig(end_time=end_time, check_invariants=True),
        **defaults,
    )
    return runtime


def record(txn_id, t, source, dest, amount, deadline=None):
    return TransactionRecord(txn_id, t, source, dest, amount, deadline)


class TestHopByHopDelivery:
    def test_simple_payment_completes(self):
        runtime = make_runtime([record(0, 1.0, 0, 3, 10.0)])
        metrics = runtime.run()
        assert metrics.completed == 1
        # Arrival after 3 hops x 0.05s + settle 0.5s.
        assert runtime.payments[0].completed_at == pytest.approx(1.0 + 2 * 0.05 + 0.5)
        runtime.network.check_invariants()

    def test_funds_settle_at_every_hop(self):
        runtime = make_runtime([record(0, 1.0, 0, 3, 10.0)])
        runtime.run()
        network = runtime.network
        assert network.channel(0, 1).balance(0) == pytest.approx(40.0)
        assert network.channel(2, 3).balance(3) == pytest.approx(60.0)
        assert network.total_inflight() == 0.0

    def test_unit_queues_when_mid_path_is_dry(self):
        """The §4.2 behaviour the source-routed model cannot express: the
        unit advances to the dry hop and waits there, not at the source."""
        runtime = make_runtime([record(0, 1.0, 0, 3, 40.0)])
        # Drain channel 1->2 before the run (held HTLC, never resolved).
        runtime.network.channel(1, 2).lock(1, 45.0)
        metrics = runtime.run()
        # The unit queued at router 1 (possibly several times: the pending
        # queue relaunches it after each timeout refund).
        assert runtime.units_queued >= 1
        assert runtime.units_timed_out >= 1
        assert metrics.completed == 0
        # All payment funds refunded; only the held test HTLC stays in flight.
        assert runtime.network.total_inflight() == pytest.approx(45.0)

    def test_queued_unit_released_by_reverse_traffic(self):
        """Funds arriving from the other side release the queue (Fig. 3)."""
        runtime = make_runtime(
            [
                record(0, 1.0, 0, 3, 30.0),  # queues at router 1 (5 available)
                record(1, 2.0, 3, 0, 40.0),  # reverse flow replenishes 1->2
            ],
            queue_timeout=20.0,
        )
        # Leave only 5 spendable in the 1->2 direction.
        held = runtime.network.channel(1, 2).lock(1, 45.0)
        metrics = runtime.run()
        assert runtime.units_queued >= 1
        assert runtime.payments[0].is_complete
        assert metrics.completed == 2
        assert runtime.mean_queue_delay > 0.0

    def test_timeout_refunds_upstream_hops(self):
        runtime = make_runtime(
            [record(0, 1.0, 0, 3, 40.0)], queue_timeout=1.0, end_time=3.5
        )
        runtime.network.channel(2, 3).lock(2, 45.0)
        runtime.run()
        # Hops 0->1 and 1->2 were locked, then refunded on timeout (the
        # relaunch cycle repeats while the run lasts).
        assert runtime.units_timed_out >= 1
        assert runtime.network.channel(0, 1).balance(0) == pytest.approx(50.0)
        assert runtime.network.channel(1, 2).balance(1) == pytest.approx(50.0)

    def test_deadline_withholds_key_at_settlement(self):
        records = [record(0, 1.0, 0, 3, 10.0, deadline=1.2)]
        runtime = make_runtime(records)
        metrics = runtime.run()
        # Arrival at ~1.1, settlement due at ~1.6 > deadline -> withheld.
        assert metrics.delivered_value == 0.0
        assert runtime.network.total_inflight() == 0.0

    def test_stranded_queue_drained_at_end_of_run(self):
        runtime = make_runtime([record(0, 1.0, 0, 3, 40.0)], queue_timeout=500.0)
        runtime.network.channel(1, 2).lock(1, 45.0)
        runtime.run()
        # The stranded unit was aborted and refunded; only the held test
        # HTLC remains in flight.
        assert runtime.network.total_inflight() == pytest.approx(45.0)
        assert runtime.payments[0].inflight == pytest.approx(0.0)

    def test_srpt_queue_policy_orders_by_remaining(self):
        # Two units queue at router 1; when funds free up, SRPT services the
        # smaller payment first.
        records = [
            record(0, 1.0, 0, 3, 45.0),                 # drains
            record(1, 1.2, 0, 3, 30.0),                 # queues (larger)
            record(2, 1.3, 0, 3, 5.0),                  # queues (smaller)
            record(3, 3.0, 3, 0, 12.0),                 # frees 12
        ]
        runtime = make_runtime(records, queue_policy="srpt", queue_timeout=30.0)
        runtime.run()
        small = runtime.payments[2]
        large = runtime.payments[1]
        assert small.is_complete
        assert not large.is_complete

    def test_timed_out_corpse_is_skipped_at_service(self):
        """Timeouts are lazily cancelled: the timed-out unit stays in the
        deque as a corpse (no O(n) remove) and service must skip it to
        reach the live unit parked behind it."""
        records = [
            record(0, 1.0, 0, 3, 45.0),  # parks at router 1, times out
            record(1, 1.2, 0, 3, 4.0),  # parks behind it, stays live
            record(2, 1.1, 3, 0, 40.0),  # reverse credit before the timeout
            record(3, 1.6, 3, 0, 10.0),  # reverse credit after the timeout
        ]
        runtime = make_runtime(records, queue_timeout=1.0, end_time=3.4)
        runtime.network.channel(1, 2).lock(1, 50.0)  # drain 1->2 fully
        runtime.run()
        assert runtime.units_timed_out >= 1
        assert runtime.payments[1].is_complete
        runtime.network.check_invariants()

    def test_finish_drain_does_not_relaunch_queued_units(self):
        """Refunds cascading out of the end-of-run drain must not service
        other queues (the simulator never fires the relaunched advances)."""
        from repro.network.network import PaymentNetwork

        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        network.add_channel(1, 2, 100.0)
        network.add_channel(2, 0, 100.0)

        paths = {0: (2, 0, 1), 1: (1, 2, 0)}

        class LaunchFixedPaths(RoutingScheme):
            name = "test-fixed-paths"
            atomic = False
            hop_by_hop = True

            def attempt(self, payment, runtime):
                runtime.send_unit_hop_by_hop(
                    payment, paths[payment.payment_id], payment.remaining
                )

        network.channel(0, 1).lock(0, 50.0)  # direction (0,1) is dry
        runtime = QueueingRuntime(
            network,
            [
                record(0, 1.0, 2, 1, 50.0),  # locks 2->0, parks at (0,1)
                record(1, 1.1, 1, 0, 10.0),  # locks 1->2, parks at (2,0)
            ],
            LaunchFixedPaths(),
            RuntimeConfig(end_time=2.0, check_invariants=True),
        )
        runtime.run()
        assert network.total_inflight() == pytest.approx(50.0)
        assert runtime.payments[1].inflight == pytest.approx(0.0)

    def test_queue_depth_reported_to_collector(self):
        runtime = make_runtime([record(0, 1.0, 0, 3, 30.0)], end_time=3.0)
        runtime.network.channel(1, 2).lock(1, 45.0)
        metrics = runtime.run()
        assert metrics.max_queue_depth >= 1
        assert metrics.mean_queue_depth > 0.0

    def test_invalid_parameters(self):
        network = line_topology(3).build_network(default_capacity=10.0)
        with pytest.raises(ValueError):
            QueueingRuntime(network, [], LaunchOnLine(), hop_delay=-1.0)
        with pytest.raises(ValueError):
            QueueingRuntime(network, [], LaunchOnLine(), queue_timeout=0.0)
        with pytest.raises(ValueError):
            QueueingRuntime(network, [], LaunchOnLine(), queue_policy="bogus")


class TestSpiderQueueingScheme:
    def test_runs_under_queueing_runtime(self):
        records = [record(0, 1.0, 0, 3, 30.0), record(1, 2.0, 3, 0, 30.0)]
        network = line_topology(4).build_network(default_capacity=100.0)
        runtime = QueueingRuntime(
            network,
            records,
            SpiderQueueingScheme(),
            RuntimeConfig(end_time=30.0, check_invariants=True),
        )
        metrics = runtime.run()
        assert metrics.completed == 2

    def test_rejects_plain_runtime(self):
        records = [record(0, 1.0, 0, 2, 10.0)]
        network = line_topology(3).build_network(default_capacity=100.0)
        runtime = Runtime(
            network, records, SpiderQueueingScheme(), RuntimeConfig(end_time=5.0)
        )
        with pytest.raises(TypeError):
            runtime.run()

    def test_registry_and_runner_integration(self):
        from repro.experiments import ExperimentConfig, run_experiment

        metrics = run_experiment(
            ExperimentConfig(
                scheme="spider-queueing",
                topology="cycle-5",
                capacity=2_000.0,
                num_transactions=100,
                arrival_rate=50.0,
                seed=3,
                check_invariants=True,
            )
        )
        assert metrics.attempted == 100
        assert metrics.completed > 0
