"""Tests for AMP atomic multi-path payments and waterfill allocation."""

from __future__ import annotations

import pytest

from repro.core.amp import AmpWaterfillingScheme, waterfill_allocation
from repro.core.runtime import Runtime, RuntimeConfig
from repro.topology.generators import line_topology
from repro.workload.generator import TransactionRecord


class TestWaterfillAllocation:
    def test_everything_fits_on_one_path(self):
        assert waterfill_allocation(5.0, [10.0]) == [5.0]

    def test_fills_highest_capacity_first(self):
        allocation = waterfill_allocation(4.0, [10.0, 6.0])
        assert allocation == [4.0, 0.0]

    def test_waterfills_to_common_level(self):
        # capacities (10, 6), amount 8: fill 10 down by 4 to 6, then split
        # the remaining 4 equally -> levels (4, 4), allocations (6, 2).
        allocation = waterfill_allocation(8.0, [10.0, 6.0])
        assert allocation == pytest.approx([6.0, 2.0])

    def test_three_paths(self):
        allocation = waterfill_allocation(8.0, [10.0, 6.0, 3.0])
        assert allocation == pytest.approx([6.0, 2.0, 0.0])
        # Residual capacities equalise at the water level (4, 4, 3).

    def test_saturation_returns_capacities(self):
        assert waterfill_allocation(100.0, [3.0, 2.0]) == [3.0, 2.0]

    def test_total_is_preserved(self):
        for amount in (0.5, 3.3, 7.0, 12.4):
            allocation = waterfill_allocation(amount, [5.0, 4.0, 3.5, 0.5])
            expected = min(amount, 13.0)
            assert sum(allocation) == pytest.approx(expected)

    def test_zero_amount(self):
        assert waterfill_allocation(0.0, [5.0, 3.0]) == [0.0, 0.0]

    def test_allocations_never_exceed_capacity(self):
        allocation = waterfill_allocation(9.0, [4.0, 4.0, 4.0])
        for share, cap in zip(allocation, [4.0, 4.0, 4.0]):
            assert share <= cap + 1e-9


class TestAmpScheme:
    def _run(self, records, network):
        runtime = Runtime(
            network, records, AmpWaterfillingScheme(), RuntimeConfig(end_time=20.0)
        )
        return runtime.run(), runtime

    def test_atomic_delivery_over_multiple_paths(self, triangle):
        # 70 > any single path (50): AMP must split across both.
        records = [TransactionRecord(0, 1.0, 0, 1, 70.0)]
        metrics, runtime = self._run(records, triangle)
        assert metrics.completed == 1
        assert runtime.network.channel(0, 2).settled_flow(0) > 0
        runtime.network.check_invariants()

    def test_all_units_share_one_base_lock(self, triangle):
        records = [TransactionRecord(0, 1.0, 0, 1, 70.0)]
        _, runtime = self._run(records, triangle)
        # AMP derives every share from a single base key (§4.1): both
        # channels' settled HTLCs exist and the payment completed whole.
        assert runtime.payments[0].is_complete

    def test_infeasible_amount_fails_cleanly(self, triangle):
        records = [TransactionRecord(0, 1.0, 0, 1, 150.0)]
        metrics, runtime = self._run(records, triangle)
        assert metrics.failed == 1
        assert metrics.delivered_value == 0.0
        assert runtime.network.total_inflight() == 0.0

    def test_single_attempt_no_retry(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 60.0)]
        runtime = Runtime(
            network, records, AmpWaterfillingScheme(), RuntimeConfig(end_time=20.0)
        )
        metrics = runtime.run()
        assert metrics.failed == 1
        assert runtime.payments[0].attempts == 1

    def test_no_partial_delivery_volume(self):
        """The §4.1 atomicity cost: AMP never contributes partial volume."""
        network = line_topology(3).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 60.0)]
        runtime = Runtime(
            network, records, AmpWaterfillingScheme(), RuntimeConfig(end_time=20.0)
        )
        metrics = runtime.run()
        assert metrics.success_volume == 0.0

    def test_invalid_num_paths(self):
        with pytest.raises(ValueError):
            AmpWaterfillingScheme(num_paths=0)
