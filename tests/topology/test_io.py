"""Tests for topology serialisation."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.topology.io import dump_topology, dumps_topology, load_topology, loads_topology


@pytest.fixture
def topo() -> Topology:
    return Topology("demo", [0, 1, 2], [(0, 1), (1, 2)], capacities={(0, 1): 30.5})


class TestRoundtrip:
    def test_string_roundtrip(self, topo):
        parsed = loads_topology(dumps_topology(topo))
        assert parsed.name == topo.name
        assert parsed.nodes == topo.nodes
        assert parsed.edges == topo.edges
        assert parsed.capacities == topo.capacities

    def test_file_roundtrip(self, topo, tmp_path):
        path = tmp_path / "topo.txt"
        dump_topology(topo, path)
        parsed = load_topology(path)
        assert parsed.edges == topo.edges

    def test_comments_and_blanks_ignored(self):
        text = """
        # a comment
        topology c
        node 0
        node 1
        edge 0 1  # trailing comment
        """
        parsed = loads_topology(text)
        assert parsed.num_edges == 1

    def test_edges_without_capacity(self):
        parsed = loads_topology("topology x\nnode 0\nnode 1\nedge 0 1\n")
        assert parsed.capacities == {}


class TestErrors:
    def test_unknown_directive_rejected(self):
        with pytest.raises(TopologyError):
            loads_topology("frobnicate 1 2\n")

    def test_malformed_edge_rejected(self):
        with pytest.raises(TopologyError):
            loads_topology("node 0\nedge 0\n")

    def test_non_numeric_node_rejected(self):
        with pytest.raises(TopologyError):
            loads_topology("node zero\n")
