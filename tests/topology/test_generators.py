"""Tests for canonical and random topology generators."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.generators import (
    balanced_tree_topology,
    complete_topology,
    cycle_topology,
    erdos_renyi_topology,
    grid_topology,
    line_topology,
    scale_free_topology,
    small_world_topology,
    star_topology,
)


class TestCanonical:
    def test_line(self):
        topo = line_topology(5)
        assert topo.num_nodes == 5
        assert topo.num_edges == 4
        assert topo.is_connected()

    def test_star(self):
        topo = star_topology(6)
        assert topo.num_nodes == 7
        assert topo.num_edges == 6
        assert topo.degree_sequence()[0] == 6

    def test_cycle(self):
        topo = cycle_topology(5)
        assert topo.num_edges == 5
        assert set(topo.degree_sequence()) == {2}

    def test_cycle_too_small_rejected(self):
        with pytest.raises(TopologyError):
            cycle_topology(2)

    def test_complete(self):
        topo = complete_topology(6)
        assert topo.num_edges == 15

    def test_grid(self):
        topo = grid_topology(3, 4)
        assert topo.num_nodes == 12
        assert topo.num_edges == 3 * 3 + 2 * 4  # vertical + horizontal
        assert topo.is_connected()

    def test_tree(self):
        topo = balanced_tree_topology(2, 3)
        assert topo.num_nodes == 1 + 2 + 4 + 8
        assert topo.num_edges == topo.num_nodes - 1
        assert topo.is_connected()

    def test_tree_depth_zero_is_single_node(self):
        topo = balanced_tree_topology(3, 0)
        assert topo.num_nodes == 1
        assert topo.num_edges == 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(TopologyError):
            line_topology(0)
        with pytest.raises(TopologyError):
            balanced_tree_topology(2, -1)


class TestErdosRenyi:
    def test_deterministic_for_seed(self):
        a = erdos_renyi_topology(20, 0.3, seed=1)
        b = erdos_renyi_topology(20, 0.3, seed=1)
        assert a.edges == b.edges

    def test_connected_by_default(self):
        topo = erdos_renyi_topology(30, 0.2, seed=2)
        assert topo.is_connected()

    def test_p_one_gives_complete_graph(self):
        topo = erdos_renyi_topology(10, 1.0, seed=0)
        assert topo.num_edges == 45

    def test_invalid_p_rejected(self):
        with pytest.raises(TopologyError):
            erdos_renyi_topology(10, 1.5)

    def test_impossible_connectivity_raises(self):
        with pytest.raises(TopologyError):
            erdos_renyi_topology(30, 0.0, seed=0, max_attempts=3)


class TestSmallWorld:
    def test_ring_structure_preserved_at_beta_zero(self):
        topo = small_world_topology(12, 4, 0.0, seed=0)
        assert topo.num_edges == 12 * 2  # n*k/2
        assert set(topo.degree_sequence()) == {4}

    def test_rewiring_keeps_edge_count(self):
        topo = small_world_topology(20, 4, 0.5, seed=3)
        assert topo.num_edges == 40

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            small_world_topology(10, 3, 0.1)

    def test_k_too_large_rejected(self):
        with pytest.raises(TopologyError):
            small_world_topology(4, 4, 0.1)


class TestScaleFree:
    def test_node_and_edge_counts(self):
        topo = scale_free_topology(50, m=3, seed=0)
        assert topo.num_nodes == 50
        # m0 = 4 seed clique (6 edges) + 46 nodes × 3 edges
        assert topo.num_edges == 6 + 46 * 3
        assert topo.is_connected()

    def test_heavy_tail(self):
        topo = scale_free_topology(300, m=2, seed=1)
        degrees = topo.degree_sequence()
        assert degrees[0] > 5 * degrees[-1]

    def test_deterministic_for_seed(self):
        a = scale_free_topology(40, m=2, seed=5)
        b = scale_free_topology(40, m=2, seed=5)
        assert a.edges == b.edges

    def test_m_larger_than_m0_rejected(self):
        with pytest.raises(TopologyError):
            scale_free_topology(10, m=5, m0=3)

    def test_m0_larger_than_n_rejected(self):
        with pytest.raises(TopologyError):
            scale_free_topology(3, m=3, m0=5)
