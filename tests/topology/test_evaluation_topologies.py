"""Tests for the ISP and Ripple evaluation topologies and the Fig. 4 example."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.examples import (
    FIG4_DEMANDS,
    FIG4_MAX_CIRCULATION,
    FIG4_TOTAL_DEMAND,
    fig4_payment_graph,
    fig4_topology,
)
from repro.topology.isp import ISP_NUM_EDGES, ISP_NUM_NODES, isp_topology
from repro.topology.ripple import RIPPLE_EDGE_NODE_RATIO, ripple_topology


class TestIsp:
    def test_paper_dimensions(self):
        topo = isp_topology()
        assert topo.num_nodes == ISP_NUM_NODES == 32
        assert topo.num_edges == ISP_NUM_EDGES == 152

    def test_connected(self):
        assert isp_topology().is_connected()

    def test_deterministic(self):
        assert isp_topology().edges == isp_topology().edges

    def test_core_is_denser_than_edge(self):
        topo = isp_topology()
        adjacency = topo.adjacency()
        core_degrees = [len(adjacency[n]) for n in range(8)]
        edge_degrees = [len(adjacency[n]) for n in range(8, 32)]
        assert min(core_degrees) > max(edge_degrees)


class TestRipple:
    def test_presets_have_target_ratio(self):
        for scale in ("tiny", "small"):
            topo = ripple_topology(scale, seed=0)
            ratio = topo.num_edges / topo.num_nodes
            assert ratio == pytest.approx(RIPPLE_EDGE_NODE_RATIO, rel=0.02)

    def test_connected_and_deterministic(self):
        a = ripple_topology("tiny", seed=3)
        b = ripple_topology("tiny", seed=3)
        assert a.edges == b.edges
        assert a.is_connected()

    def test_seed_changes_graph(self):
        a = ripple_topology("tiny", seed=1)
        b = ripple_topology("tiny", seed=2)
        assert a.edges != b.edges

    def test_heavy_tailed_degrees(self):
        topo = ripple_topology("small", seed=0)
        degrees = topo.degree_sequence()
        assert degrees[0] >= 8 * degrees[-1]

    def test_unknown_preset_rejected(self):
        with pytest.raises(TopologyError):
            ripple_topology("enormous")


class TestFig4Example:
    def test_topology_shape(self):
        topo = fig4_topology()
        assert topo.num_nodes == 5
        assert topo.num_edges == 6
        assert topo.is_connected()

    def test_total_demand(self):
        assert sum(FIG4_DEMANDS.values()) == FIG4_TOTAL_DEMAND == 12.0

    def test_weight_multiset_matches_figure(self):
        weights = sorted(FIG4_DEMANDS.values())
        assert weights == [1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]

    def test_prose_demands_present(self):
        # §5.1: node 1 sends rate 1 to nodes 2 and 5; node 2 sends rate 2 to 4.
        assert FIG4_DEMANDS[(1, 2)] == 1.0
        assert FIG4_DEMANDS[(1, 5)] == 1.0
        assert FIG4_DEMANDS[(2, 4)] == 2.0

    def test_payment_graph_wrapper(self):
        graph = fig4_payment_graph()
        assert graph.total_demand() == FIG4_TOTAL_DEMAND
        assert graph.rate(2, 4) == 2.0

    def test_max_circulation_constant(self):
        assert FIG4_MAX_CIRCULATION == 8.0
