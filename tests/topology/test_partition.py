"""Graph partitioner: coverage, balance, determinism, cut-edge bookkeeping."""

from __future__ import annotations

import pytest

from repro.topology import (
    GraphPartition,
    grid_topology,
    partition_adjacency,
    partition_topology,
    ripple_topology,
)


def _connected(adjacency, nodes):
    """Whether ``nodes`` induce a connected subgraph of ``adjacency``."""
    if not nodes:
        return True
    allowed = set(nodes)
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour in allowed and neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen == allowed


class TestPartitionAdjacency:
    def test_every_node_assigned_exactly_once(self):
        topology = grid_topology(8, 8)
        adjacency = topology.adjacency()
        partition = partition_adjacency(adjacency, 4)
        covered = [node for segment in partition.segments for node in segment]
        assert sorted(covered) == sorted(adjacency)
        assert len(covered) == len(set(covered))

    def test_segments_are_balanced_and_contiguous_on_grid(self):
        topology = grid_topology(10, 10)
        adjacency = topology.adjacency()
        partition = partition_adjacency(adjacency, 4)
        sizes = partition.sizes()
        assert sum(sizes) == 100
        # Round-robin growth keeps regions roughly balanced; a region can
        # stall once boxed in, so the bound is a ratio, not one node.
        assert max(sizes) <= 1.5 * min(sizes)
        for segment in partition.segments:
            assert _connected(adjacency, list(segment))

    def test_deterministic_per_seed(self):
        adjacency = grid_topology(6, 6).adjacency()
        a = partition_adjacency(adjacency, 3, seed=5)
        b = partition_adjacency(adjacency, 3, seed=5)
        assert a.segments == b.segments
        assert a.cut_edges == b.cut_edges
        c = partition_adjacency(adjacency, 3, seed=6)
        assert c.seed == 6  # seeds are recorded on the artifact

    def test_cut_edges_are_exactly_the_cross_segment_channels(self):
        adjacency = grid_topology(6, 6).adjacency()
        partition = partition_adjacency(adjacency, 3)
        expected = sorted(
            (u, v)
            for u in adjacency
            for v in adjacency[u]
            if u < v and partition.segment_of(u) != partition.segment_of(v)
        )
        assert list(partition.cut_edges) == expected
        for u, v in partition.cut_edges:
            assert u < v

    def test_more_segments_than_nodes_clamps(self):
        adjacency = {0: [1], 1: [0]}
        partition = partition_adjacency(adjacency, 8)
        assert sum(partition.sizes()) == 2
        assert partition.num_segments <= 8

    def test_disconnected_components_land_in_smallest_segment(self):
        adjacency = {0: [1], 1: [0], 2: [3], 3: [2], 4: []}
        partition = partition_adjacency(adjacency, 2)
        covered = sorted(n for seg in partition.segments for n in seg)
        assert covered == [0, 1, 2, 3, 4]

    def test_empty_adjacency(self):
        partition = partition_adjacency({}, 3)
        assert partition.sizes() == [0, 0, 0]
        assert partition.cut_edges == ()

    def test_invalid_segment_count(self):
        with pytest.raises(ValueError):
            partition_adjacency({0: []}, 0)


class TestPartitionQueries:
    def test_is_internal_and_segment_of(self):
        partition = GraphPartition(
            segments=((0, 1, 2), (3, 4)), cut_edges=((2, 3),)
        )
        assert partition.segment_of(1) == 0
        assert partition.segment_of(4) == 1
        assert partition.is_internal((0, 1, 2))
        assert not partition.is_internal((2, 3))
        assert partition.is_internal(())

    def test_cut_edges_between(self):
        partition = GraphPartition(
            segments=((0, 1), (2, 3), (4,)),
            cut_edges=((1, 2), (3, 4), (0, 4)),
        )
        assert partition.cut_edges_between(0, 1) == [(1, 2)]
        assert partition.cut_edges_between(1, 2) == [(3, 4)]
        assert partition.cut_edges_between(0, 2) == [(0, 4)]


class TestNetworkPartition:
    def test_ripple_partition_covers_network(self):
        topology = ripple_topology("small")
        partition = partition_topology(topology, 4)
        assert sum(partition.sizes()) == len(list(topology.nodes))
        assert partition.cut_edges  # a real graph has cross-segment channels
