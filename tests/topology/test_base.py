"""Tests for the Topology datatype."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.base import Topology


class TestConstruction:
    def test_basic_counts(self):
        topo = Topology("t", [0, 1, 2], [(0, 1), (1, 2)])
        assert topo.num_nodes == 3
        assert topo.num_edges == 2

    def test_edges_are_canonicalised(self):
        topo = Topology("t", [0, 1, 10], [(10, 1), (1, 0)])
        assert (1, 10) in topo.edges
        assert (0, 1) in topo.edges

    def test_duplicate_edges_are_merged(self):
        topo = Topology("t", [0, 1], [(0, 1), (1, 0)])
        assert topo.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology("t", [0, 1], [(0, 0)])

    def test_unknown_node_in_edge_rejected(self):
        with pytest.raises(TopologyError):
            Topology("t", [0, 1], [(0, 5)])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(TopologyError):
            Topology("t", [0, 0, 1], [])


class TestAnalysis:
    def test_degree_sequence(self):
        topo = Topology("t", [0, 1, 2], [(0, 1), (0, 2)])
        assert topo.degree_sequence() == [2, 1, 1]

    def test_adjacency_is_sorted(self):
        topo = Topology("t", [0, 1, 2], [(0, 2), (0, 1)])
        assert topo.adjacency()[0] == [1, 2]

    def test_connectivity(self):
        connected = Topology("t", [0, 1, 2], [(0, 1), (1, 2)])
        disconnected = Topology("t", [0, 1, 2], [(0, 1)])
        assert connected.is_connected()
        assert not disconnected.is_connected()

    def test_empty_topology_is_connected(self):
        assert Topology("t", [], []).is_connected()


class TestBuildNetwork:
    def test_network_matches_topology(self):
        topo = Topology("t", [0, 1, 2], [(0, 1), (1, 2)])
        network = topo.build_network(default_capacity=10.0)
        assert network.num_nodes == 3
        assert network.num_channels == 2
        assert network.channel(0, 1).capacity == 10.0

    def test_balance_fraction(self):
        topo = Topology("t", [0, 1], [(0, 1)])
        network = topo.build_network(default_capacity=10.0, balance_fraction=0.8)
        assert network.channel(0, 1).balance(0) == pytest.approx(8.0)

    def test_per_edge_capacities_override_default(self):
        topo = Topology("t", [0, 1, 2], [(0, 1), (1, 2)], capacities={(0, 1): 99.0})
        network = topo.build_network(default_capacity=10.0)
        assert network.channel(0, 1).capacity == 99.0
        assert network.channel(1, 2).capacity == 10.0

    def test_invalid_build_arguments(self):
        topo = Topology("t", [0, 1], [(0, 1)])
        with pytest.raises(TopologyError):
            topo.build_network(default_capacity=0.0)
        with pytest.raises(TopologyError):
            topo.build_network(default_capacity=1.0, balance_fraction=1.5)

    def test_with_capacity_sets_every_edge(self):
        topo = Topology("t", [0, 1, 2], [(0, 1), (1, 2)])
        scaled = topo.with_capacity(5.0)
        assert scaled.capacities == {(0, 1): 5.0, (1, 2): 5.0}
        # The original is untouched.
        assert topo.capacities == {}

    def test_to_networkx_roundtrip(self):
        topo = Topology("t", [0, 1, 2], [(0, 1), (1, 2)])
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
