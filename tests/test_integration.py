"""Cross-module integration tests.

These exercise the full stack — topology → workload → scheme → runtime →
metrics — and check the system-level invariants the paper's results rely
on.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_schemes, run_experiment
from repro.routing.registry import available_schemes, make_scheme
from repro.topology.generators import cycle_topology
from repro.topology.isp import isp_topology
from repro.workload.demand import circulation_demand, records_from_demand


def small_config(**overrides):
    defaults = dict(
        topology="isp",
        capacity=2000.0,
        num_transactions=200,
        arrival_rate=60.0,
        seed=11,
        check_invariants=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConservationAcrossSchemes:
    """No scheme may create or destroy funds."""

    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    def test_total_funds_conserved(self, scheme):
        from repro.experiments.runner import build_runtime

        config = small_config(scheme=scheme, num_transactions=120)
        topology = config.build_topology()
        network = topology.build_network(default_capacity=config.capacity)
        total_before = network.total_funds()
        records = config.build_workload(list(topology.nodes))
        scheme_obj = make_scheme(scheme)
        runtime = build_runtime(
            network, records, scheme_obj, config.build_runtime_config()
        )
        runtime.run()
        network.check_invariants()
        # spider-lp with rebalancing disabled never deposits; all schemes
        # here leave capacity untouched.
        assert network.total_funds() == pytest.approx(total_before)

    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    def test_delivered_value_never_exceeds_attempted(self, scheme):
        metrics = run_experiment(small_config(scheme=scheme, num_transactions=120))
        assert metrics.delivered_value <= metrics.attempted_value + 1e-6
        assert metrics.completed_value <= metrics.delivered_value + 1e-6


class TestCirculationIsFullyRoutable:
    """Proposition 1, dynamically: a circulation demand on an ample-capacity
    network should be (nearly) fully routable by the multipath schemes,
    while one-way demand is not."""

    def _run(self, scheme_name, demands, capacity=50_000.0):
        topology = cycle_topology(6)
        network = topology.build_network(default_capacity=capacity)
        records = records_from_demand(demands, duration=30.0, mean_size=10.0, seed=2)
        runtime = Runtime(
            network,
            records,
            make_scheme(scheme_name),
            RuntimeConfig(end_time=60.0, check_invariants=True),
        )
        return runtime.run()

    def test_circulation_demand_flows(self):
        demands = circulation_demand(range(6), 60.0, num_cycles=3, seed=1)
        metrics = self._run("spider-waterfilling", demands)
        assert metrics.success_volume > 0.95

    def test_one_way_demand_eventually_starves(self):
        # All value moves 0 -> 3; with capacity 60 per channel (30 per
        # direction) only the escrowed funds can ever cross.
        metrics = self._run("spider-waterfilling", {(0, 3): 50.0}, capacity=60.0)
        assert metrics.success_volume < 0.2


class TestSchemeOrdering:
    """The qualitative Fig. 6 ordering on a moderately loaded ISP network."""

    @pytest.fixture(scope="class")
    def results(self):
        config = ExperimentConfig(
            topology="isp",
            capacity=2000.0,
            num_transactions=1200,
            arrival_rate=100.0,
            seed=7,
        )
        schemes = [
            "spider-waterfilling",
            "max-flow",
            "shortest-path",
            "silentwhispers",
            "speedymurmurs",
        ]
        return {m.scheme: m for m in compare_schemes(config, schemes)}

    def test_waterfilling_close_to_max_flow(self, results):
        # §6.2: "Spider (Waterfilling) ... within 5% of Max-flow".
        waterfilling = results["spider-waterfilling"].success_ratio
        max_flow = results["max-flow"].success_ratio
        assert waterfilling >= max_flow - 0.05

    def test_packet_switching_beats_atomic_baselines(self, results):
        # §6.2: non-atomic shortest-path already beats SpeedyMurmurs and
        # SilentWhispers.
        shortest = results["shortest-path"].success_ratio
        assert shortest > results["silentwhispers"].success_ratio
        assert shortest >= results["speedymurmurs"].success_ratio - 0.02

    def test_waterfilling_beats_shortest_path_on_volume(self, results):
        assert (
            results["spider-waterfilling"].success_volume
            >= results["shortest-path"].success_volume
        )


class TestDeterminismAcrossRuns:
    def test_full_pipeline_is_reproducible(self):
        config = small_config(scheme="spider-primal-dual", num_transactions=150)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.completed == b.completed
        assert a.delivered_value == pytest.approx(b.delivered_value)
        assert a.units_settled == b.units_settled
