"""Scale smoke: the session engine at 10k-node Ripple-like scale.

The full 10k-node / 33k-channel run takes tens of seconds, so locally it
is gated behind ``REPRO_SLOW_TESTS=1`` (CI's engine-smoke job runs the
identical workload through ``benchmarks/bench_substrate_micro.py`` and
records the numbers in ``BENCH_substrate.json``).  A miniature variant of
the same harness — same code path, ``tiny`` preset — always runs so the
scale plumbing stays covered by the tier-1 suite.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.bench_substrate_micro import run_scale_smoke

RUN_SLOW = os.environ.get("REPRO_SLOW_TESTS") == "1"


def _check_report(report, nodes: int):
    assert report["network"]["nodes"] == nodes
    assert report["network"]["channels"] > nodes  # edge/node ratio ≈ 3.32
    assert report["events_per_sec"] > 0
    assert report["transactions_per_sec"] > 0
    assert 0.0 <= report["success_ratio"] <= 1.0
    assert report["sweep"]["cells"] == 2
    assert report["sweep"]["wall_seconds"] > 0
    # The sweep runs with the persistent path cache active: the parent's
    # precompute pass must have written at least one discovery artifact.
    assert report["sweep"]["path_artifacts"] >= 1


def test_scale_smoke_miniature():
    """The scale harness end to end on the tiny preset (sub-second)."""
    report = run_scale_smoke(transactions=40, preset="tiny", processes=1)
    _check_report(report, nodes=60)


@pytest.mark.skipif(
    not RUN_SLOW, reason="10k-node scale smoke: set REPRO_SLOW_TESTS=1 to run"
)
def test_scale_smoke_10k_nodes():
    """The full 10k-node Ripple-like workload through the SweepExecutor."""
    report = run_scale_smoke(transactions=600, preset="huge", processes=2)
    _check_report(report, nodes=10000)
    # Bounded runtime: a regression that blows the budget should fail
    # loudly here rather than silently eat the CI smoke allowance.
    assert report["run_seconds"] < 120
    assert report["sweep"]["wall_seconds"] < 240
