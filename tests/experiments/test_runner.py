"""Integration tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_schemes, run_experiment
from repro.experiments.sweeps import capacity_sweep, parameter_sweep


def small_config(**overrides):
    defaults = dict(
        topology="isp",
        capacity=2000.0,
        num_transactions=300,
        arrival_rate=60.0,
        sizes="isp",
        seed=5,
        check_invariants=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunExperiment:
    def test_run_is_deterministic(self):
        a = run_experiment(small_config(scheme="spider-waterfilling"))
        b = run_experiment(small_config(scheme="spider-waterfilling"))
        assert a.completed == b.completed
        assert a.delivered_value == pytest.approx(b.delivered_value)

    def test_metrics_are_well_formed(self):
        metrics = run_experiment(small_config(scheme="shortest-path"))
        assert metrics.attempted == 300
        assert 0.0 <= metrics.success_ratio <= 1.0
        assert 0.0 <= metrics.success_volume <= 1.0
        assert metrics.completed + metrics.failed <= metrics.attempted
        assert metrics.scheme == "shortest-path"

    def test_every_registered_scheme_runs(self):
        from repro.routing.registry import available_schemes

        for scheme in available_schemes():
            metrics = run_experiment(
                small_config(scheme=scheme, num_transactions=60)
            )
            assert metrics.attempted == 60


class TestCompareSchemes:
    def test_schemes_see_identical_traces(self):
        results = compare_schemes(
            small_config(), ["shortest-path", "spider-waterfilling"]
        )
        assert all(r.attempted == 300 for r in results)
        assert results[0].attempted_value == pytest.approx(results[1].attempted_value)

    def test_scheme_params_forwarded(self):
        results = compare_schemes(
            small_config(num_transactions=50),
            ["spider-waterfilling"],
            scheme_params={"spider-waterfilling": {"num_paths": 2}},
        )
        assert results[0].attempted == 50


class TestSweeps:
    def test_capacity_sweep_shape(self):
        results = capacity_sweep(
            small_config(num_transactions=100),
            capacities=[500.0, 5000.0],
            schemes=["shortest-path"],
        )
        assert set(results) == {("shortest-path", 500.0), ("shortest-path", 5000.0)}

    def test_more_capacity_never_hurts_much(self):
        """Fig. 7's premise: success improves with capacity."""
        results = capacity_sweep(
            small_config(num_transactions=200),
            capacities=[300.0, 30_000.0],
            schemes=["spider-waterfilling"],
        )
        poor = results[("spider-waterfilling", 300.0)]
        rich = results[("spider-waterfilling", 30_000.0)]
        assert rich.success_volume >= poor.success_volume
        assert rich.success_ratio >= poor.success_ratio

    def test_parameter_sweep_over_mtu(self):
        results = parameter_sweep(
            small_config(num_transactions=60),
            field="mtu",
            values=[25.0, float("inf")],
            schemes=["spider-waterfilling"],
        )
        assert len(results) == 2
