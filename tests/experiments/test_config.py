"""Tests for experiment configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.config import (
    ExperimentConfig,
    build_size_distribution,
    build_topology,
)


class TestBuildTopology:
    @pytest.mark.parametrize(
        "spec,nodes",
        [
            ("isp", 32),
            ("fig4", 5),
            ("line-7", 7),
            ("star-4", 5),
            ("cycle-6", 6),
            ("complete-5", 5),
            ("grid-2x3", 6),
            ("tree-2x2", 7),
            ("scale-free-30", 30),
        ],
    )
    def test_specs_build(self, spec, nodes):
        assert build_topology(spec).num_nodes == nodes

    def test_ripple_spec(self):
        topo = build_topology("ripple-tiny")
        assert topo.num_nodes == 60

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigError):
            build_topology("mystery-9")


class TestBuildSizes:
    def test_named_specs(self):
        assert build_size_distribution("isp").mean == 170.0
        assert build_size_distribution("ripple").mean == 345.0

    def test_parameterised_specs(self):
        assert build_size_distribution("constant:25").mean == 25.0
        assert build_size_distribution("exp:50").mean == 50.0

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigError):
            build_size_distribution("weird")


class TestExperimentConfig:
    def test_defaults_build(self):
        config = ExperimentConfig()
        topo = config.build_topology()
        assert topo.num_nodes == 32
        assert all(c == config.capacity for c in topo.capacities.values())

    def test_workload_is_seeded(self):
        config = ExperimentConfig(num_transactions=50)
        nodes = list(range(32))
        assert config.build_workload(nodes) == config.build_workload(nodes)

    def test_workload_independent_of_scheme(self):
        base = ExperimentConfig(num_transactions=50)
        a = base.with_overrides(scheme="max-flow")
        b = base.with_overrides(scheme="shortest-path")
        nodes = list(range(32))
        assert a.build_workload(nodes) == b.build_workload(nodes)

    def test_with_overrides_copies(self):
        base = ExperimentConfig(capacity=100.0)
        changed = base.with_overrides(capacity=200.0)
        assert base.capacity == 100.0
        assert changed.capacity == 200.0

    def test_runtime_config_propagates(self):
        config = ExperimentConfig(mtu=10.0, poll_interval=0.25, scheduling_policy="fifo")
        runtime_config = config.build_runtime_config()
        assert runtime_config.mtu == 10.0
        assert runtime_config.poll_interval == 0.25
        assert runtime_config.scheduling_policy == "fifo"

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(capacity=0.0)
        with pytest.raises(ConfigError):
            ExperimentConfig(num_transactions=0)
