"""Tests for programmatic figure regeneration."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    FIG6_SCHEMES,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    generate_all,
    rebalancing_curve_data,
)


class TestFigureData:
    def test_fig4_exact_numbers(self):
        data = fig4_data()
        assert data["shortest_path_throughput"] == pytest.approx(5.0)
        assert data["optimal_throughput"] == pytest.approx(8.0)
        assert data["total_demand"] == pytest.approx(12.0)

    def test_fig5_exact_numbers(self):
        data = fig5_data()
        assert data["circulation"] == pytest.approx(8.0)
        assert data["dag"] == pytest.approx(4.0)
        assert data["circulation_fraction"] == pytest.approx(2.0 / 3.0)

    def test_fig6_runs_all_schemes(self):
        results = fig6_data("isp", seed=3)
        assert [m.scheme for m in results] == FIG6_SCHEMES
        assert all(m.attempted > 0 for m in results)

    def test_fig7_shape(self):
        sweep = fig7_data(capacities=[800.0, 8_000.0], schemes=["shortest-path"])
        assert set(sweep) == {("shortest-path", 800.0), ("shortest-path", 8_000.0)}
        assert (
            sweep[("shortest-path", 8_000.0)].success_volume
            >= sweep[("shortest-path", 800.0)].success_volume
        )

    def test_rebalancing_curve_endpoints(self):
        curve = rebalancing_curve_data(budgets=[0.0, 10.0])
        assert curve[0][1] == pytest.approx(8.0, abs=1e-6)
        assert curve[1][1] == pytest.approx(12.0, abs=1e-6)


class TestGenerateAll:
    def test_writes_every_figure_file(self, tmp_path):
        written = generate_all(tmp_path)
        names = {p.name for p in written}
        assert names == {
            "fig4_motivating.txt",
            "fig5_decomposition.txt",
            "fig6_isp.txt",
            "fig6_ripple.txt",
            "fig7_ratio.txt",
            "fig7_volume.txt",
            "rebalancing_curve.txt",
            "baselines.txt",
        }
        for path in written:
            assert path.read_text().strip()

    def test_cli_figures_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["figures", "--out", str(tmp_path / "r")]) == 0
        out = capsys.readouterr().out
        assert "fig6_isp.txt" in out
