"""Tests for the parallel SweepExecutor."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import (
    SweepCell,
    SweepCellError,
    SweepExecutor,
    derive_cell_seed,
)
from repro.experiments.sweeps import parameter_sweep
from repro.metrics.collectors import ExperimentMetrics
from repro.metrics.report import metrics_to_json

CAPACITIES = [100.0, 140.0, 180.0, 220.0]
SCHEMES = ["spider-waterfilling", "shortest-path"]


def _base(**overrides):
    base = dict(
        scheme="spider-waterfilling",
        topology="line-4",
        capacity=150.0,
        num_transactions=100,
        arrival_rate=40.0,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestCellGrid:
    def test_grid_shape_and_seeds(self):
        executor = SweepExecutor(_base(), processes=1)
        cells = executor.cells("capacity", CAPACITIES, SCHEMES)
        assert len(cells) == 8
        # Schemes at the same value share a seed (identical traces)...
        by_value = {}
        for cell in cells:
            by_value.setdefault(cell.value, set()).add(cell.config.seed)
        assert all(len(seeds) == 1 for seeds in by_value.values())
        # ...and different values get different derived seeds.
        assert len({next(iter(s)) for s in by_value.values()}) == len(CAPACITIES)

    def test_cell_seeds_reproducible(self):
        assert derive_cell_seed(11, "capacity", 100.0) == derive_cell_seed(
            11, "capacity", 100.0
        )
        assert derive_cell_seed(11, "capacity", 100.0) != derive_cell_seed(
            12, "capacity", 100.0
        )

    def test_reseed_disabled_keeps_base_seed(self):
        executor = SweepExecutor(_base(), processes=1, reseed_cells=False)
        cells = executor.cells("capacity", CAPACITIES, SCHEMES)
        assert {cell.config.seed for cell in cells} == {11}


class TestParallelExecution:
    def test_eight_cells_parallel_matches_serial(self):
        """≥8 cells through worker processes, byte-identical to serial."""
        parallel = SweepExecutor(_base(), processes=2).parameter_sweep(
            "capacity", CAPACITIES, SCHEMES
        )
        serial = SweepExecutor(_base(), processes=1).parameter_sweep(
            "capacity", CAPACITIES, SCHEMES
        )
        assert len(parallel) == 8
        assert parallel.keys() == serial.keys()
        for key in parallel:
            assert metrics_to_json(parallel[key]) == metrics_to_json(serial[key])

    def test_matches_serial_sweeps_module_when_not_reseeded(self):
        executor = SweepExecutor(_base(), processes=2, reseed_cells=False)
        via_executor = executor.parameter_sweep("capacity", CAPACITIES[:2], SCHEMES)
        via_sweeps = parameter_sweep(_base(), "capacity", CAPACITIES[:2], SCHEMES)
        for key, metrics in via_sweeps.items():
            assert metrics_to_json(via_executor[key]) == metrics_to_json(metrics)


class TestFailureIdentity:
    """A dying cell must name itself, not surface a bare pool traceback."""

    def _cells(self):
        good = _base()
        bad = _base(topology="no-such-topology")
        return [
            SweepCell(0, "spider-waterfilling", "capacity", 100.0, good),
            SweepCell(1, "spider-waterfilling", "capacity", 140.0, bad),
        ]

    @pytest.mark.parametrize("processes", [1, 2])
    def test_failure_names_the_owning_cell(self, processes):
        executor = SweepExecutor(_base(), processes=processes)
        with pytest.raises(SweepCellError) as excinfo:
            executor.run_cells(self._cells())
        err = excinfo.value
        assert err.cell.index == 1
        assert err.cell.scheme == "spider-waterfilling"
        assert (err.cell.field, err.cell.value) == ("capacity", 140.0)
        message = str(err)
        # The identity the operator needs to reproduce the cell...
        assert "capacity=140.0" in message
        assert "spider-waterfilling" in message
        assert f"seed={err.cell.config.seed}" in message
        # ...plus the worker's traceback, verbatim.
        assert "no-such-topology" in message
        assert "Traceback" in err.traceback_text

    def test_lowest_index_failure_wins(self):
        cells = self._cells()
        bad0 = SweepCell(
            2, "shortest-path", "capacity", 180.0, _base(topology="also-bad")
        )
        executor = SweepExecutor(_base(), processes=1)
        with pytest.raises(SweepCellError) as excinfo:
            executor.run_cells([bad0, *cells])
        assert excinfo.value.cell.index == 1  # deterministic: lowest index


class TestCaching:
    def test_cache_round_trip(self, tmp_path):
        cache = str(tmp_path / "cells")
        first = SweepExecutor(_base(), processes=1, cache_dir=cache)
        results = first.parameter_sweep("capacity", CAPACITIES[:2], SCHEMES)
        assert first.cache_misses == 4 and first.cache_hits == 0
        # One JSON per cell, plus the path-artifact subdirectory the
        # executor now maintains alongside the cell cache.
        cell_entries = [f for f in os.listdir(cache) if f.endswith(".json")]
        assert len(cell_entries) == 4
        assert os.path.isdir(os.path.join(cache, "paths"))

        second = SweepExecutor(_base(), processes=1, cache_dir=cache)
        cached = second.parameter_sweep("capacity", CAPACITIES[:2], SCHEMES)
        assert second.cache_hits == 4 and second.cache_misses == 0
        for key in results:
            assert metrics_to_json(cached[key]) == metrics_to_json(results[key])

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = str(tmp_path / "cells")
        executor = SweepExecutor(_base(), processes=1, cache_dir=cache)
        executor.parameter_sweep("capacity", CAPACITIES[:1], SCHEMES[:1])
        (entry,) = [f for f in os.listdir(cache) if f.endswith(".json")]
        with open(os.path.join(cache, entry), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        again = SweepExecutor(_base(), processes=1, cache_dir=cache)
        results = again.parameter_sweep("capacity", CAPACITIES[:1], SCHEMES[:1])
        assert again.cache_misses == 1
        assert isinstance(next(iter(results.values())), ExperimentMetrics)

    def test_cache_key_distinguishes_engines(self, tmp_path):
        cache = str(tmp_path / "cells")
        SweepExecutor(_base(), processes=1, cache_dir=cache).parameter_sweep(
            "capacity", CAPACITIES[:1], SCHEMES[:1]
        )
        legacy = SweepExecutor(
            _base(), processes=1, cache_dir=cache, engine="legacy"
        )
        legacy.parameter_sweep("capacity", CAPACITIES[:1], SCHEMES[:1])
        assert legacy.cache_hits == 0 and legacy.cache_misses == 1


class TestMetricsRoundTrip:
    def test_to_dict_from_dict_is_lossless(self):
        from repro.experiments.runner import run_experiment

        metrics = run_experiment(_base())
        clone = ExperimentMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict()))
        )
        assert metrics_to_json(clone) == metrics_to_json(metrics)
