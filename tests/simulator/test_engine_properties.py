"""Property-based tests for the event engine.

The engine's contract — time-ordered, FIFO-stable, deterministic execution
— is what every other result in this repository rests on; hypothesis
drives randomized schedules against it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Simulator

schedule = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.booleans(),  # whether to cancel this event
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=150, deadline=None)
@given(schedule)
def test_events_fire_in_nondecreasing_time_order(entries):
    sim = Simulator()
    fired_times = []
    for time, _ in entries:
        sim.call_at(time, lambda t=time: fired_times.append(t))
    sim.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(entries)


@settings(max_examples=150, deadline=None)
@given(schedule)
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for index, (time, cancel) in enumerate(entries):
        handles.append((sim.call_at(time, fired.append, index), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = {i for i, (_, cancel) in enumerate(entries) if not cancel}
    assert set(fired) == expected


@settings(max_examples=100, deadline=None)
@given(schedule, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_split_runs_equal_single_run(entries, cut):
    """run(until=cut); run() produces the same firing order as run()."""
    def execute(split: bool):
        sim = Simulator()
        fired = []
        for index, (time, _) in enumerate(entries):
            sim.call_at(time, fired.append, (time, index))
        if split:
            sim.run(until=cut)
            sim.run()
        else:
            sim.run()
        return fired

    assert execute(split=True) == execute(split=False)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=30))
def test_chained_relative_delays_accumulate(delays):
    sim = Simulator()
    times = []
    iterator = iter(delays[1:])

    def step():
        times.append(sim.now)
        delay = next(iterator, None)
        if delay is not None:
            sim.call_after(delay, step)

    sim.call_after(delays[0], step)
    sim.run()
    # One firing per delay; the clock ends at the sum of all delays.
    assert len(times) == len(delays)
    assert times == sorted(times)
    assert sim.now == pytest.approx(sum(delays))


@settings(max_examples=100, deadline=None)
@given(schedule)
def test_same_schedule_is_bitwise_deterministic(entries):
    def execute():
        sim = Simulator()
        order = []
        for index, (time, _) in enumerate(entries):
            sim.call_at(time, order.append, index)
        sim.run()
        return order, sim.now, sim.events_processed

    assert execute() == execute()
