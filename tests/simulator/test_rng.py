"""Tests for seeded RNG utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.rng import derive_seed, exponential_weights, make_rng, spawn


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passes_through(self):
        rng = make_rng(7)
        assert make_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(9)
        rng = make_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestSpawn:
    def test_children_are_independent_and_stable(self):
        first = [g.random(3) for g in spawn(5, 3)]
        second = [g.random(3) for g in spawn(5, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_count_zero_gives_empty(self):
        assert spawn(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_spawn_from_generator(self):
        children = spawn(make_rng(3), 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "workload") == derive_seed(1, "workload")

    def test_labels_change_seed(self):
        assert derive_seed(1, "workload") != derive_seed(1, "topology")

    def test_base_changes_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_mixed_components(self):
        value = derive_seed(5, "trial", 3)
        assert isinstance(value, int)
        assert 0 <= value < 2**63


class TestExponentialWeights:
    def test_weights_form_distribution(self):
        weights = exponential_weights(50, 1.0, make_rng(0))
        assert weights.shape == (50,)
        assert np.all(weights > 0)
        assert abs(weights.sum() - 1.0) < 1e-12

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            exponential_weights(0, 1.0, make_rng(0))
        with pytest.raises(ValueError):
            exponential_weights(5, 0.0, make_rng(0))

    def test_weights_are_skewed(self):
        # Exponential popularity: the max weight should dominate the min.
        weights = exponential_weights(100, 1.0, make_rng(1))
        assert weights.max() / weights.min() > 10
