"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Event, RecurringTimer, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.call_at(3.0, lambda: fired.append(3))
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2, 3]

    def test_equal_times_fire_in_scheduling_order(self, sim):
        fired = []
        for i in range(10):
            sim.call_at(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_priority_breaks_ties_before_sequence(self, sim):
        fired = []
        sim.call_at(1.0, fired.append, "late", priority=1)
        sim.call_at(1.0, fired.append, "early", priority=0)
        sim.run()
        assert fired == ["early", "late"]

    def test_call_after_is_relative(self, sim):
        times = []
        sim.call_at(5.0, lambda: sim.call_after(2.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [7.5]

    def test_callback_args_are_passed(self, sim):
        received = []
        sim.call_at(1.0, lambda a, b: received.append((a, b)), 1, "x")
        sim.run()
        assert received == [(1, "x")]

    def test_scheduling_in_past_raises(self, sim):
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(4.0, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.call_after(-1.0, lambda: None)

    def test_non_finite_time_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.call_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.call_at(float("nan"), lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.call_after(1.0, lambda: fired.append("second"))

        sim.call_at(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_event_at_current_time_during_run_executes(self, sim):
        fired = []
        sim.call_at(1.0, lambda: sim.call_at(1.0, lambda: fired.append("same-time")))
        sim.run()
        assert fired == ["same-time"]


class TestClock:
    def test_clock_starts_at_start_time(self):
        assert Simulator(start_time=10.0).now == 10.0

    def test_non_finite_start_time_raises(self):
        with pytest.raises(SimulationError):
            Simulator(start_time=float("nan"))

    def test_clock_advances_to_event_times(self, sim):
        times = []
        sim.call_at(1.5, lambda: times.append(sim.now))
        sim.call_at(4.25, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.25]

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_run_backwards_raises(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestRunControl:
    def test_run_until_excludes_later_events(self, sim):
        fired = []
        sim.call_at(1.0, fired.append, 1)
        sim.call_at(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_event_exactly_at_until_fires(self, sim):
        fired = []
        sim.call_at(5.0, fired.append, 5)
        sim.run(until=5.0)
        assert fired == [5]

    def test_max_events_bounds_execution(self, sim):
        fired = []
        for i in range(10):
            sim.call_at(float(i), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_from_callback_halts_run(self, sim):
        fired = []

        def stopper():
            fired.append(1)
            sim.stop()

        sim.call_at(1.0, stopper)
        sim.call_at(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_step_fires_one_event(self, sim):
        fired = []
        sim.call_at(1.0, fired.append, 1)
        sim.call_at(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.call_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_peek_returns_next_pending_time(self, sim):
        assert sim.peek() is None
        event = sim.call_at(2.0, lambda: None)
        sim.call_at(5.0, lambda: None)
        assert sim.peek() == 2.0
        event.cancel()
        assert sim.peek() == 5.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.call_at(1.0, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []
        assert event.cancelled and not event.fired

    def test_cancel_is_idempotent(self, sim):
        event = sim.call_at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_cancel_from_earlier_event(self, sim):
        fired = []
        later = sim.call_at(2.0, fired.append, "later")
        sim.call_at(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_pending_property_lifecycle(self, sim):
        event = sim.call_at(1.0, lambda: None)
        assert event.pending
        sim.run()
        assert event.fired and not event.pending


class TestRecurringTimer:
    def test_fires_at_fixed_interval(self, sim):
        times = []
        timer = RecurringTimer(sim, 1.0, lambda: times.append(sim.now))
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]
        assert timer.ticks == 3

    def test_start_delay_overrides_first_fire(self, sim):
        times = []
        RecurringTimer(sim, 1.0, lambda: times.append(sim.now), start_delay=0.25)
        sim.run(until=2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_stop_prevents_future_fires(self, sim):
        times = []
        timer = RecurringTimer(sim, 1.0, lambda: times.append(sim.now))
        sim.call_at(2.5, timer.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not timer.active

    def test_stop_from_within_callback(self, sim):
        timer = RecurringTimer(sim, 1.0, lambda: timer.stop())
        sim.run(until=5.0)
        assert timer.ticks == 1

    def test_non_positive_interval_raises(self, sim):
        with pytest.raises(SimulationError):
            RecurringTimer(sim, 0.0, lambda: None)


class TestReentrancy:
    def test_run_is_not_reentrant(self, sim):
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.call_at(1.0, nested)
        sim.run()
        assert len(errors) == 1
