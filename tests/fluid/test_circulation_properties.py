"""Property-based tests for circulation theory (Proposition 1 invariants)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid.circulation import (
    PaymentGraph,
    decompose_payment_graph,
    is_circulation,
    is_dag,
    max_circulation_cycle_cancelling,
    max_circulation_lp,
)


@st.composite
def payment_graphs(draw, max_nodes=7):
    """Random payment graphs with integer-ish demands."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=1, max_size=12, unique=True)
    )
    demands = {}
    for pair in chosen:
        demands[pair] = float(draw(st.integers(min_value=1, max_value=9)))
    return PaymentGraph(demands)


@settings(max_examples=60, deadline=None)
@given(payment_graphs())
def test_lp_and_cycle_cancelling_agree(graph):
    """Two independent ν(C*) computations must agree."""
    lp_value = sum(max_circulation_lp(graph).values())
    cc_value = sum(max_circulation_cycle_cancelling(graph).values())
    assert lp_value == pytest.approx(cc_value, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(payment_graphs())
def test_decomposition_invariants(graph):
    """circulation + DAG == demands; circulation balanced; remainder acyclic;
    0 <= nu <= total demand."""
    decomposition = decompose_payment_graph(graph, method="lp")
    assert is_circulation(decomposition.circulation)
    assert is_dag(decomposition.dag)
    assert -1e-9 <= decomposition.value <= graph.total_demand() + 1e-9
    for edge, rate in graph.demands.items():
        parts = decomposition.circulation.get(edge, 0.0) + decomposition.dag.get(edge, 0.0)
        assert parts == pytest.approx(rate, abs=1e-6)
    # Circulation never exceeds per-edge demand.
    for edge, flow in decomposition.circulation.items():
        assert flow <= graph.demands[edge] + 1e-6


@settings(max_examples=40, deadline=None)
@given(payment_graphs(), st.integers(min_value=1, max_value=5))
def test_scaling_demands_scales_circulation(graph, factor):
    """ν(k·H) == k·ν(H): the LP is positively homogeneous."""
    scaled = PaymentGraph({e: r * factor for e, r in graph.demands.items()})
    base = sum(max_circulation_lp(graph).values())
    scaled_value = sum(max_circulation_lp(scaled).values())
    assert scaled_value == pytest.approx(base * factor, rel=1e-6, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(payment_graphs())
def test_adding_reverse_demand_never_decreases_circulation(graph):
    """Adding demand can only help: ν is monotone in the demand matrix."""
    base = sum(max_circulation_lp(graph).values())
    edges = graph.edges()
    first = edges[0]
    augmented = PaymentGraph(graph.demands)
    augmented.add_demand(first[1], first[0], 1.0)
    assert sum(max_circulation_lp(augmented).values()) >= base - 1e-6
