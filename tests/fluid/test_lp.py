"""Tests for the fluid LPs (eqs. 1–18)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fluid.lp import (
    max_balanced_throughput,
    max_unbalanced_throughput,
    solve_fluid_lp,
    solve_rebalancing_lp,
    throughput_vs_rebalancing,
    throughput_with_budget,
)
from repro.fluid.paths import all_simple_paths, bfs_shortest_path
from repro.topology.examples import (
    FIG4_DEMANDS,
    FIG4_MAX_CIRCULATION,
    FIG4_OPTIMAL_THROUGHPUT,
    FIG4_SHORTEST_PATH_THROUGHPUT,
    FIG4_TOTAL_DEMAND,
    fig4_topology,
)


@pytest.fixture(scope="module")
def fig4_paths():
    adjacency = fig4_topology().adjacency()
    return {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}


@pytest.fixture(scope="module")
def fig4_sp_paths():
    adjacency = fig4_topology().adjacency()
    return {pair: [bfs_shortest_path(adjacency, *pair)] for pair in FIG4_DEMANDS}


class TestFig4Numbers:
    """The paper's §5.1 example, end to end."""

    def test_optimal_balanced_throughput_is_8(self, fig4_paths):
        solution = max_balanced_throughput(FIG4_DEMANDS, fig4_paths)
        assert solution.throughput == pytest.approx(FIG4_OPTIMAL_THROUGHPUT)

    def test_shortest_path_balanced_throughput_is_5(self, fig4_sp_paths):
        solution = max_balanced_throughput(FIG4_DEMANDS, fig4_sp_paths)
        assert solution.throughput == pytest.approx(FIG4_SHORTEST_PATH_THROUGHPUT)

    def test_optimal_equals_max_circulation(self, fig4_paths):
        # Proposition 1: balanced throughput == nu(C*) with ample capacity.
        solution = max_balanced_throughput(FIG4_DEMANDS, fig4_paths)
        assert solution.throughput == pytest.approx(FIG4_MAX_CIRCULATION)

    def test_unbalanced_throughput_hits_total_demand(self, fig4_paths):
        solution = max_unbalanced_throughput(FIG4_DEMANDS, fig4_paths)
        assert solution.throughput == pytest.approx(FIG4_TOTAL_DEMAND)

    def test_edge_flows_are_balanced(self, fig4_paths):
        solution = max_balanced_throughput(FIG4_DEMANDS, fig4_paths)
        for (u, v), flow in solution.edge_flows.items():
            reverse = solution.edge_flows.get((v, u), 0.0)
            assert flow == pytest.approx(reverse, abs=1e-6)

    def test_pair_flows_respect_demands(self, fig4_paths):
        solution = max_balanced_throughput(FIG4_DEMANDS, fig4_paths)
        for pair, flow in solution.pair_flows.items():
            assert flow <= FIG4_DEMANDS[pair] + 1e-6

    def test_demand_fraction(self, fig4_paths):
        solution = max_balanced_throughput(FIG4_DEMANDS, fig4_paths)
        assert solution.demand_fraction(FIG4_DEMANDS) == pytest.approx(8.0 / 12.0)


class TestCapacityConstraints:
    def test_capacity_caps_throughput(self, fig4_paths):
        tight = {edge: 1.0 for edge in fig4_topology().edges}
        solution = max_balanced_throughput(
            FIG4_DEMANDS, fig4_paths, capacities=tight, delta=1.0
        )
        assert solution.throughput < 8.0

    def test_delta_scales_capacity(self, fig4_paths):
        capacities = {edge: 4.0 for edge in fig4_topology().edges}
        fast = max_balanced_throughput(FIG4_DEMANDS, fig4_paths, capacities, delta=1.0)
        slow = max_balanced_throughput(FIG4_DEMANDS, fig4_paths, capacities, delta=4.0)
        assert slow.throughput < fast.throughput

    def test_missing_capacity_treated_as_unlimited(self, fig4_paths):
        solution = max_balanced_throughput(FIG4_DEMANDS, fig4_paths, capacities={})
        assert solution.throughput == pytest.approx(8.0)


class TestRebalancingLP:
    def test_large_gamma_recovers_balanced_solution(self, fig4_paths):
        solution = solve_rebalancing_lp(FIG4_DEMANDS, fig4_paths, None, gamma=100.0)
        assert solution.throughput == pytest.approx(8.0, abs=1e-5)
        assert solution.total_rebalancing == pytest.approx(0.0, abs=1e-5)

    def test_small_gamma_unlocks_full_demand(self, fig4_paths):
        solution = solve_rebalancing_lp(FIG4_DEMANDS, fig4_paths, None, gamma=0.01)
        assert solution.throughput == pytest.approx(12.0, abs=1e-5)
        assert solution.total_rebalancing > 0.0

    def test_throughput_and_objective_decrease_with_gamma(self, fig4_paths):
        # §5.2.3: as gamma grows, throughput and rebalancing both shrink
        # toward the balanced optimum.
        gammas = [0.1, 0.5, 1.0, 2.0, 100.0]
        solutions = [
            solve_rebalancing_lp(FIG4_DEMANDS, fig4_paths, None, gamma=g)
            for g in gammas
        ]
        throughputs = [s.throughput for s in solutions]
        rebalancing = [s.total_rebalancing for s in solutions]
        for a, b in zip(throughputs, throughputs[1:]):
            assert b <= a + 1e-6
        for a, b in zip(rebalancing, rebalancing[1:]):
            assert b <= a + 1e-6
        assert throughputs[-1] == pytest.approx(8.0, abs=1e-5)

    def test_dag_flows_can_share_rebalancing(self, fig4_paths):
        # At gamma == 1 the optimum routes part of the DAG because opposing
        # DAG flows cancel imbalance: 2 extra units of throughput cost only
        # 1 unit of rebalancing, so the objective exceeds the balanced 8.
        solution = solve_rebalancing_lp(FIG4_DEMANDS, fig4_paths, None, gamma=1.0)
        assert solution.objective == pytest.approx(9.0, abs=1e-5)
        assert solution.throughput == pytest.approx(10.0, abs=1e-5)
        assert solution.total_rebalancing == pytest.approx(1.0, abs=1e-5)

    def test_negative_gamma_rejected(self, fig4_paths):
        with pytest.raises(ConfigError):
            solve_rebalancing_lp(FIG4_DEMANDS, fig4_paths, None, gamma=-1.0)


class TestBudgetCurve:
    def test_zero_budget_equals_balanced(self, fig4_paths):
        solution = throughput_with_budget(FIG4_DEMANDS, fig4_paths, None, budget=0.0)
        assert solution.throughput == pytest.approx(8.0, abs=1e-6)

    def test_large_budget_reaches_total_demand(self, fig4_paths):
        solution = throughput_with_budget(FIG4_DEMANDS, fig4_paths, None, budget=100.0)
        assert solution.throughput == pytest.approx(12.0, abs=1e-6)

    def test_curve_is_non_decreasing_and_concave(self, fig4_paths):
        budgets = [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0]
        curve = throughput_vs_rebalancing(FIG4_DEMANDS, fig4_paths, None, budgets)
        values = [t for _, t in curve]
        # Non-decreasing (§5.2.3).
        for a, b in zip(values, values[1:]):
            assert b >= a - 1e-6
        # Concave: discrete second differences non-positive on the uniform
        # prefix of the budget grid.
        uniform = values[:5]  # budgets 0..4 step 1
        for i in range(1, len(uniform) - 1):
            assert uniform[i + 1] - uniform[i] <= uniform[i] - uniform[i - 1] + 1e-6

    def test_missing_budget_rejected(self, fig4_paths):
        with pytest.raises(ConfigError):
            solve_fluid_lp(FIG4_DEMANDS, fig4_paths, balance="budget")


class TestValidation:
    def test_unknown_balance_mode_rejected(self, fig4_paths):
        with pytest.raises(ConfigError):
            solve_fluid_lp(FIG4_DEMANDS, fig4_paths, balance="bogus")

    def test_missing_paths_rejected(self):
        with pytest.raises(ConfigError):
            solve_fluid_lp({(0, 1): 1.0}, {})

    def test_degenerate_path_rejected(self):
        with pytest.raises(ConfigError):
            solve_fluid_lp({(0, 1): 1.0}, {(0, 1): [(0,)]})

    def test_empty_demands_give_zero(self, fig4_paths):
        solution = solve_fluid_lp({}, fig4_paths)
        assert solution.throughput == 0.0

    def test_non_positive_delta_rejected(self, fig4_paths):
        with pytest.raises(ConfigError):
            solve_fluid_lp(FIG4_DEMANDS, fig4_paths, delta=0.0)
