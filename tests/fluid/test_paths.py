"""Tests for path enumeration."""

from __future__ import annotations

import pytest

from repro.errors import NoPathError
from repro.fluid.paths import (
    all_simple_paths,
    bfs_distances,
    bfs_shortest_path,
    build_path_set,
    k_edge_disjoint_paths,
    k_shortest_paths,
    path_edges,
)
from repro.topology.generators import cycle_topology, grid_topology, line_topology
from repro.topology.isp import isp_topology


@pytest.fixture
def diamond():
    """0-1-3 and 0-2-3 plus a long detour 0-4-5-3."""
    return {
        0: [1, 2, 4],
        1: [0, 3],
        2: [0, 3],
        3: [1, 2, 5],
        4: [0, 5],
        5: [3, 4],
    }


class TestShortestPath:
    def test_trivial_path(self, diamond):
        assert bfs_shortest_path(diamond, 0, 0) == (0,)

    def test_shortest_hop_count(self, diamond):
        path = bfs_shortest_path(diamond, 0, 3)
        assert len(path) == 3
        assert path[0] == 0 and path[-1] == 3

    def test_deterministic_tie_break(self, diamond):
        # 0-1-3 and 0-2-3 tie; sorted neighbour order picks 1 first.
        assert bfs_shortest_path(diamond, 0, 3) == (0, 1, 3)

    def test_unreachable_returns_none(self):
        adj = {0: [1], 1: [0], 2: []}
        assert bfs_shortest_path(adj, 0, 2) is None

    def test_forbidden_edges_respected(self, diamond):
        path = bfs_shortest_path(diamond, 0, 3, forbidden_edges={(0, 1), (1, 0)})
        assert path == (0, 2, 3)

    def test_distances(self, diamond):
        dist = bfs_distances(diamond, 0)
        assert dist[0] == 0
        assert dist[3] == 2
        assert dist[5] == 2


class TestAllSimplePaths:
    def test_diamond_has_three_paths(self, diamond):
        paths = all_simple_paths(diamond, 0, 3)
        assert (0, 1, 3) in paths
        assert (0, 2, 3) in paths
        assert (0, 4, 5, 3) in paths
        assert len(paths) == 3

    def test_sorted_by_length_then_lex(self, diamond):
        paths = all_simple_paths(diamond, 0, 3)
        assert paths[0] == (0, 1, 3)
        assert paths[-1] == (0, 4, 5, 3)

    def test_cutoff_limits_length(self, diamond):
        paths = all_simple_paths(diamond, 0, 3, cutoff=2)
        assert all(len(p) <= 3 for p in paths)
        assert len(paths) == 2

    def test_line_has_single_path(self):
        adj = line_topology(5).adjacency()
        assert all_simple_paths(adj, 0, 4) == [(0, 1, 2, 3, 4)]

    def test_paths_are_simple(self):
        adj = grid_topology(3, 3).adjacency()
        for path in all_simple_paths(adj, 0, 8):
            assert len(set(path)) == len(path)


class TestKShortest:
    def test_returns_k_loopless_paths(self, diamond):
        paths = k_shortest_paths(diamond, 0, 3, 3)
        assert len(paths) == 3
        assert paths[0] == (0, 1, 3)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_fewer_paths_than_k(self):
        adj = line_topology(4).adjacency()
        paths = k_shortest_paths(adj, 0, 3, 5)
        assert len(paths) == 1

    def test_k_zero(self, diamond):
        assert k_shortest_paths(diamond, 0, 3, 0) == []

    def test_no_duplicates(self):
        adj = grid_topology(3, 3).adjacency()
        paths = k_shortest_paths(adj, 0, 8, 6)
        assert len(paths) == len(set(paths))


class TestEdgeDisjoint:
    def test_paths_are_edge_disjoint(self, diamond):
        paths = k_edge_disjoint_paths(diamond, 0, 3, 4)
        used = set()
        for path in paths:
            for edge in path_edges(path):
                key = frozenset(edge)
                assert key not in used
                used.add(key)

    def test_diamond_yields_three_disjoint_paths(self, diamond):
        paths = k_edge_disjoint_paths(diamond, 0, 3, 4)
        assert len(paths) == 3

    def test_first_path_is_shortest(self, diamond):
        paths = k_edge_disjoint_paths(diamond, 0, 3, 2)
        assert paths[0] == bfs_shortest_path(diamond, 0, 3)

    def test_cycle_has_two_disjoint_paths(self):
        adj = cycle_topology(6).adjacency()
        paths = k_edge_disjoint_paths(adj, 0, 3, 4)
        assert len(paths) == 2

    def test_isp_topology_supports_four_paths(self):
        adj = isp_topology().adjacency()
        paths = k_edge_disjoint_paths(adj, 8, 20, 4)
        assert len(paths) == 4


class TestBuildPathSet:
    def test_methods_agree_on_structure(self, diamond):
        pairs = [(0, 3), (3, 0)]
        for method in ("edge-disjoint", "yen", "all"):
            path_set = build_path_set(diamond, pairs, k=2, method=method)
            assert set(path_set) == set(pairs)
            assert all(paths for paths in path_set.values())

    def test_disconnected_pair_raises(self):
        adj = {0: [1], 1: [0], 2: []}
        with pytest.raises(NoPathError):
            build_path_set(adj, [(0, 2)])

    def test_unknown_method_rejected(self, diamond):
        with pytest.raises(ValueError):
            build_path_set(diamond, [(0, 3)], method="bogus")

    def test_path_edges_helper(self):
        assert path_edges((1, 2, 3)) == [(1, 2), (2, 3)]
        assert path_edges((7,)) == []
