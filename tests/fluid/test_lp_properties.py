"""Property-based tests for the fluid LPs.

Invariant chain checked on random instances over the Fig. 4 topology:

    0 <= balanced <= budget(B) <= unbalanced <= total demand
    balanced <= nu(C*)                        (Proposition 1)
    budget(0) == balanced
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid.circulation import PaymentGraph, max_circulation_lp
from repro.fluid.lp import solve_fluid_lp, throughput_with_budget
from repro.fluid.paths import all_simple_paths
from repro.topology.examples import fig4_topology

_ADJACENCY = fig4_topology().adjacency()
_PAIRS = [(i, j) for i in range(1, 6) for j in range(1, 6) if i != j]
_PATHS = {pair: all_simple_paths(_ADJACENCY, *pair) for pair in _PAIRS}


@st.composite
def demand_matrices(draw):
    chosen = draw(
        st.lists(st.sampled_from(_PAIRS), min_size=1, max_size=8, unique=True)
    )
    return {pair: float(draw(st.integers(min_value=1, max_value=6))) for pair in chosen}


@settings(max_examples=50, deadline=None)
@given(demand_matrices())
def test_throughput_ordering_chain(demands):
    path_set = {pair: _PATHS[pair] for pair in demands}
    total = sum(demands.values())
    balanced = solve_fluid_lp(demands, path_set, balance="equality").throughput
    unbalanced = solve_fluid_lp(demands, path_set, balance="none").throughput
    mid_budget = throughput_with_budget(demands, path_set, None, budget=1.0).throughput
    assert -1e-9 <= balanced <= mid_budget + 1e-6
    assert mid_budget <= unbalanced + 1e-6
    assert unbalanced <= total + 1e-6


@settings(max_examples=50, deadline=None)
@given(demand_matrices())
def test_balanced_never_exceeds_max_circulation(demands):
    """Proposition 1's converse on random demands."""
    path_set = {pair: _PATHS[pair] for pair in demands}
    balanced = solve_fluid_lp(demands, path_set, balance="equality").throughput
    nu = sum(max_circulation_lp(PaymentGraph(demands)).values())
    assert balanced <= nu + 1e-6


@settings(max_examples=50, deadline=None)
@given(demand_matrices())
def test_zero_budget_equals_balanced(demands):
    path_set = {pair: _PATHS[pair] for pair in demands}
    balanced = solve_fluid_lp(demands, path_set, balance="equality").throughput
    budget_zero = throughput_with_budget(demands, path_set, None, budget=0.0).throughput
    assert budget_zero == pytest.approx(balanced, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(demand_matrices(), st.floats(min_value=0.5, max_value=4.0))
def test_budget_curve_monotone(demands, budget):
    path_set = {pair: _PATHS[pair] for pair in demands}
    smaller = throughput_with_budget(demands, path_set, None, budget=budget / 2).throughput
    larger = throughput_with_budget(demands, path_set, None, budget=budget).throughput
    assert larger >= smaller - 1e-6


@settings(max_examples=40, deadline=None)
@given(demand_matrices())
def test_edge_flows_are_balanced_in_equality_mode(demands):
    path_set = {pair: _PATHS[pair] for pair in demands}
    solution = solve_fluid_lp(demands, path_set, balance="equality")
    for (u, v), flow in solution.edge_flows.items():
        assert solution.edge_flows.get((v, u), 0.0) == pytest.approx(flow, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(demand_matrices())
def test_waterfill_allocation_properties(demands):
    """waterfill_allocation: caps respected, total preserved, max-min."""
    from repro.core.amp import waterfill_allocation

    capacities = [float(v) for v in demands.values()]
    amount = sum(capacities) / 2.0
    allocation = waterfill_allocation(amount, capacities)
    assert sum(allocation) == pytest.approx(min(amount, sum(capacities)))
    for share, cap in zip(allocation, capacities):
        assert -1e-9 <= share <= cap + 1e-9
    # Max-min structure: any path left with residual above the minimum
    # residual must be fully unused or all residuals equal-ish.
    residuals = [c - a for c, a in zip(capacities, allocation)]
    used_residuals = [r for a, r in zip(allocation, residuals) if a > 1e-9]
    if used_residuals:
        level = used_residuals[0]
        for capacity, share, residual in zip(capacities, allocation, residuals):
            if share > 1e-9:
                # Every touched path drains to the common water level.
                assert residual == pytest.approx(level, abs=1e-6)
            else:
                # Untouched paths were already at/below the water level.
                assert residual == pytest.approx(capacity)
                assert capacity <= level + 1e-6
