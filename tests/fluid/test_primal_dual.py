"""Tests for the §5.3 primal-dual algorithm (fluid iterates)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fluid.lp import solve_fluid_lp
from repro.fluid.paths import all_simple_paths
from repro.fluid.primal_dual import (
    PrimalDualConfig,
    project_capped_simplex,
    solve_primal_dual,
)
from repro.topology.examples import FIG4_DEMANDS, fig4_topology


@pytest.fixture(scope="module")
def fig4_paths():
    adjacency = fig4_topology().adjacency()
    return {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}


class TestProjection:
    def test_inside_set_is_unchanged(self):
        x = np.array([1.0, 2.0])
        assert np.allclose(project_capped_simplex(x, 5.0), x)

    def test_negative_components_are_clipped(self):
        assert np.allclose(project_capped_simplex(np.array([-1.0, 2.0]), 5.0), [0.0, 2.0])

    def test_sum_cap_enforced(self):
        projected = project_capped_simplex(np.array([3.0, 3.0]), 4.0)
        assert projected.sum() == pytest.approx(4.0)
        assert np.allclose(projected, [2.0, 2.0])

    def test_projection_is_euclidean(self):
        # Projecting (5, 1) onto sum <= 4 must give (4, 0): the threshold
        # theta = 1 subtracts uniformly and clips.
        projected = project_capped_simplex(np.array([5.0, 1.0]), 4.0)
        assert projected.sum() == pytest.approx(4.0)
        assert projected[0] > projected[1]

    def test_cap_zero_gives_zero(self):
        assert np.allclose(project_capped_simplex(np.array([3.0, 1.0]), 0.0), [0.0, 0.0])

    def test_negative_cap_rejected(self):
        with pytest.raises(ConfigError):
            project_capped_simplex(np.array([1.0]), -1.0)


class TestConvergence:
    def test_converges_to_balanced_optimum_on_fig4(self, fig4_paths):
        """Without rebalancing (gamma = inf) the iterates must reach the
        balanced LP optimum nu(C*) = 8 on the paper's example."""
        config = PrimalDualConfig(
            alpha=0.02, eta=0.05, kappa=0.05, gamma=math.inf, iterations=25_000
        )
        result = solve_primal_dual(FIG4_DEMANDS, fig4_paths, config=config)
        assert result.throughput == pytest.approx(8.0, abs=0.1)

    def test_matches_rebalancing_lp_at_small_gamma(self, fig4_paths):
        config = PrimalDualConfig(
            alpha=0.02, eta=0.05, kappa=0.05, beta=0.05, gamma=0.1, iterations=25_000
        )
        result = solve_primal_dual(FIG4_DEMANDS, fig4_paths, config=config)
        lp = solve_fluid_lp(FIG4_DEMANDS, fig4_paths, balance="rebalance", gamma=0.1)
        assert result.throughput == pytest.approx(lp.throughput, abs=0.2)
        assert result.total_rebalancing == pytest.approx(lp.total_rebalancing, abs=0.3)

    def test_flows_respect_demand_caps(self, fig4_paths):
        config = PrimalDualConfig(iterations=5_000, gamma=math.inf)
        result = solve_primal_dual(FIG4_DEMANDS, fig4_paths, config=config)
        per_pair = {}
        for (pair, _), flow in result.path_flows.items():
            per_pair[pair] = per_pair.get(pair, 0.0) + flow
        for pair, flow in per_pair.items():
            assert flow <= FIG4_DEMANDS[pair] + 1e-6

    def test_history_is_recorded(self, fig4_paths):
        config = PrimalDualConfig(iterations=500, gamma=math.inf)
        result = solve_primal_dual(FIG4_DEMANDS, fig4_paths, config=config)
        assert len(result.history) <= 500
        assert len(result.history) > 0

    def test_single_pair_single_path_saturates_demand(self):
        demands = {(0, 1): 3.0}
        paths = {(0, 1): [(0, 1)]}
        config = PrimalDualConfig(alpha=0.05, iterations=5_000, gamma=math.inf)
        result = solve_primal_dual(demands, paths, config=config)
        # A lone directional demand cannot be balanced: flow converges to 0.
        assert result.throughput == pytest.approx(0.0, abs=0.1)

    def test_two_way_demand_is_fully_served(self):
        demands = {(0, 1): 2.0, (1, 0): 2.0}
        paths = {(0, 1): [(0, 1)], (1, 0): [(1, 0)]}
        config = PrimalDualConfig(alpha=0.05, iterations=10_000, gamma=math.inf)
        result = solve_primal_dual(demands, paths, config=config)
        assert result.throughput == pytest.approx(4.0, abs=0.1)

    def test_capacity_constraint_respected(self):
        demands = {(0, 1): 10.0, (1, 0): 10.0}
        paths = {(0, 1): [(0, 1)], (1, 0): [(1, 0)]}
        config = PrimalDualConfig(alpha=0.05, eta=0.05, iterations=15_000, gamma=math.inf)
        result = solve_primal_dual(
            demands, paths, capacities={(0, 1): 8.0}, delta=1.0, config=config
        )
        # Total two-way flow is capped at c/delta = 8.
        assert result.throughput <= 8.0 + 0.3

    def test_empty_demands(self):
        result = solve_primal_dual({}, {})
        assert result.throughput == 0.0

    def test_missing_paths_rejected(self):
        with pytest.raises(ConfigError):
            solve_primal_dual({(0, 1): 1.0}, {})


class TestConfigValidation:
    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigError):
            PrimalDualConfig(alpha=-0.1)

    def test_non_positive_iterations_rejected(self):
        with pytest.raises(ConfigError):
            PrimalDualConfig(iterations=0)

    def test_bad_averaging_fraction_rejected(self):
        with pytest.raises(ConfigError):
            PrimalDualConfig(averaging_fraction=0.0)
