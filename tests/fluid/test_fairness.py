"""Tests for the proportional-fairness LP (§5.3 closing remark)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fluid.fairness import jain_index, solve_fairness_lp
from repro.fluid.lp import solve_fluid_lp
from repro.fluid.paths import all_simple_paths
from repro.topology.examples import FIG4_DEMANDS, fig4_topology
from repro.topology.generators import line_topology


@pytest.fixture
def contended_line():
    """Line 0-1-2-3 where the middle channel is the shared bottleneck."""
    adjacency = line_topology(4).adjacency()
    demands = {(0, 3): 10.0, (3, 0): 10.0, (1, 2): 10.0, (2, 1): 10.0}
    path_set = {pair: all_simple_paths(adjacency, *pair) for pair in demands}
    capacities = {(1, 2): 10.0}
    return demands, path_set, capacities


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_or_zero(self):
        assert jain_index([]) == 0.0
        assert jain_index([0.0, 0.0]) == 0.0


class TestFairnessLP:
    def test_no_pair_is_starved(self, contended_line):
        demands, path_set, capacities = contended_line
        solution = solve_fairness_lp(demands, path_set, capacities, delta=1.0)
        for pair in demands:
            assert solution.pair_flows[pair] > 0.01

    def test_max_throughput_starves_but_fairness_does_not(self, contended_line):
        demands, path_set, capacities = contended_line
        greedy = solve_fluid_lp(
            demands, path_set, capacities=capacities, delta=1.0, balance="equality"
        )
        fair = solve_fairness_lp(demands, path_set, capacities, delta=1.0)
        greedy_flows = [greedy.pair_flows.get(p, 0.0) for p in demands]
        fair_flows = [fair.pair_flows[p] for p in demands]
        assert min(greedy_flows) == pytest.approx(0.0, abs=1e-6)
        assert min(fair_flows) > 0.0
        assert jain_index(fair_flows) > jain_index(greedy_flows) + 0.2

    def test_fairness_costs_bounded_throughput(self, contended_line):
        demands, path_set, capacities = contended_line
        greedy = solve_fluid_lp(
            demands, path_set, capacities=capacities, delta=1.0, balance="equality"
        )
        fair = solve_fairness_lp(demands, path_set, capacities, delta=1.0)
        assert fair.throughput <= greedy.throughput + 1e-6
        # Proportional fairness never collapses throughput to zero.
        assert fair.throughput > 0.5 * greedy.throughput

    def test_balance_constraint_respected(self, contended_line):
        demands, path_set, capacities = contended_line
        solution = solve_fairness_lp(demands, path_set, capacities, delta=1.0)
        edge_flows = {}
        from repro.fluid.paths import path_edges

        for (pair, path), flow in solution.path_flows.items():
            for edge in path_edges(path):
                edge_flows[edge] = edge_flows.get(edge, 0.0) + flow
        for (u, v), flow in edge_flows.items():
            assert edge_flows.get((v, u), 0.0) == pytest.approx(flow, abs=1e-5)

    def test_weights_shift_allocation(self, contended_line):
        demands, path_set, capacities = contended_line
        favoured = solve_fairness_lp(
            demands,
            path_set,
            capacities,
            delta=1.0,
            weights={(0, 3): 5.0, (3, 0): 5.0},
        )
        neutral = solve_fairness_lp(demands, path_set, capacities, delta=1.0)
        assert favoured.pair_flows[(0, 3)] > neutral.pair_flows[(0, 3)]

    def test_unconstrained_fairness_saturates_demand(self):
        adjacency = line_topology(3).adjacency()
        demands = {(0, 2): 4.0, (2, 0): 4.0}
        path_set = {pair: all_simple_paths(adjacency, *pair) for pair in demands}
        solution = solve_fairness_lp(demands, path_set, None, delta=1.0)
        assert solution.throughput == pytest.approx(8.0, rel=0.02)

    def test_fig4_fairness_respects_prop1_bound(self):
        adjacency = fig4_topology().adjacency()
        path_set = {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}
        solution = solve_fairness_lp(FIG4_DEMANDS, path_set, None, delta=1.0)
        # Prop. 1: no balanced routing (fair or not) exceeds nu(C*) = 8.
        assert solution.throughput <= 8.0 + 1e-6

    def test_more_tangents_tighten_the_approximation(self, contended_line):
        demands, path_set, capacities = contended_line
        coarse = solve_fairness_lp(
            demands, path_set, capacities, delta=1.0, num_tangents=3
        )
        fine = solve_fairness_lp(
            demands, path_set, capacities, delta=1.0, num_tangents=25
        )
        # The true proportionally-fair utility is approached from below.
        assert fine.utility >= coarse.utility - 1e-6

    def test_empty_demands(self):
        solution = solve_fairness_lp({}, {})
        assert solution.throughput == 0.0

    def test_validation(self, contended_line):
        demands, path_set, capacities = contended_line
        with pytest.raises(ConfigError):
            solve_fairness_lp(demands, path_set, capacities, delta=0.0)
        with pytest.raises(ConfigError):
            solve_fairness_lp(demands, path_set, capacities, num_tangents=1)
        with pytest.raises(ConfigError):
            solve_fairness_lp(demands, path_set, capacities, min_rate_fraction=2.0)
        with pytest.raises(ConfigError):
            solve_fairness_lp({(0, 1): 1.0}, {})
