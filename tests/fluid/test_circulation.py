"""Tests for payment graphs, circulations, and Proposition 1."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.fluid.circulation import (
    PaymentGraph,
    bfs_spanning_tree,
    decompose_payment_graph,
    is_circulation,
    is_dag,
    max_circulation_cycle_cancelling,
    max_circulation_lp,
    peel_cycles,
    route_circulation_on_tree,
)
from repro.topology.examples import FIG4_DEMANDS, fig4_topology


class TestPaymentGraph:
    def test_accumulating_demands(self):
        graph = PaymentGraph()
        graph.add_demand(0, 1, 2.0)
        graph.add_demand(0, 1, 3.0)
        assert graph.rate(0, 1) == 5.0
        assert graph.total_demand() == 5.0

    def test_self_demand_rejected(self):
        with pytest.raises(ReproError):
            PaymentGraph({(0, 0): 1.0})

    def test_non_positive_demand_rejected(self):
        with pytest.raises(ReproError):
            PaymentGraph({(0, 1): 0.0})

    def test_in_out_rates(self):
        graph = PaymentGraph({(0, 1): 2.0, (1, 2): 3.0, (2, 0): 1.0})
        assert graph.out_rate(1) == 3.0
        assert graph.in_rate(1) == 2.0

    def test_nodes_and_edges_are_sorted(self):
        graph = PaymentGraph({(3, 1): 1.0, (1, 2): 1.0})
        assert graph.nodes() == [1, 2, 3]
        assert graph.edges() == [(1, 2), (3, 1)]


class TestPredicates:
    def test_is_circulation(self):
        assert is_circulation({(0, 1): 2.0, (1, 2): 2.0, (2, 0): 2.0})
        assert not is_circulation({(0, 1): 2.0, (1, 2): 1.0, (2, 0): 2.0})
        assert is_circulation({})

    def test_is_dag(self):
        assert is_dag([(0, 1), (1, 2), (0, 2)])
        assert not is_dag([(0, 1), (1, 2), (2, 0)])
        assert is_dag([])


class TestMaxCirculation:
    def test_single_cycle_fully_extracted(self):
        graph = PaymentGraph({(0, 1): 2.0, (1, 2): 2.0, (2, 0): 2.0})
        for fn in (max_circulation_lp, max_circulation_cycle_cancelling):
            circulation = fn(graph)
            assert sum(circulation.values()) == pytest.approx(6.0)

    def test_pure_dag_has_zero_circulation(self):
        graph = PaymentGraph({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0})
        assert max_circulation_lp(graph) == {}
        assert max_circulation_cycle_cancelling(graph) == {}

    def test_two_node_cycle(self):
        graph = PaymentGraph({(0, 1): 3.0, (1, 0): 1.0})
        circulation = max_circulation_lp(graph)
        assert sum(circulation.values()) == pytest.approx(2.0)

    def test_greedy_trap_instance(self):
        """A short cycle sharing an edge with a long one: the naive greedy
        peel can pick the short cycle (value 2) and lose the long one
        (value 5).  The exact algorithms must find 5."""
        demands = {
            ("a", "b"): 1.0,  # shared edge
            ("b", "a"): 1.0,  # short cycle back
            ("b", "c"): 1.0,  # long cycle: a-b-c-d-e-a
            ("c", "d"): 1.0,
            ("d", "e"): 1.0,
            ("e", "a"): 1.0,
        }
        graph = PaymentGraph(demands)
        lp_value = sum(max_circulation_lp(graph).values())
        cc_value = sum(max_circulation_cycle_cancelling(graph).values())
        assert lp_value == pytest.approx(5.0)
        assert cc_value == pytest.approx(5.0)

    def test_fig5_decomposition(self):
        graph = PaymentGraph(FIG4_DEMANDS)
        for method in ("lp", "cycle-cancelling"):
            decomposition = decompose_payment_graph(graph, method=method)
            assert decomposition.value == pytest.approx(8.0)
            assert decomposition.dag_value == pytest.approx(4.0)
            assert decomposition.total_demand == pytest.approx(12.0)
            assert decomposition.circulation_fraction == pytest.approx(8.0 / 12.0)

    def test_decomposition_parts_sum_to_demands(self):
        graph = PaymentGraph(FIG4_DEMANDS)
        decomposition = decompose_payment_graph(graph)
        for edge, rate in FIG4_DEMANDS.items():
            reconstructed = decomposition.circulation.get(edge, 0.0) + decomposition.dag.get(
                edge, 0.0
            )
            assert reconstructed == pytest.approx(rate)

    def test_circulation_is_balanced_and_remainder_acyclic(self):
        graph = PaymentGraph(FIG4_DEMANDS)
        decomposition = decompose_payment_graph(graph)
        assert is_circulation(decomposition.circulation)
        assert is_dag(decomposition.dag)

    def test_empty_graph(self):
        decomposition = decompose_payment_graph(PaymentGraph())
        assert decomposition.value == 0.0
        assert decomposition.circulation_fraction == 0.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            decompose_payment_graph(PaymentGraph({(0, 1): 1.0}), method="bogus")


class TestPeelCycles:
    def test_cycles_reconstruct_circulation(self):
        graph = PaymentGraph(FIG4_DEMANDS)
        circulation = max_circulation_lp(graph)
        cycles = peel_cycles(circulation)
        rebuilt = {}
        for cycle, value in cycles:
            for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
                rebuilt[(a, b)] = rebuilt.get((a, b), 0.0) + value
        for edge, value in circulation.items():
            assert rebuilt.get(edge, 0.0) == pytest.approx(value)

    def test_non_circulation_input_raises(self):
        with pytest.raises(ReproError):
            peel_cycles({(0, 1): 1.0})


class TestProposition1:
    def test_spanning_tree_routing_is_perfectly_balanced(self):
        """The constructive half of Prop. 1 on the paper's example."""
        graph = PaymentGraph(FIG4_DEMANDS)
        circulation = max_circulation_lp(graph)
        adjacency = fig4_topology().adjacency()
        edge_flows = route_circulation_on_tree(circulation, adjacency)
        # Perfect balance: flow(u,v) == flow(v,u) on every used channel.
        for (u, v), flow in edge_flows.items():
            assert edge_flows.get((v, u), 0.0) == pytest.approx(flow)
        # Full circulation value is delivered.
        delivered = sum(
            min(flow, edge_flows.get((v, u), 0.0))
            for (u, v), flow in edge_flows.items()
        )
        assert delivered >= 0  # sanity; value check below via demand sums
        routed_value = sum(circulation.values())
        assert routed_value == pytest.approx(8.0)

    def test_tree_routing_balanced_on_random_circulation(self):
        from repro.workload.demand import circulation_demand

        demands = circulation_demand(range(10), 50.0, num_cycles=6, seed=7)
        adjacency = {i: [j for j in range(10) if j != i] for i in range(10)}
        edge_flows = route_circulation_on_tree(demands, adjacency)
        for (u, v), flow in edge_flows.items():
            assert edge_flows.get((v, u), 0.0) == pytest.approx(flow)

    def test_spanning_tree_construction(self):
        adjacency = fig4_topology().adjacency()
        parent = bfs_spanning_tree(adjacency)
        assert len(parent) == 5
        roots = [n for n, p in parent.items() if n == p]
        assert len(roots) == 1

    def test_disconnected_graph_raises(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            bfs_spanning_tree({0: [], 1: []})
