"""Tests for the slab event queue and the integer-tick engine."""

from __future__ import annotations

import pytest

from repro.engine.clock import TickClock
from repro.engine.events import SlabEventQueue, TickEngine
from repro.errors import ConfigError
from repro.simulator.engine import RecurringTimer, SimulationError


class TestTickClock:
    def test_round_trip(self):
        clock = TickClock(1e-6)
        assert clock.to_ticks(0.5) == 500_000
        assert clock.to_seconds(500_000) == pytest.approx(0.5)

    def test_invalid_quantum(self):
        with pytest.raises(ConfigError):
            TickClock(0.0)
        with pytest.raises(ConfigError):
            TickClock(float("nan"))

    def test_non_finite_time(self):
        with pytest.raises(ConfigError):
            TickClock().to_ticks(float("inf"))


class TestSlabEventQueue:
    def test_fires_in_tick_order(self):
        queue = SlabEventQueue()
        fired = []
        queue.schedule(30, fired.append, (3,))
        queue.schedule(10, fired.append, (1,))
        queue.schedule(20, fired.append, (2,))
        while (popped := queue.pop()) is not None:
            _, callback, args = popped
            callback(*args)
        assert fired == [1, 2, 3]

    def test_fifo_among_equal_ticks(self):
        queue = SlabEventQueue()
        order = []
        for label in "abc":
            queue.schedule(5, order.append, (label,))
        while (popped := queue.pop()) is not None:
            popped[1](*popped[2])
        assert order == ["a", "b", "c"]

    def test_priority_beats_fifo_at_equal_tick(self):
        queue = SlabEventQueue()
        order = []
        queue.schedule(5, order.append, ("late",), priority=1)
        queue.schedule(5, order.append, ("early",), priority=0)
        while (popped := queue.pop()) is not None:
            popped[1](*popped[2])
        assert order == ["early", "late"]

    def test_cancel_is_idempotent_and_skipped(self):
        queue = SlabEventQueue()
        fired = []
        entry = queue.schedule(1, fired.append, ("x",))
        assert queue.cancel(entry) is True
        assert queue.cancel(entry) is False
        assert len(queue) == 0
        assert queue.pop() is None
        assert fired == []

    def test_compaction_drops_corpses(self):
        queue = SlabEventQueue()
        entries = [queue.schedule(t, lambda: None) for t in range(200)]
        for entry in entries[:150]:
            queue.cancel(entry)
        # Corpses outnumbering live events triggered at least one compaction,
        # so the heap cannot still hold all 150 cancelled entries.
        assert len(queue) == 50
        assert len(queue.heap) < 200
        queue.compact()
        assert len(queue.heap) == 50

    def test_peek_tick_skips_cancelled(self):
        queue = SlabEventQueue()
        first = queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        queue.cancel(first)
        assert queue.peek_tick() == 2


class TestTickEngine:
    def test_chained_events_and_now(self):
        eng = TickEngine()
        times = []
        def tick():
            times.append(eng.now)
            if len(times) < 3:
                eng.schedule_after(0.5, tick)
        eng.schedule_after(0.5, tick)
        eng.run()
        assert times == pytest.approx([0.5, 1.0, 1.5])

    def test_run_until_advances_clock_exactly(self):
        eng = TickEngine()
        fired = []
        eng.schedule_after(2.0, fired.append, "late")
        assert eng.run(until=1.0) == pytest.approx(1.0)
        assert fired == []
        eng.run()
        assert fired == ["late"]

    def test_max_events(self):
        eng = TickEngine()
        fired = []
        for i in range(5):
            eng.schedule_after(0.1 * (i + 1), fired.append, i)
        eng.run(max_events=2)
        assert fired == [0, 1]
        eng.run(max_events=0)
        assert fired == [0, 1]
        eng.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_cannot_schedule_in_past(self):
        eng = TickEngine()
        eng.schedule_after(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_at_tick(0, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_after(-0.1, lambda: None)

    def test_stop_from_callback(self):
        eng = TickEngine()
        fired = []

        def first():
            fired.append(1)
            eng.stop()

        eng.schedule_after(0.1, first)
        eng.schedule_after(0.2, fired.append, 2)
        eng.run()
        assert fired == [1]
        assert eng.pending_events == 1

    def test_step_and_peek(self):
        eng = TickEngine()
        fired = []
        eng.schedule_after(0.25, fired.append, "a")
        eng.schedule_after(0.75, fired.append, "b")
        assert eng.peek() == pytest.approx(0.25)
        assert eng.step() is True
        assert fired == ["a"]
        assert eng.now == pytest.approx(0.25)
        assert eng.step() is True and eng.step() is False

    def test_handle_cancel_and_pending(self):
        eng = TickEngine()
        fired = []
        handle = eng.call_after(0.5, fired.append, "x")
        assert handle.pending
        handle.cancel()
        assert not handle.pending
        eng.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        eng = TickEngine()
        handle = eng.call_after(0.1, lambda: None)
        eng.run()
        before = eng.pending_events
        handle.cancel()  # must not corrupt the live counter
        assert eng.pending_events == before == 0

    def test_events_processed_counts(self):
        eng = TickEngine()
        for i in range(4):
            eng.schedule_after(0.1 * (i + 1), lambda: None)
        eng.run()
        assert eng.events_processed == 4

    def test_recurring_timer_compat(self):
        """The legacy RecurringTimer helper runs unchanged on TickEngine."""
        eng = TickEngine()
        ticks = []
        timer = RecurringTimer(eng, 0.5, lambda: ticks.append(eng.now))
        eng.run(until=2.2)
        timer.stop()
        assert ticks == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_tick_timer_stop_inside_callback(self):
        eng = TickEngine()
        seen = []
        timer = eng.every(0.5, lambda: (seen.append(eng.now), timer.stop()))
        eng.run(until=5.0)
        assert len(seen) == 1
        assert not timer.active

    def test_mid_run_compaction_keeps_new_events(self):
        """A callback that triggers compaction must not strand later events.

        Regression: run() holds a direct reference to the heap list, and a
        callback cancelling >half of a large heap compacts it mid-run —
        compaction must mutate the list in place, or events scheduled after
        it land in a heap the drain loop never reads.
        """
        eng = TickEngine()
        fired = []
        handles = [eng.call_after(10.0 + i, lambda: None) for i in range(100)]

        def cancel_then_schedule():
            for handle in handles:
                handle.cancel()  # trips compaction inside the queue
            eng.schedule_after(0.5, fired.append, "late")

        eng.schedule_after(0.1, cancel_then_schedule)
        eng.run()
        assert fired == ["late"]
        assert eng.pending_events == 0
        assert eng.queue._cancelled == 0

    def test_determinism_same_schedule_same_order(self):
        def trace():
            eng = TickEngine()
            order = []
            for i in range(50):
                eng.schedule_after(0.001 * ((i * 7) % 10), order.append, i)
            eng.run()
            return order

        assert trace() == trace()
