"""Determinism regression tests (same seed + config ⇒ byte-identical JSON).

The paper's methodology depends on bit-for-bit reproducible runs: scheme
comparisons only mean something when every scheme sees the identical trace
and every rerun gives the identical answer.  These tests pin that property
through *both* execution paths — the deprecated ``Runtime`` shim and the
new ``SimulationSession`` — by serialising the full metrics object to
canonical JSON and comparing bytes.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.report import metrics_to_json


def _config(**overrides):
    base = dict(
        scheme="spider-waterfilling",
        topology="line-5",
        capacity=200.0,
        num_transactions=250,
        arrival_rate=50.0,
        seed=17,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.mark.parametrize("engine", ["legacy", "session"])
def test_same_seed_byte_identical_json(engine):
    """Two full runs through one engine serialise to identical bytes."""
    first = metrics_to_json(run_experiment(_config(), engine=engine))
    second = metrics_to_json(run_experiment(_config(), engine=engine))
    assert first.encode() == second.encode()


@pytest.mark.parametrize("engine", ["legacy", "session"])
def test_different_seed_changes_output(engine):
    """The byte comparison is not vacuous: a new seed changes the JSON."""
    first = metrics_to_json(run_experiment(_config(), engine=engine))
    other = metrics_to_json(run_experiment(_config(seed=18), engine=engine))
    assert first != other


@pytest.mark.parametrize(
    "scheme", ["spider-waterfilling", "shortest-path", "speedymurmurs"]
)
def test_engines_agree_on_payment_outcomes(scheme):
    """Legacy and session engines route every payment identically.

    Only completion latencies may differ (the session clock quantises to
    1 µs ticks); counts and delivered value must match exactly.
    """
    config = _config(scheme=scheme)
    legacy = run_experiment(config, engine="legacy")
    session = run_experiment(config, engine="session")
    assert legacy.attempted == session.attempted
    assert legacy.completed == session.completed
    assert legacy.failed == session.failed
    assert legacy.units_settled == session.units_settled
    assert legacy.delivered_value == pytest.approx(session.delivered_value)


def test_session_determinism_through_queueing_fallback():
    """The facade's legacy fallback path is reproducible too."""
    config = _config(scheme="spider-queueing", num_transactions=120)
    first = metrics_to_json(run_experiment(config, engine="session"))
    second = metrics_to_json(run_experiment(config, engine="session"))
    assert first.encode() == second.encode()
