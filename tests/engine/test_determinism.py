"""Determinism regression tests (same seed + config ⇒ byte-identical JSON).

The paper's methodology depends on bit-for-bit reproducible runs: scheme
comparisons only mean something when every scheme sees the identical trace
and every rerun gives the identical answer.  These tests pin that property
through *both* execution paths — the deprecated ``Runtime`` shim and the
new ``SimulationSession`` — by serialising the full metrics object to
canonical JSON and comparing bytes.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.report import metrics_to_json


def _config(**overrides):
    base = dict(
        scheme="spider-waterfilling",
        topology="line-5",
        capacity=200.0,
        num_transactions=250,
        arrival_rate=50.0,
        seed=17,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.mark.parametrize("engine", ["legacy", "session"])
def test_same_seed_byte_identical_json(engine):
    """Two full runs through one engine serialise to identical bytes."""
    first = metrics_to_json(run_experiment(_config(), engine=engine))
    second = metrics_to_json(run_experiment(_config(), engine=engine))
    assert first.encode() == second.encode()


@pytest.mark.parametrize("engine", ["legacy", "session"])
def test_different_seed_changes_output(engine):
    """The byte comparison is not vacuous: a new seed changes the JSON."""
    first = metrics_to_json(run_experiment(_config(), engine=engine))
    other = metrics_to_json(run_experiment(_config(seed=18), engine=engine))
    assert first != other


@pytest.mark.parametrize(
    "scheme", ["spider-waterfilling", "shortest-path", "speedymurmurs"]
)
def test_engines_agree_on_payment_outcomes(scheme):
    """Legacy and session engines route every payment identically.

    Only completion latencies may differ (the session clock quantises to
    1 µs ticks); counts and delivered value must match exactly.
    """
    config = _config(scheme=scheme)
    legacy = run_experiment(config, engine="legacy")
    session = run_experiment(config, engine="session")
    assert legacy.attempted == session.attempted
    assert legacy.completed == session.completed
    assert legacy.failed == session.failed
    assert legacy.units_settled == session.units_settled
    assert legacy.delivered_value == pytest.approx(session.delivered_value)


@pytest.mark.parametrize("scheme", ["spider-queueing", "spider-window", "celer"])
def test_native_transport_determinism(scheme):
    """The native hop-by-hop/backpressure transports are reproducible."""
    config = _config(scheme=scheme, num_transactions=120)
    first = metrics_to_json(run_experiment(config, engine="session"))
    second = metrics_to_json(run_experiment(config, engine="session"))
    assert first.encode() == second.encode()


@pytest.mark.parametrize("scheme", ["spider-queueing", "spider-window"])
def test_hop_transport_parity_through_runtime_shim(scheme):
    """``engine="legacy"`` (the QueueingRuntime shim) matches the session.

    The legacy hop-by-hop runtime body was retired after a release cycle
    of implementation-level parity data; ``engine="legacy"`` now
    constructs the thin shim, which must plumb config, collector and
    transport parameters into the native transport so both entry points
    produce identical headline metrics.
    """
    config = _config(scheme=scheme, num_transactions=200)
    legacy = run_experiment(config, engine="legacy")
    native = run_experiment(config, engine="session")
    assert native.attempted == legacy.attempted
    assert native.completed == legacy.completed
    assert native.failed == legacy.failed
    assert native.units_settled == legacy.units_settled
    assert native.units_cancelled == legacy.units_cancelled
    assert native.success_ratio == legacy.success_ratio
    assert native.delivered_value == pytest.approx(legacy.delivered_value)
    assert native.max_queue_depth == legacy.max_queue_depth
    assert native.mean_queue_depth == pytest.approx(legacy.mean_queue_depth)


@pytest.mark.parametrize(
    "scheme",
    [
        "spider-waterfilling",
        "spider-amp",
        "lnd",
        "silentwhispers",
        "spider-queueing",
        "celer",
    ],
)
def test_vectorised_and_scalar_path_ops_byte_identical(scheme):
    """The PathTable kernels reproduce the scalar path ops bit for bit.

    The same seeded experiment runs once with the vectorised
    ``PathTable`` operations (the default) and once with
    ``PaymentNetwork.vectorized_path_ops = False`` (the per-hop scalar
    loops + HTLC objects); the serialised metrics must match byte for
    byte.
    """
    from repro.network.network import PaymentNetwork

    config = _config(scheme=scheme, num_transactions=150)
    vectorised = metrics_to_json(run_experiment(config, engine="session"))
    assert PaymentNetwork.vectorized_path_ops
    PaymentNetwork.vectorized_path_ops = False
    try:
        scalar = metrics_to_json(run_experiment(config, engine="session"))
    finally:
        PaymentNetwork.vectorized_path_ops = True
    assert vectorised.encode() == scalar.encode()


@pytest.mark.parametrize(
    "scheme",
    [
        "spider-window",
        "spider-window-imbalance",
        "celer",
        "spider-primal-dual",
        "spider-queueing-qgrad",
    ],
)
def test_vectorised_and_scalar_signals_byte_identical(scheme):
    """The ControlPlane kernels reproduce the scalar signals bit for bit.

    The same seeded experiment runs once with the vectorised congestion
    signalling (the default) and once with
    ``ControlPlane.vectorized_signals = False`` (per-unit mark branches,
    per-channel price objects, per-element gradient loops); the serialised
    metrics — including the new ``mean_mark_rate``/``mean_price`` columns —
    must match byte for byte across the windowed, backpressure and
    primal-dual schemes.
    """
    from repro.engine.signals import ControlPlane

    config = _config(scheme=scheme, num_transactions=150)
    vectorised = metrics_to_json(run_experiment(config, engine="session"))
    assert ControlPlane.vectorized_signals
    ControlPlane.vectorized_signals = False
    try:
        scalar = metrics_to_json(run_experiment(config, engine="session"))
    finally:
        ControlPlane.vectorized_signals = True
    assert vectorised.encode() == scalar.encode()


def test_queue_gradient_scheme_reduces_to_queueing_at_zero_bias():
    """``queue_bias = 0`` makes the qgrad variant exactly spider-queueing.

    Pinned byte-for-byte (modulo the scheme-name field): the gradient term
    is the only behavioural delta, so zeroing it must reproduce the parent
    scheme's run. This doubles as the incremental-heap determinism pin —
    both runs poll through the PendingHeap drain order.
    """
    base = run_experiment(_config(scheme="spider-queueing", num_transactions=150))
    qgrad = run_experiment(
        _config(
            scheme="spider-queueing-qgrad",
            num_transactions=150,
            scheme_params={"queue_bias": 0.0},
        )
    )
    base_dict = base.to_dict()
    qgrad_dict = qgrad.to_dict()
    assert base_dict.pop("scheme") == "spider-queueing"
    assert qgrad_dict.pop("scheme") == "spider-queueing-qgrad"
    assert base_dict == qgrad_dict


def test_backpressure_transport_parity_through_runtime_shim():
    """``engine="legacy"`` (the BackpressureRuntime shim) matches the session.

    With the float-drift-prone legacy runtime retired, both entry points
    run the tick-exact native transport, so the comparison is now exact
    (it was tolerance-bounded while the RecurringTimer-based
    implementation existed).
    """
    config = _config(scheme="celer", num_transactions=200)
    legacy = run_experiment(config, engine="legacy")
    native = run_experiment(config, engine="session")
    assert native.attempted == legacy.attempted
    assert native.completed == legacy.completed
    assert native.success_ratio == legacy.success_ratio
    assert native.success_volume == legacy.success_volume
