"""PathTable correctness: vectorised path ops pinned against the scalar ones.

The vectorised kernels (`repro.engine.pathtable`) must be *float-for-float*
identical to the per-hop scalar implementations they replaced — same
results, same side effects, same exceptions — on arbitrary topologies with
fee-bearing channels, frozen channels and mid-path rollback.  Hypothesis
drives random networks and operation mixes against a vectorised and a
scalar twin of the same network and compares the raw store arrays exactly
(no tolerance).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.pathtable import PathLock
from repro.errors import ChannelError, InsufficientFundsError
from repro.network.network import PaymentNetwork


def build_twins(spec):
    """Build two identical networks: one vectorised, one scalar.

    ``spec`` is ``(edges, frozen_flags)`` where each edge is
    ``(u, v, capacity, balance_u, base_fee, fee_rate)``.
    """
    twins = []
    for use_table in (True, False):
        network = PaymentNetwork()
        network.use_path_table = use_table
        for u, v, capacity, balance_u, base_fee, fee_rate in spec[0]:
            network.add_channel(
                u, v, capacity, balance_u=balance_u,
                base_fee=base_fee, fee_rate=fee_rate,
            )
        for index, frozen in enumerate(spec[1]):
            if frozen:
                list(network.channels())[index].freeze()
        twins.append(network)
    return twins


def assert_stores_identical(vec: PaymentNetwork, ref: PaymentNetwork):
    """Byte-exact comparison of every mutable store array."""
    a, b = vec.state_store, ref.state_store
    for field in ("balance", "inflight", "sent", "settled_flow",
                  "num_settled", "num_refunded", "frozen"):
        va = getattr(a, field)[: len(a)]
        vb = getattr(b, field)[: len(b)]
        assert np.array_equal(va, vb), f"{field} diverged:\n{va}\nvs\n{vb}"


@st.composite
def network_specs(draw):
    """A small random connected network with fees, plus candidate trails."""
    n = draw(st.integers(min_value=3, max_value=7))
    edge_set = {(i, i + 1) for i in range(n - 1)}  # spanning chain
    extras = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=5,
        )
    )
    for u, v in extras:
        if u != v:
            edge_set.add((min(u, v), max(u, v)))
    edges = []
    for u, v in sorted(edge_set):
        capacity = draw(st.floats(min_value=10.0, max_value=200.0))
        balance_u = draw(st.floats(min_value=0.0, max_value=1.0)) * capacity
        fee_bearing = draw(st.booleans())
        base_fee = draw(st.floats(min_value=0.0, max_value=2.0)) if fee_bearing else 0.0
        fee_rate = draw(st.floats(min_value=0.0, max_value=0.1)) if fee_bearing else 0.0
        edges.append((u, v, capacity, balance_u, base_fee, fee_rate))
    frozen = [draw(st.booleans()) and draw(st.booleans()) for _ in edges]
    adjacency = {i: set() for i in range(n)}
    for u, v, *_ in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    # Candidate trails: random walks without node revisits.
    paths = []
    for _ in range(draw(st.integers(min_value=2, max_value=6))):
        node = draw(st.integers(min_value=0, max_value=n - 1))
        path = [node]
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            options = sorted(adjacency[path[-1]] - set(path))
            if not options:
                break
            path.append(options[draw(st.integers(min_value=0, max_value=8)) % len(options)])
        if len(path) >= 2:
            paths.append(tuple(path))
    if not paths:
        paths.append((0, 1))
    return (edges, frozen), paths


@settings(max_examples=60, deadline=None)
@given(network_specs())
def test_bottleneck_and_hop_amounts_match_scalar(data):
    spec, paths = data
    vec, ref = build_twins(spec)
    for path in paths:
        assert vec.bottleneck(path) == ref.bottleneck(path)
        assert vec.hop_amounts(path, 13.7) == ref.hop_amounts(path, 13.7)
    # The batch probe agrees with the scalar per-path loop, exactly.
    batch = vec.bottleneck_many(paths)
    assert batch == [ref.bottleneck(p) for p in paths]
    # And the memoised re-probe (no mutations in between) is identical.
    assert vec.bottleneck_many(paths) == batch


@settings(max_examples=60, deadline=None)
@given(
    network_specs(),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),  # path selector
            st.floats(min_value=0.01, max_value=80.0, allow_nan=False),
            st.sampled_from(["settle", "refund", "hold"]),
            st.integers(min_value=0, max_value=63),  # freeze/unfreeze selector
        ),
        min_size=1,
        max_size=25,
    ),
)
def test_lock_settle_refund_parity_under_random_traffic(data, operations):
    """Same op mix on both twins ⇒ byte-identical store state throughout,
    including clamped lock amounts, frozen rejections and mid-path
    rollback side effects."""
    spec, paths = data
    vec, ref = build_twins(spec)
    held = []
    channels_vec = list(vec.channels())
    channels_ref = list(ref.channels())
    for step, (path_index, amount, resolution, churn) in enumerate(operations):
        path = paths[path_index % len(paths)]
        if churn % 7 == 0:  # occasional churn: freeze or thaw one channel
            index = churn % len(channels_vec)
            if channels_vec[index].frozen:
                channels_vec[index].unfreeze()
                channels_ref[index].unfreeze()
            else:
                channels_vec[index].freeze()
                channels_ref[index].freeze()
        outcome_vec = outcome_ref = None
        try:
            lock_vec = vec.lock_path(path, amount)
        except InsufficientFundsError:
            outcome_vec = "insufficient"
        try:
            lock_ref = ref.lock_path(path, amount)
        except InsufficientFundsError:
            outcome_ref = "insufficient"
        assert outcome_vec == outcome_ref, f"step {step} on {path}"
        assert_stores_identical(vec, ref)
        if outcome_vec is not None:
            continue
        assert isinstance(lock_vec, PathLock)
        assert len(lock_vec) == len(lock_ref) == len(path) - 1
        for j in range(len(lock_ref)):
            assert lock_vec[j].amount == lock_ref[j].amount
        if resolution == "settle":
            vec.settle_path(path, lock_vec)
            ref.settle_path(path, lock_ref)
        elif resolution == "refund":
            vec.refund_path(path, lock_vec)
            ref.refund_path(path, lock_ref)
        else:
            held.append((path, lock_vec, lock_ref))
        assert_stores_identical(vec, ref)
        vec.check_invariants()
    for index, (path, lock_vec, lock_ref) in enumerate(held):
        if index % 2 == 0:
            vec.settle_path(path, lock_vec)
            ref.settle_path(path, lock_ref)
        else:
            vec.refund_path(path, lock_vec)
            ref.refund_path(path, lock_ref)
    assert_stores_identical(vec, ref)
    assert vec.total_inflight() == ref.total_inflight()


@settings(max_examples=60, deadline=None)
@given(network_specs(), st.data())
def test_batch_probe_refreshes_after_mutations(data, rand):
    """The memoised batch probe must track every kind of store mutation:
    locks, settles, refunds, freezes, thaws and deposits."""
    spec, paths = data
    vec, ref = build_twins(spec)
    channels_vec = list(vec.channels())
    channels_ref = list(ref.channels())
    for _ in range(6):
        assert vec.bottleneck_many(paths) == [ref.bottleneck(p) for p in paths]
        action = rand.draw(st.sampled_from(["lock", "freeze", "thaw", "deposit"]))
        index = rand.draw(st.integers(min_value=0, max_value=len(channels_vec) - 1))
        cv, cr = channels_vec[index], channels_ref[index]
        if action == "lock" and not cv.frozen and cv.balance(cv.node_a) > 1.0:
            amount = cv.balance(cv.node_a) / 2.0
            cv.lock(cv.node_a, amount)
            cr.lock(cr.node_a, amount)
        elif action == "freeze":
            cv.freeze()
            cr.freeze()
        elif action == "thaw":
            cv.unfreeze()
            cr.unfreeze()
        else:
            cv.deposit(cv.node_b, 5.0)
            cr.deposit(cr.node_b, 5.0)


class TestMidPathRollback:
    """Deterministic pin of the engineered §lock_path failure semantics."""

    def build(self, use_table: bool) -> PaymentNetwork:
        network = PaymentNetwork()
        network.use_path_table = use_table
        network.add_channel(0, 1, 100.0)
        network.add_channel(1, 2, 100.0, base_fee=1.0, fee_rate=0.05)
        network.add_channel(2, 3, 100.0)
        # Drain 2->3 so the last hop fails after two hops locked.
        network.channel(2, 3).lock(2, 49.0)
        return network

    def test_rollback_side_effects_match_scalar(self):
        vec, ref = self.build(True), self.build(False)
        for network in (vec, ref):
            amounts = network.hop_amounts((0, 1, 2, 3), 10.0)
            with pytest.raises(InsufficientFundsError):
                network.lock_path((0, 1, 2, 3), 10.0, amounts=amounts)
        assert_stores_identical(vec, ref)
        # The scalar loop's visible scars are reproduced: attempted value
        # counted on the rolled-back hops, one refund each, no net funds.
        store = vec.state_store
        assert store.sent[0, 0] > 0.0
        assert store.num_refunded[0] == 1
        assert store.num_refunded[1] == 1
        assert store.num_refunded[2] == 0
        vec.check_invariants()

    def test_frozen_mid_hop_rejects_all_or_nothing(self):
        vec, ref = self.build(True), self.build(False)
        for network in (vec, ref):
            network.channel(1, 2).freeze()
            with pytest.raises(InsufficientFundsError):
                network.lock_path((0, 1, 2), 5.0)
        assert_stores_identical(vec, ref)


class TestPathLockLifecycle:
    def network(self) -> PaymentNetwork:
        network = PaymentNetwork()
        network.use_path_table = True
        network.add_channel(0, 1, 100.0)
        network.add_channel(1, 2, 100.0)
        return network

    def test_double_settle_raises(self):
        network = self.network()
        lock = network.lock_path((0, 1, 2), 5.0)
        network.settle_path((0, 1, 2), lock)
        with pytest.raises(ChannelError):
            network.settle_path((0, 1, 2), lock)

    def test_refund_after_settle_raises(self):
        network = self.network()
        lock = network.lock_path((0, 1, 2), 5.0)
        network.settle_path((0, 1, 2), lock)
        with pytest.raises(ChannelError):
            network.refund_path((0, 1, 2), lock)

    def test_hop_count_mismatch_raises(self):
        network = self.network()
        lock = network.lock_path((0, 1, 2), 5.0)
        with pytest.raises(ChannelError):
            network.settle_path((0, 1), lock)
        network.settle_path((0, 1, 2), lock)

    def test_degenerate_single_node_path_in_batch(self):
        network = self.network()
        values = network.bottleneck_many([(0, 1, 2), (1,)])
        assert values == [50.0, float("inf")]
        # And again, to exercise the cached degenerate-set branch.
        assert network.bottleneck_many([(0, 1, 2), (1,)]) == values

    def test_lock_sequence_protocol(self):
        network = self.network()
        lock = network.lock_path((0, 1, 2), 5.0)
        assert len(lock) == 2
        assert [hop.amount for hop in lock] == [5.0, 5.0]
        assert lock[1].amount == 5.0

    def test_validation_errors_match_scalar_types(self):
        network = self.network()
        scalar = PaymentNetwork()
        scalar.use_path_table = False
        scalar.add_channel(0, 1, 100.0)
        scalar.add_channel(1, 2, 100.0)
        from repro.errors import TopologyError

        for net in (network, scalar):
            with pytest.raises(ChannelError):
                net.bottleneck([])
            with pytest.raises(TopologyError):
                net.bottleneck([0, 2])
            with pytest.raises(TopologyError):
                net.bottleneck([0, 9])
            with pytest.raises(ChannelError):
                net.lock_path([0, 1, 0], 1.0)
            with pytest.raises(ChannelError):
                net.lock_path([0], 1.0)
            assert net.bottleneck([0]) == float("inf")
