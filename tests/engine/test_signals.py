"""ControlPlane parity: vectorised kernels vs. the scalar baselines.

The control plane's acceptance bar is float-for-float equality with the
per-element implementations it replaces (``ControlPlane.vectorized_signals
= False``), across random fee-bearing / frozen topologies: marks, prices,
gradients and imbalance must agree exactly — not approximately — because
the determinism suite pins byte-identical metrics JSON across both modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.prices import PriceTable
from repro.engine.signals import ControlPlane
from repro.errors import ConfigError
from repro.network.network import PaymentNetwork
from repro.routing.base import PathCache
from repro.simulator.rng import make_rng
from repro.topology import ripple_topology
from tests.engine.test_pathtable import network_specs


@pytest.fixture(autouse=True)
def _restore_flag():
    """Every test leaves the class-wide parity flag as it found it."""
    previous = ControlPlane.vectorized_signals
    yield
    ControlPlane.vectorized_signals = previous


def _random_network(rng, fees: bool = True, frozen: bool = True):
    """A Ripple-like network with random balances, fees and frozen edges."""
    network = ripple_topology("tiny", seed=int(rng.integers(0, 2**31))).build_network(
        default_capacity=200.0
    )
    for channel in network.channels():
        # Skew balances so imbalance signals are non-trivial.
        a, _ = channel.endpoints
        shift = float(rng.uniform(-80.0, 80.0))
        if shift > 0:
            shift = min(shift, channel.balance(channel.node_b))
            if shift > 0:
                htlc = channel.lock(channel.node_b, shift)
                channel.settle(htlc)
        elif shift < 0:
            take = min(-shift, channel.balance(channel.node_a))
            if take > 0:
                htlc = channel.lock(channel.node_a, take)
                channel.settle(htlc)
        if fees and rng.random() < 0.3:
            channel.base_fee = float(rng.uniform(0.0, 0.5))
            channel.fee_rate = float(rng.uniform(0.0, 0.01))
    if frozen:
        channels = list(network.channels())
        for channel in rng.choice(len(channels), size=2, replace=False):
            channels[int(channel)].freeze()
    return network


def _random_paths(network, rng, count: int = 12):
    """Sample ``count`` multi-hop paths through the network."""
    cache = PathCache.from_network(network, k=4)
    nodes = sorted(network.nodes())
    paths = []
    while len(paths) < count:
        i, j = rng.choice(len(nodes), size=2, replace=False)
        for path in cache.paths(nodes[int(i)], nodes[int(j)]):
            if len(path) >= 2:
                paths.append(path)
    return paths[:count]


class TestPriceParity:
    def _drive(self, network, paths, rng) -> PriceTable:
        """One deterministic observe/update workload on a fresh table."""
        table = PriceTable(network, delta=0.5)
        for step in range(40):
            path = paths[int(rng.integers(0, len(paths)))]
            table.observe_path(path, float(rng.uniform(0.5, 40.0)))
            if step % 5 == 4:
                table.update_all(dt=1.0, eta=0.08, kappa=0.06)
        return table

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lambda_mu_and_path_prices_match_exactly(self, seed):
        """Vectorised λ/µ/path prices equal the scalar loop bit for bit."""
        results = {}
        for vectorized in (True, False):
            ControlPlane.vectorized_signals = vectorized
            rng = make_rng(100 + seed)
            network = _random_network(rng)
            paths = _random_paths(network, rng)
            drive_rng = make_rng(200 + seed)
            table = self._drive(network, paths, drive_rng)
            lam = {}
            mu = {}
            for u, v in network.edges():
                state = table.state(u, v)
                lam[(u, v)] = state.lam
                mu[(u, v)] = (state.mu[(u, v)], state.mu[(v, u)])
            prices = [table.path_price(p) for p in paths]
            results[vectorized] = (lam, mu, prices)
        assert results[True] == results[False]

    def test_mean_price_sample_matches_across_modes(self):
        """The metrics sample (mean λ per update) is mode-independent."""
        samples = {}
        for vectorized in (True, False):
            ControlPlane.vectorized_signals = vectorized
            rng = make_rng(7)
            network = _random_network(rng)
            paths = _random_paths(network, rng)
            table = self._drive(network, paths, make_rng(8))
            samples[vectorized] = list(network.control_plane.price_samples)
        assert samples[True] == samples[False]
        assert samples[True]  # the workload updated at least once

    def test_price_view_write_through(self):
        """The dict-like view writes land in the control-plane arrays."""
        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        table = PriceTable(network, delta=0.5)
        table.state(0, 1).mu[(0, 1)] = 0.25
        table.state(0, 1).lam = 0.5
        assert table.path_price([0, 1]) == pytest.approx(0.75)
        cid, side = network.channel_id(0, 1)
        assert network.control_plane.state.mu[cid, side] == 0.25

    def test_update_rejects_non_positive_dt(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        table = PriceTable(network, delta=0.5)
        with pytest.raises(ConfigError):
            table.update_all(dt=0.0, eta=0.1, kappa=0.1)


class _FakeUnit:
    __slots__ = ("marked",)

    def __init__(self, marked=False):
        self.marked = marked


class TestMarkScanParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch", [1, 3, 7, 64])
    def test_marks_and_counters_match(self, seed, batch):
        """Batch scans mark exactly the units the per-unit branch marks."""
        rng = make_rng(300 + seed)
        delays = [float(d) for d in rng.uniform(0.0, 1.0, size=batch)]
        pre_marked = [bool(b) for b in rng.random(batch) < 0.2]
        outcomes = {}
        for vectorized in (True, False):
            ControlPlane.vectorized_signals = vectorized
            network = PaymentNetwork()
            network.add_channel(0, 1, 100.0)
            control = network.control_plane
            control.configure_marking(0.4)
            units = [_FakeUnit(m) for m in pre_marked]
            newly = control.observe_service(0, 0, delays, units)
            outcomes[vectorized] = (
                newly,
                [u.marked for u in units],
                int(control.state.marks[0, 0]),
                int(control.state.serviced[0, 0]),
            )
        assert outcomes[True] == outcomes[False]

    def test_disabled_marking_never_marks(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        control = network.control_plane
        control.configure_marking(None)
        units = [_FakeUnit() for _ in range(8)]
        assert control.observe_service(0, 1, [9e9] * 8, units) == 0
        assert not any(u.marked for u in units)
        assert int(control.state.serviced[0, 1]) == 8

    def test_already_marked_units_not_double_counted(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        control = network.control_plane
        control.configure_marking(0.1)
        units = [_FakeUnit(marked=True) for _ in range(6)]
        assert control.observe_service(0, 0, [1.0] * 6, units) == 0
        assert int(control.state.marks[0, 0]) == 0


class TestGradientParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gradient_weights_match(self, seed):
        rng = make_rng(400 + seed)
        n = int(rng.integers(1, 24))
        backlog_u = [float(x) for x in rng.uniform(0.0, 50.0, size=n)]
        backlog_v = [float(x) for x in rng.uniform(0.0, 50.0, size=n)]
        dist_u = [int(x) for x in rng.integers(-1, 10, size=n)]
        dist_v = [int(x) for x in rng.integers(-1, 10, size=n)]
        beta = float(rng.uniform(0.1, 2.0))
        results = {}
        for vectorized in (True, False):
            ControlPlane.vectorized_signals = vectorized
            network = PaymentNetwork()
            network.add_channel(0, 1, 10.0)
            results[vectorized] = network.control_plane.gradient_weights(
                backlog_u, backlog_v, dist_u, dist_v, beta
            )
        assert results[True] == results[False]
        for bu, bv, du, dv, w in zip(
            backlog_u, backlog_v, dist_u, dist_v, results[True]
        ):
            if du < 0 or dv < 0:
                assert w == 0.0
            else:
                assert w == (bu - bv) + beta * (du - dv)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_path_queue_penalty_matches(self, seed):
        results = {}
        for vectorized in (True, False):
            ControlPlane.vectorized_signals = vectorized
            rng = make_rng(500 + seed)
            network = _random_network(rng, fees=False, frozen=False)
            paths = _random_paths(network, rng)
            control = network.control_plane
            store = network.state_store
            depth_rng = make_rng(600 + seed)
            store.queue_depth_view[:] = depth_rng.integers(
                0, 12, size=store.queue_depth_view.shape
            )
            for _ in range(4):
                control.tick()
            results[vectorized] = control.path_queue_penalty(paths)
        assert results[True] == results[False]
        assert any(p > 0 for p in results[True])

    def test_queue_gradient_reads_live_depths(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        store = network.state_store
        store.queue_depth[0, 0] = 5
        store.queue_depth[0, 1] = 2
        gradient = network.control_plane.queue_gradient(
            np.array([0, 0]), np.array([0, 1])
        )
        assert gradient.tolist() == [3, -3]


class TestImbalanceParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_path_imbalance_matches(self, seed):
        results = {}
        for vectorized in (True, False):
            ControlPlane.vectorized_signals = vectorized
            rng = make_rng(700 + seed)
            network = _random_network(rng, frozen=False)
            paths = _random_paths(network, rng)
            control = network.control_plane
            table = network.path_table
            values = [control.path_imbalance(table.compile(p)) for p in paths]
            # Mutate some balances, probe again: the stamp-driven refresh
            # must track the store (not serve stale cache entries).
            for channel in list(network.channels())[:5]:
                amount = min(5.0, channel.balance(channel.node_a))
                if amount > 0:
                    channel.settle(channel.lock(channel.node_a, amount))
            values += [control.path_imbalance(table.compile(p)) for p in paths]
            results[vectorized] = values
        assert results[True] == results[False]


class TestTickParity:
    def test_ewma_qdepth_matches_and_decays(self):
        results = {}
        for vectorized in (True, False):
            ControlPlane.vectorized_signals = vectorized
            rng = make_rng(11)
            network = _random_network(rng, fees=False, frozen=False)
            control = network.control_plane
            store = network.state_store
            store.queue_depth_view[:] = 10
            control.tick()
            store.queue_depth_view[:] = 0
            control.tick()
            control.tick()
            results[vectorized] = control.state.ewma_qdepth.copy()
        assert (results[True] == results[False]).all()
        # Rising then decaying toward the live (zero) depth.
        assert (results[True] > 0).all()
        assert (results[True] < 10).all()

    def test_invalid_ewma_alpha_rejected(self):
        network = PaymentNetwork()
        with pytest.raises(ConfigError):
            ControlPlane(network, ewma_alpha=0.0)


def _signal_twins(spec):
    """Two identical networks; one plane vectorised, one scalar."""
    twins = []
    for vectorized in (True, False):
        network = PaymentNetwork()
        for u, v, capacity, balance_u, base_fee, fee_rate in spec[0]:
            network.add_channel(
                u, v, capacity, balance_u=balance_u,
                base_fee=base_fee, fee_rate=fee_rate,
            )
        for index, frozen in enumerate(spec[1]):
            if frozen:
                list(network.channels())[index].freeze()
        network.control_plane.vectorized = vectorized
        twins.append(network)
    return twins


#: The module's autouse flag-restore fixture is function-scoped; these
#: hypothesis tests flip per-instance flags only, so reuse is harmless.
_HYPOTHESIS_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestHypothesisParity:
    """Random fee/frozen topologies: vectorised twin == scalar twin."""

    @settings(max_examples=40, **_HYPOTHESIS_SETTINGS)
    @given(
        network_specs(),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),  # path selector
                st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
                st.booleans(),  # run a dual update after this observe?
            ),
            min_size=1,
            max_size=25,
        ),
    )
    def test_prices_and_imbalance_parity(self, data, operations):
        """Identical observe/update mixes ⇒ identical λ/µ/z_p/imbalance."""
        spec, paths = data
        vec, ref = _signal_twins(spec)
        tables = [PriceTable(network, delta=0.5) for network in (vec, ref)]
        for selector, amount, update in operations:
            path = paths[selector % len(paths)]
            for table in tables:
                table.observe_path(path, amount)
            if update:
                for table in tables:
                    table.update_all(dt=1.0, eta=0.1, kappa=0.07)
        for path in paths:
            assert tables[0].path_price(path) == tables[1].path_price(path)
            imbalances = [
                network.control_plane.path_imbalance(
                    network.path_table.compile(path)
                )
                for network in (vec, ref)
            ]
            assert imbalances[0] == imbalances[1]
        for u, v, *_ in spec[0]:
            state_vec, state_ref = tables[0].state(u, v), tables[1].state(u, v)
            assert state_vec.lam == state_ref.lam
            assert state_vec.mu[(u, v)] == state_ref.mu[(u, v)]
            assert state_vec.mu[(v, u)] == state_ref.mu[(v, u)]

    @settings(max_examples=40, **_HYPOTHESIS_SETTINGS)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
                st.booleans(),  # pre-marked at an earlier hop?
            ),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0.05, max_value=1.5, allow_nan=False),
    )
    def test_mark_scan_parity(self, batch, threshold):
        delays = [delay for delay, _ in batch]
        outcomes = {}
        for vectorized in (True, False):
            network = PaymentNetwork()
            network.add_channel(0, 1, 10.0)
            control = network.control_plane
            control.vectorized = vectorized
            control.configure_marking(threshold)
            units = [_FakeUnit(marked) for _, marked in batch]
            newly = control.observe_service(0, 1, delays, units)
            outcomes[vectorized] = (
                newly,
                [unit.marked for unit in units],
                int(control.state.marks[0, 1]),
                int(control.state.serviced[0, 1]),
            )
        assert outcomes[True] == outcomes[False]


class TestSizing:
    def test_plane_grows_with_the_store(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        control = network.control_plane
        assert control.state.n == 1
        network.add_channel(1, 2, 100.0)
        control.tick()
        assert control.state.n == 2
        assert control.state.mark_threshold[1, 0] == np.inf
        # Every entry point grows on demand, not just tick().
        assert control.observe_service(1, 0, [0.1], [_FakeUnit()]) == 0
        network.add_channel(2, 3, 100.0)
        assert control.path_price((2, 3)) == 0.0
