"""Spatial sharding: parity, partition plumbing, and the shared store.

The sharding contract is that ``ShardedSession.sharded_execution = False``
(the serial single-process plan) and the default multi-process execution
produce **byte-identical metrics JSON** — the partition, the epoch
windows, the lane order and the merge are all deterministic, and the
parallel mode's only freedom (concurrent shard lanes) is over
row-disjoint store state.  These tests pin that contract per scheme, plus
the pieces it stands on: shared-memory store views across ``fork``,
cross-process probe invalidation, traffic classification, and the scheme
guards that refuse configurations the row-disjointness argument cannot
cover.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.engine import sharding
from repro.engine.sanitizer import BOUNDARY_LANE, ShardSanitizer, ShardViolationError
from repro.engine.sharding import ShardedSession
from repro.engine.session import SimulationSession
from repro.engine.store import ChannelStateStore
from repro.experiments.config import ExperimentConfig
from repro.metrics.report import metrics_to_json
from repro.simulator.engine import SimulationError
from repro.topology import partition_network

RUN_SLOW = os.environ.get("REPRO_SLOW_TESTS") == "1"

#: The parity schemes the acceptance criteria pin (>= 3).
PARITY_SCHEMES = [
    ("spider-waterfilling", {}),
    ("shortest-path", {}),
    ("segment-routing", {"num_segments": 2}),
]


def _config(scheme="spider-waterfilling", params=None, topology="ripple-small", **kw):
    base = dict(
        scheme=scheme,
        scheme_params=dict(params or {}),
        topology=topology,
        capacity=400.0,
        num_transactions=220,
        arrival_rate=110.0,
        seed=3,
    )
    base.update(kw)
    return ExperimentConfig(**base)


def _run_sharded(config, parallel, **kwargs):
    """Run a sharded session with the parity flag set to ``parallel``."""
    saved = ShardedSession.sharded_execution
    ShardedSession.sharded_execution = parallel
    try:
        session = ShardedSession.from_config(config, **kwargs)
        metrics = session.run()
    finally:
        ShardedSession.sharded_execution = saved
    return session, metrics


# ---------------------------------------------------------------------------
# The headline contract: serial plan == multi-process execution, byte for byte
# ---------------------------------------------------------------------------
class TestShardParity:
    @pytest.mark.parametrize("scheme,params", PARITY_SCHEMES)
    def test_serial_and_parallel_metrics_json_identical(self, scheme, params):
        config = _config(scheme=scheme, params=params)
        serial_session, serial = _run_sharded(config, parallel=False, num_shards=2)
        parallel_session, parallel = _run_sharded(config, parallel=True, num_shards=2)
        assert metrics_to_json(serial) == metrics_to_json(parallel)
        # Both modes executed real traffic through both lane kinds.
        stats = parallel_session.dispatch_stats()
        assert stats["num_shards"] == 2
        assert stats["local_payments"] + stats["boundary_crossings"] == 220
        serial_stats = serial_session.dispatch_stats()
        assert serial_stats["parallel"] is False
        assert stats["parallel"] is True

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_shard_count_does_not_change_serial_parallel_parity(self, num_shards):
        config = _config(scheme="shortest-path", num_transactions=150)
        _, serial = _run_sharded(config, parallel=False, num_shards=num_shards)
        _, parallel = _run_sharded(config, parallel=True, num_shards=num_shards)
        assert metrics_to_json(serial) == metrics_to_json(parallel)

    def test_epoch_length_does_not_change_parity(self):
        config = _config(scheme="shortest-path", num_transactions=150)
        _, coarse_serial = _run_sharded(
            config, parallel=False, num_shards=2, epoch=2.0
        )
        _, coarse_parallel = _run_sharded(
            config, parallel=True, num_shards=2, epoch=2.0
        )
        assert metrics_to_json(coarse_serial) == metrics_to_json(coarse_parallel)

    @pytest.mark.skipif(not RUN_SLOW, reason="ripple-huge parity is slow; set REPRO_SLOW_TESTS=1")
    def test_ripple_huge_parity(self):
        config = _config(
            scheme="spider-waterfilling",
            topology="ripple-huge",
            num_transactions=400,
            arrival_rate=200.0,
            capacity=4000.0,
        )
        _, serial = _run_sharded(config, parallel=False, num_shards=4)
        _, parallel = _run_sharded(config, parallel=True, num_shards=4)
        assert metrics_to_json(serial) == metrics_to_json(parallel)

    def test_sessions_run_exactly_once(self):
        session, _ = _run_sharded(_config(num_transactions=40), parallel=False)
        with pytest.raises(SimulationError):
            session.run()


# ---------------------------------------------------------------------------
# Traffic classification
# ---------------------------------------------------------------------------
class TestClassification:
    def test_local_lane_records_have_segment_internal_candidates(self):
        config = _config(scheme="shortest-path", num_transactions=200)
        session, _ = _run_sharded(config, parallel=False, num_shards=2)
        partition = session.partition
        view = session.network.path_service.view(k=1)
        for index, lane in enumerate(session._shard_lanes):
            for record in lane.records:
                for path in view.paths(record.source, record.dest):
                    assert partition.is_internal(path)
                    assert partition.segment_of(path[0]) == index

    def test_every_record_lands_in_exactly_one_lane(self):
        config = _config(num_transactions=200)
        session, _ = _run_sharded(config, parallel=False, num_shards=3)
        lanes = [*session._shard_lanes, session._boundary_lane]
        total = sum(len(lane.records) for lane in lanes)
        assert total == len(session.records)
        ids = [r.txn_id for lane in lanes for r in lane.records]
        assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# Scheme guards
# ---------------------------------------------------------------------------
class TestSchemeGuards:
    def test_transport_scheme_refused(self):
        with pytest.raises(SimulationError, match="native transport"):
            ShardedSession.from_config(
                _config(scheme="spider-queueing", num_transactions=20)
            )

    def test_scheme_without_path_budget_refused(self):
        with pytest.raises(SimulationError, match="num_paths"):
            ShardedSession.from_config(_config(scheme="lnd", num_transactions=20))

    def test_control_plane_scheme_refused_at_run(self):
        session = ShardedSession.from_config(
            _config(scheme="spider-primal-dual", num_transactions=20)
        )
        with pytest.raises(SimulationError, match="control plane"):
            session.run()

    def test_invalid_shard_geometry(self):
        with pytest.raises(ValueError):
            ShardedSession.from_config(_config(num_transactions=10), num_shards=0)
        with pytest.raises(ValueError):
            ShardedSession.from_config(_config(num_transactions=10), epoch=0.0)


# ---------------------------------------------------------------------------
# Shared-memory store
# ---------------------------------------------------------------------------
def _child_reads_and_writes(store, conn):
    try:
        conn.send(float(store.balance[0, 0]))
        store.balance[0, 0] = 77.0
    finally:
        conn.close()


class TestSharedStore:
    def test_share_preserves_values_and_roundtrips(self):
        store = ChannelStateStore()
        cid = store.allocate(50.0, 25.0)
        store.balance[cid, 0] = 31.0
        name = store.share()
        assert store.is_shared and store.shared_memory_name == name
        assert store.balance[cid, 0] == 31.0
        assert store.share() == name  # idempotent
        with pytest.raises(Exception):
            store.allocate(10.0, 5.0)  # growth frozen while shared
        store.close_shared()
        assert not store.is_shared
        assert store.balance[cid, 0] == 31.0

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_forked_child_sees_and_mutates_shared_rows(self):
        store = ChannelStateStore()
        cid = store.allocate(50.0, 25.0)
        store.balance[cid, 0] = 25.0
        store.share()
        try:
            ctx = multiprocessing.get_context("fork")
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_child_reads_and_writes, args=(store, child_conn)
            )
            proc.start()
            seen = parent_conn.recv()
            proc.join(timeout=30.0)
            assert seen == 25.0  # child saw the parent's write...
            assert store.balance[cid, 0] == 77.0  # ...and the parent sees the child's
        finally:
            store.close_shared()


# ---------------------------------------------------------------------------
# The write-ownership sanitizer
# ---------------------------------------------------------------------------
class TestShardSanitizer:
    def _two_row_store(self):
        """A store with one row per segment and a lane-0/lane-1 owner map."""
        store = ChannelStateStore()
        cid0 = store.allocate(10.0, 10.0)
        cid1 = store.allocate(10.0, 10.0)
        sanitizer = ShardSanitizer(np.array([0, 1], dtype=np.int8))
        store.attach_sanitizer(sanitizer)
        return store, sanitizer, cid0, cid1

    def test_out_of_segment_write_names_lane_payment_and_row(self):
        store, sanitizer, cid0, cid1 = self._two_row_store()
        sanitizer.set_lane(0)
        sanitizer.set_payment(77)
        store.touch(cid0)  # own row: fine
        store.deposit(cid0, 1, 2.0)  # own row: fine
        with pytest.raises(ShardViolationError) as excinfo:
            store.deposit(cid1, 0, 5.0)  # lane 0 writing segment 1's row
        message = str(excinfo.value)
        assert "lane 0" in message
        assert "payment 77" in message
        assert f"cid={cid1}" in message
        assert "side=0" in message
        assert "segment 1" in message

    def test_batched_write_reports_the_annotated_payment(self):
        store, sanitizer, cid0, cid1 = self._two_row_store()
        sanitizer.set_lane(0)
        sanitizer.annotate(np.array([5, 6]))
        with pytest.raises(ShardViolationError) as excinfo:
            store.lock_many(
                np.array([cid0, cid1]),
                np.array([0, 0]),
                np.array([1.0, 1.0]),
            )
        message = str(excinfo.value)
        assert "payment 6" in message  # the offending row's annotation
        assert f"cid={cid1}" in message

    def test_boundary_and_unset_lanes_are_unrestricted(self):
        store, sanitizer, cid0, cid1 = self._two_row_store()
        store.deposit(cid1, 0, 1.0)  # lane unset: setup writes allowed
        sanitizer.set_lane(BOUNDARY_LANE)
        store.deposit(cid0, 0, 1.0)
        store.deposit(cid1, 0, 1.0)  # boundary lane may touch any row
        assert sanitizer.checks == 3

    def test_cut_channel_write_blames_the_boundary(self):
        store = ChannelStateStore()
        cid = store.allocate(10.0, 10.0)
        sanitizer = ShardSanitizer(np.array([BOUNDARY_LANE], dtype=np.int8))
        store.attach_sanitizer(sanitizer)
        sanitizer.set_lane(1)
        with pytest.raises(ShardViolationError, match="boundary"):
            store.apply_lock(cid, 0, 1.0)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_sanitized_run_matches_unsanitized_metrics(self, parallel):
        config = _config(scheme="shortest-path", num_transactions=120)
        _, plain = _run_sharded(config, parallel=parallel, num_shards=2)
        session, sanitized = _run_sharded(
            config, parallel=parallel, num_shards=2, sanitize=True
        )
        assert metrics_to_json(plain) == metrics_to_json(sanitized)
        # The sanitizer really vetted writes (parent-side count; workers
        # accumulate their own in the forked children).
        assert session._sanitizer is not None


# ---------------------------------------------------------------------------
# Worker crash handling: fast failure, no leaked /dev/shm segment
# ---------------------------------------------------------------------------
def _dying_shard_worker(driver, index, conn):
    """Stand-in worker: lane 0 dies as if SIGKILLed, others run normally."""
    if index == 0:
        os._exit(42)
    _real_shard_worker(driver, index, conn)


_real_shard_worker = sharding._shard_worker


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
class TestWorkerCrash:
    def test_killed_worker_fails_fast_and_leaks_no_shm(self, monkeypatch):
        shared_names = []
        real_share = ChannelStateStore.share

        def recording_share(self):
            name = real_share(self)
            shared_names.append(name)
            return name

        monkeypatch.setattr(ChannelStateStore, "share", recording_share)
        monkeypatch.setattr(sharding, "_shard_worker", _dying_shard_worker)
        config = _config(scheme="shortest-path", num_transactions=120)
        started = time.perf_counter()
        with pytest.raises(SimulationError, match="exit code 42"):
            _run_sharded(config, parallel=True, num_shards=2)
        elapsed = time.perf_counter() - started
        # The watchdog aborts the barriers: no 600 s barrier-timeout wait.
        assert elapsed < 60.0
        # The finally path ran close_shared(): the named segment is gone.
        assert shared_names
        for name in shared_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# Probe invalidation (the cross-process freshness hook)
# ---------------------------------------------------------------------------
class TestProbeInvalidation:
    def test_invalidate_probes_forces_full_regather(self):
        config = _config(scheme="spider-waterfilling", num_transactions=60)
        session = SimulationSession.from_config(config)
        session.run()
        table = session.network.peek_path_table()
        assert table is not None and table._probes
        table.invalidate_probes()
        for probe in table._probes.values():
            if probe is not None:
                assert probe.as_of == -1
                assert probe.values is None
                assert probe.values_list == []
