"""Tests for the SimulationSession facade."""

from __future__ import annotations

import pytest

from repro.core.queueing import QueueingRuntime
from repro.core.runtime import RuntimeConfig
from repro.engine.session import SimulationSession
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.routing.registry import make_scheme
from repro.topology import line_topology
from repro.workload.generator import TransactionRecord


def _line_setup(scheme_name="shortest-path", n_records=20):
    network = line_topology(4).build_network(default_capacity=100.0)
    records = [
        TransactionRecord(
            txn_id=i, source=0, dest=3, amount=2.0, arrival_time=0.05 * (i + 1)
        )
        for i in range(n_records)
    ]
    scheme = make_scheme(scheme_name)
    return network, records, scheme


def _config(**overrides):
    base = dict(
        scheme="spider-waterfilling",
        topology="line-5",
        capacity=200.0,
        num_transactions=250,
        arrival_rate=50.0,
        seed=5,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestNativeExecution:
    def test_runs_trace_and_settles(self):
        network, records, scheme = _line_setup()
        session = SimulationSession(network, records, scheme)
        metrics = session.run()
        assert metrics.attempted == 20
        assert metrics.completed == 20
        assert metrics.success_ratio == pytest.approx(1.0)
        assert network.total_inflight() == pytest.approx(0.0)

    def test_session_runs_exactly_once(self):
        network, records, scheme = _line_setup()
        session = SimulationSession(network, records, scheme)
        session.run()
        with pytest.raises(RuntimeError):
            session.run()

    def test_matches_legacy_runtime_counts(self):
        config = _config()
        legacy = run_experiment(config, engine="legacy")
        session = run_experiment(config, engine="session")
        assert session.attempted == legacy.attempted
        assert session.completed == legacy.completed
        assert session.failed == legacy.failed
        assert session.delivered_value == pytest.approx(legacy.delivered_value)
        assert session.mean_completion_latency == pytest.approx(
            legacy.mean_completion_latency, abs=1e-4
        )

    def test_scheme_surface(self):
        """Schemes read the Runtime attribute surface off the session."""
        network, records, scheme = _line_setup()
        config = RuntimeConfig(end_time=30.0)
        session = SimulationSession(network, records, scheme, config)
        assert session.end_time == pytest.approx(30.0)
        assert session.now == 0.0
        assert session.records
        assert session.network is network
        session.run()
        assert session.now == pytest.approx(30.0)
        assert session.events_processed > 0

    def test_atomic_scheme_single_attempt(self):
        config = _config(scheme="speedymurmurs", num_transactions=100)
        legacy = run_experiment(config, engine="legacy")
        session = run_experiment(config, engine="session")
        assert session.attempted == legacy.attempted
        assert session.completed == legacy.completed

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_experiment(_config(), engine="warp-drive")


class TestFacadeFallback:
    def test_hop_by_hop_scheme_delegates_to_queueing_runtime(self):
        config = _config(scheme="spider-queueing", num_transactions=100)
        session = SimulationSession.from_config(config)
        metrics = session.run()
        assert isinstance(session._delegate, QueueingRuntime)
        assert metrics.attempted == 100

    def test_fallback_matches_direct_legacy_run(self):
        config = _config(scheme="spider-queueing", num_transactions=100)
        via_session = SimulationSession.from_config(config).run()
        direct = run_experiment(config, engine="legacy")
        assert via_session.attempted == direct.attempted
        assert via_session.completed == direct.completed
        assert via_session.delivered_value == pytest.approx(direct.delivered_value)


class TestPrimalDualOnSession:
    def test_recurring_control_loop_runs_on_tick_engine(self):
        """spider-primal-dual drives a RecurringTimer off session.sim."""
        config = _config(scheme="spider-primal-dual", num_transactions=120)
        metrics = SimulationSession.from_config(config).run()
        assert metrics.attempted == 120
        assert 0.0 <= metrics.success_ratio <= 1.0
