"""Tests for the SimulationSession facade."""

from __future__ import annotations

import pytest

from repro.core.queueing import QueueingRuntime
from repro.core.runtime import RuntimeConfig
from repro.engine.session import SimulationSession
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.routing.registry import make_scheme
from repro.topology import line_topology
from repro.workload.generator import TransactionRecord


def _line_setup(scheme_name="shortest-path", n_records=20):
    network = line_topology(4).build_network(default_capacity=100.0)
    records = [
        TransactionRecord(
            txn_id=i, source=0, dest=3, amount=2.0, arrival_time=0.05 * (i + 1)
        )
        for i in range(n_records)
    ]
    scheme = make_scheme(scheme_name)
    return network, records, scheme


def _config(**overrides):
    base = dict(
        scheme="spider-waterfilling",
        topology="line-5",
        capacity=200.0,
        num_transactions=250,
        arrival_rate=50.0,
        seed=5,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestNativeExecution:
    def test_runs_trace_and_settles(self):
        network, records, scheme = _line_setup()
        session = SimulationSession(network, records, scheme)
        metrics = session.run()
        assert metrics.attempted == 20
        assert metrics.completed == 20
        assert metrics.success_ratio == pytest.approx(1.0)
        assert network.total_inflight() == pytest.approx(0.0)

    def test_session_runs_exactly_once(self):
        network, records, scheme = _line_setup()
        session = SimulationSession(network, records, scheme)
        session.run()
        with pytest.raises(RuntimeError):
            session.run()

    def test_matches_legacy_runtime_counts(self):
        config = _config()
        legacy = run_experiment(config, engine="legacy")
        session = run_experiment(config, engine="session")
        assert session.attempted == legacy.attempted
        assert session.completed == legacy.completed
        assert session.failed == legacy.failed
        assert session.delivered_value == pytest.approx(legacy.delivered_value)
        assert session.mean_completion_latency == pytest.approx(
            legacy.mean_completion_latency, abs=1e-4
        )

    def test_scheme_surface(self):
        """Schemes read the Runtime attribute surface off the session."""
        network, records, scheme = _line_setup()
        config = RuntimeConfig(end_time=30.0)
        session = SimulationSession(network, records, scheme, config)
        assert session.end_time == pytest.approx(30.0)
        assert session.now == 0.0
        assert session.records
        assert session.network is network
        session.run()
        assert session.now == pytest.approx(30.0)
        assert session.events_processed > 0

    def test_atomic_scheme_single_attempt(self):
        config = _config(scheme="speedymurmurs", num_transactions=100)
        legacy = run_experiment(config, engine="legacy")
        session = run_experiment(config, engine="session")
        assert session.attempted == legacy.attempted
        assert session.completed == legacy.completed

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_experiment(_config(), engine="warp-drive")


class TestNativeTransports:
    def test_hop_by_hop_scheme_runs_natively(self):
        """spider-queueing no longer falls back to the legacy runtime."""
        from repro.engine.transport import HopByHopTransport

        config = _config(scheme="spider-queueing", num_transactions=100)
        session = SimulationSession.from_config(config)
        metrics = session.run()
        assert session._delegate is None
        assert isinstance(session.transport, HopByHopTransport)
        assert metrics.attempted == 100

    def test_backpressure_scheme_runs_natively(self):
        from repro.engine.transport import BackpressureTransport

        config = _config(scheme="celer", num_transactions=100)
        session = SimulationSession.from_config(config)
        metrics = session.run()
        assert session._delegate is None
        assert isinstance(session.transport, BackpressureTransport)
        assert metrics.attempted == 100

    def test_native_matches_direct_legacy_run(self):
        config = _config(scheme="spider-queueing", num_transactions=100)
        via_session = SimulationSession.from_config(config).run()
        direct = run_experiment(config, engine="legacy")
        assert via_session.attempted == direct.attempted
        assert via_session.completed == direct.completed
        assert via_session.delivered_value == pytest.approx(direct.delivered_value)

    def test_transport_primitives_require_a_transport(self):
        """send_unit_hop_by_hop/inject on a plain session are errors."""
        network, records, scheme = _line_setup()
        session = SimulationSession(network, records, scheme)
        payment_stub = object()
        with pytest.raises(RuntimeError):
            session.send_unit_hop_by_hop(payment_stub, (0, 1), 1.0)
        with pytest.raises(RuntimeError):
            session.inject(payment_stub, 1.0)


class TestFacadeFallback:
    def test_custom_runtime_class_still_delegates(self):
        """Out-of-tree schemes pinning a runtime_class keep the legacy path."""

        from repro.core.queueing import SpiderQueueingScheme

        class LegacyPinned(SpiderQueueingScheme):
            name = "legacy-pinned"
            transport = None  # no native transport declared
            runtime_class = QueueingRuntime

        network, records, _ = _line_setup()
        session = SimulationSession(network, records, LegacyPinned(num_paths=4))
        metrics = session.run()
        assert isinstance(session._delegate, QueueingRuntime)
        assert session.transport is None
        assert metrics.attempted == len(records)

    def test_subclass_pinned_runtime_beats_inherited_transport(self):
        """A subclass pinning only runtime_class must get that runtime,
        not the transport it inherits from its base scheme."""
        from repro.routing.backpressure import BackpressureRuntime, CelerScheme

        class InstrumentedRuntime(BackpressureRuntime):
            pass

        class CustomCeler(CelerScheme):
            name = "celer-custom-runtime"
            runtime_class = InstrumentedRuntime
            # note: no transport declaration of its own

        network, records, _ = _line_setup()
        session = SimulationSession(network, records, CustomCeler())
        metrics = session.run()
        assert isinstance(session._delegate, InstrumentedRuntime)
        assert session.transport is None
        assert metrics.attempted == len(records)


class TestEmptyTrace:
    def test_empty_trace_without_end_time_short_circuits(self):
        """Regression: an empty trace with end_time=None must not arm the
        poll timer or call scheme.prepare against a zero-length horizon."""
        prepared = []

        scheme = make_scheme("shortest-path")
        scheme.prepare = lambda runtime: prepared.append(runtime)
        network = line_topology(4).build_network(default_capacity=100.0)
        session = SimulationSession(network, [], scheme)
        metrics = session.run()
        assert metrics.attempted == 0
        assert metrics.duration == 0.0
        assert prepared == []
        assert session._poll_timer is None
        assert session.events_processed == 0
        with pytest.raises(RuntimeError):
            session.run()  # still runs exactly once

    def test_empty_trace_with_explicit_end_time_still_runs(self):
        """An explicit horizon keeps the normal machinery (polls fire)."""
        network = line_topology(4).build_network(default_capacity=100.0)
        scheme = make_scheme("shortest-path")
        session = SimulationSession(network, [], scheme, RuntimeConfig(end_time=3.0))
        metrics = session.run()
        assert metrics.attempted == 0
        assert metrics.duration == 3.0
        assert session.events_processed > 0  # the poll timer ticked


class TestPrimalDualOnSession:
    def test_recurring_control_loop_runs_on_tick_engine(self):
        """spider-primal-dual drives a RecurringTimer off session.sim."""
        config = _config(scheme="spider-primal-dual", num_transactions=120)
        metrics = SimulationSession.from_config(config).run()
        assert metrics.attempted == 120
        assert 0.0 <= metrics.success_ratio <= 1.0
