"""Tests for the native hop-by-hop transports (repro.engine.transport)."""

from __future__ import annotations

import pytest

from repro.core.runtime import RuntimeConfig
from repro.engine.session import SimulationSession
from repro.engine.transport import BackpressureTransport, HopByHopTransport
from repro.errors import ConfigError
from repro.routing.base import RoutingScheme
from repro.routing.registry import make_scheme
from repro.topology.generators import line_topology
from repro.workload.generator import TransactionRecord


class LaunchOnLine(RoutingScheme):
    """Minimal hop-by-hop scheme: launch the remaining value on the line."""

    name = "test-hop-launch"
    atomic = False
    transport = "hop"

    def attempt(self, payment, runtime):
        step = 1 if payment.dest >= payment.source else -1
        path = tuple(range(payment.source, payment.dest + step, step))
        runtime.send_unit_hop_by_hop(payment, path, payment.remaining)


def record(txn_id, t, source, dest, amount, deadline=None):
    return TransactionRecord(txn_id, t, source, dest, amount, deadline)


def make_session(records, capacity=100.0, nodes=4, scheme=None, end_time=30.0):
    network = line_topology(nodes).build_network(default_capacity=capacity)
    session = SimulationSession(
        network,
        records,
        scheme or LaunchOnLine(),
        RuntimeConfig(end_time=end_time, check_invariants=True),
    )
    return session


class TestHopByHopNative:
    def test_simple_payment_completes(self):
        session = make_session([record(0, 1.0, 0, 3, 10.0)])
        metrics = session.run()
        assert isinstance(session.transport, HopByHopTransport)
        assert metrics.completed == 1
        # Arrival after 2 more hops x 0.05s + settle 0.5s.
        assert session.payments[0].completed_at == pytest.approx(1.0 + 2 * 0.05 + 0.5)
        assert session.network.total_inflight() == pytest.approx(0.0)

    def test_queue_depth_arrays_track_router_queues(self):
        """The store's queue_depth is live state, not dead zeros: a starved
        direction shows its parked units mid-run and drains back to zero."""
        session = make_session([record(0, 1.0, 0, 3, 30.0)], end_time=3.0)
        network = session.network
        # Drain 1->2 before the run (held HTLC, never resolved).
        network.channel(1, 2).lock(1, 45.0)
        store = network.state_store
        cid, side = network.channel_id(1, 2)
        observed = {}

        def probe():
            observed["depth"] = int(store.queue_depth[cid, side])
            observed["total"] = store.total_queued()
            observed["max"] = store.max_queue_depth()

        # The unit parks at router 1 at ~1.05s; probe while it waits.
        session.sim.call_at(1.5, probe)
        metrics = session.run()
        assert observed["depth"] >= 1
        assert observed["total"] >= 1
        assert observed["max"] >= 1
        # End of run: every queue drained (timeout or finish), depth zero.
        assert store.total_queued() == 0
        assert metrics.max_queue_depth >= 1
        assert metrics.mean_queue_depth > 0.0

    def test_lazy_timeout_refunds_and_clears_depth(self):
        session = make_session(
            [record(0, 1.0, 0, 3, 40.0)], end_time=3.5
        )
        session.scheme.runtime_kwargs = lambda: {"queue_timeout": 1.0}
        network = session.network
        network.channel(2, 3).lock(2, 45.0)
        session.run()
        transport = session.transport
        assert transport.units_timed_out >= 1
        assert network.state_store.total_queued() == 0
        # Hops 0->1 and 1->2 were locked, then refunded on timeout.
        assert network.channel(0, 1).balance(0) == pytest.approx(50.0)
        assert network.channel(1, 2).balance(1) == pytest.approx(50.0)

    def test_timed_out_corpse_does_not_block_service(self):
        """A timed-out unit stays in the deque as a corpse; a later credit
        must skip it and service the live unit parked behind it."""
        session = make_session(
            [
                record(0, 1.0, 0, 3, 45.0),  # parks at router 1, times out
                record(1, 1.2, 0, 3, 4.0),  # parks behind it, stays live
                record(2, 1.1, 3, 0, 40.0),  # reverse credit before timeout
                record(3, 1.6, 3, 0, 10.0),  # reverse credit after timeout
            ],
            end_time=3.4,
        )
        transport_timeout = 1.0
        session.network.channel(1, 2).lock(1, 50.0)  # drain 1->2 fully
        # Rebuild the transport parameters via a scheme-level override:
        # LaunchOnLine declares no runtime_kwargs, so patch the default by
        # constructing the transport eagerly through the scheme hook.
        session.scheme.runtime_kwargs = lambda: {"queue_timeout": transport_timeout}
        metrics = session.run()
        assert session.transport.units_timed_out >= 1
        assert session.payments[1].is_complete
        assert session.network.state_store.total_queued() == 0
        session.network.check_invariants()

    def test_finish_drain_does_not_relaunch_queued_units(self):
        """A refund cascading out of the end-of-run drain must not service
        other queues: the engine never fires the relaunched unit's advance
        events, so its HTLCs would stay locked forever."""
        from repro.network.network import PaymentNetwork

        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        network.add_channel(1, 2, 100.0)
        network.add_channel(2, 0, 100.0)

        paths = {0: (2, 0, 1), 1: (1, 2, 0)}

        class LaunchFixedPaths(RoutingScheme):
            name = "test-fixed-paths"
            atomic = False
            transport = "hop"

            def attempt(self, payment, runtime):
                runtime.send_unit_hop_by_hop(
                    payment, paths[payment.payment_id], payment.remaining
                )

        network.channel(0, 1).lock(0, 50.0)  # direction (0,1) is dry
        session = SimulationSession(
            network,
            [
                record(0, 1.0, 2, 1, 50.0),  # locks 2->0, parks at (0,1)
                record(1, 1.1, 1, 0, 10.0),  # locks 1->2, parks at (2,0)
            ],
            LaunchFixedPaths(),
            RuntimeConfig(end_time=2.0, check_invariants=True),
        )
        session.run()
        # The drain aborts both units; P1's refund of 2->0 must not have
        # relaunched P2 out of the (2,0) queue. Only the held HTLC remains.
        assert session.network.total_inflight() == pytest.approx(50.0)
        assert session.payments[1].inflight == pytest.approx(0.0)
        assert session.network.state_store.total_queued() == 0

    def test_requeue_generation_guards_stale_timeouts(self):
        """A serviced-then-requeued unit must not be killed by the stale
        timeout scheduled for its first stint in the queue."""
        from repro.core.queueing import HopUnit
        from repro.network.htlc import HashLock

        session = make_session([], end_time=1.0)
        transport = HopByHopTransport(session)
        unit = HopUnit.__new__(HopUnit)
        unit.queued_at = 5.0
        unit.queue_seq = 2  # re-queued since the seq=1 timeout was armed
        unit.done = False
        transport._timeout_unit(unit, 1)  # stale: must be a no-op
        assert unit.queued_at == 5.0
        assert transport.units_timed_out == 0

    def test_mean_queue_delay_reported(self):
        session = make_session(
            [
                record(0, 1.0, 0, 3, 30.0),  # queues at router 1 (5 available)
                record(1, 2.0, 3, 0, 40.0),  # reverse flow replenishes 1->2
            ],
        )
        session.network.channel(1, 2).lock(1, 45.0)
        metrics = session.run()
        assert session.transport.units_queued >= 1
        assert session.transport.mean_queue_delay > 0.0
        assert metrics.completed == 2

    def test_invalid_transport_parameters_rejected(self):
        session = make_session([record(0, 1.0, 0, 3, 1.0)])
        with pytest.raises(ValueError):
            HopByHopTransport(session, hop_delay=-1.0)
        with pytest.raises(ValueError):
            HopByHopTransport(session, queue_timeout=0.0)
        with pytest.raises(ValueError):
            HopByHopTransport(session, queue_policy="bogus")
        with pytest.raises(ValueError):
            HopByHopTransport(session, mark_threshold=-0.5)

    def test_scheme_guard_rejects_session_without_matching_transport(self):
        """The schemes' type guard sees through the session facade: a
        session with no (or the wrong) transport is rejected up front."""
        network = line_topology(3).build_network(default_capacity=10.0)
        plain = SimulationSession(network, [], make_scheme("shortest-path"))
        with pytest.raises(TypeError):
            make_scheme("spider-queueing").attempt(object(), plain)
        with pytest.raises(TypeError):
            make_scheme("celer").attempt(object(), plain)

    def test_unknown_transport_kind_rejected(self):
        from repro.engine.transport import make_transport

        session = make_session([])
        with pytest.raises(ConfigError):
            make_transport("warp", session)


class TestBackpressureNative:
    def test_celer_completes_on_tick_engine(self):
        network = line_topology(4).build_network(default_capacity=100.0)
        records = [record(0, 1.0, 0, 3, 10.0), record(1, 2.0, 3, 0, 5.0)]
        session = SimulationSession(
            network,
            records,
            make_scheme("celer"),
            RuntimeConfig(end_time=30.0, check_invariants=True),
        )
        metrics = session.run()
        assert isinstance(session.transport, BackpressureTransport)
        assert metrics.completed == 2
        assert network.total_inflight() == pytest.approx(0.0)

    def test_backlog_drains_by_end_of_run(self):
        network = line_topology(4).build_network(default_capacity=60.0)
        records = [record(i, 0.5 + 0.1 * i, 0, 3, 8.0) for i in range(10)]
        session = SimulationSession(
            network,
            records,
            make_scheme("celer"),
            RuntimeConfig(end_time=20.0, check_invariants=True),
        )
        session.run()
        transport = session.transport
        assert transport.units_injected >= 10
        assert all(
            not q for dests in transport._queues.values() for q in dests.values()
        )
        assert network.total_inflight() == pytest.approx(0.0)

    def test_invalid_parameters_rejected(self):
        network = line_topology(3).build_network(default_capacity=10.0)
        session = SimulationSession(network, [], make_scheme("celer"))
        for kwargs in (
            {"service_interval": 0.0},
            {"beta": -1.0},
            {"max_hops": 0},
            {"stuck_after": 0.0},
        ):
            with pytest.raises(ValueError):
                BackpressureTransport(session, **kwargs)
