"""Macro-tick dispatch parity tests (vectorised cohorts ⇔ scalar loop).

``SimulationSession.vectorized_dispatch`` selects between the macro-tick
:class:`~repro.engine.dispatch.DispatchPlan` (grouped probes, staged
scatter-add locks, cohort reschedules) and the retired per-payment scalar
loop, which stays behind the flag as the parity baseline.  Everything here
pins the two byte-for-byte on serialised metrics — including runs that
force the interesting regimes: mid-cohort conflict groups (shared-channel
pairs replayed against the plan's residual-capacity overlay), fee-bearing
and frozen topologies (staged with per-hop fee schedules), and resolution
flushes landing on the same tick as the poll that relocks the released
funds.

The bulk-scheduling substrate gets its own order pins:
:meth:`TickEngine.schedule_many` must pop identically to repeated scalar
pushes, and :meth:`PendingHeap.add_many` must drain identically to
repeated :meth:`add` calls.
"""

from __future__ import annotations

import pytest

from repro.core.payments import Payment
from repro.core.scheduling import PendingHeap, get_policy
from repro.engine.events import TickEngine
from repro.engine.session import SimulationSession
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.report import metrics_to_json
from repro.simulator.engine import SimulationError

PINNED_SCHEMES = [
    "spider-waterfilling",
    "spider-window",
    "spider-window-imbalance",
    "spider-queueing",
    "spider-queueing-qgrad",
    "celer",
    "lnd",
    "shortest-path",
]

#: Schemes whose decision rule the DispatchPlan replays batched (every
#: declared ``cohort_rule``); the fee/shared-channel parity tests sweep
#: exactly these.
BATCHED_SCHEMES = [
    "spider-waterfilling",
    "shortest-path",
    "lnd",
    "spider-window",
    "spider-window-imbalance",
]


def _config(**overrides):
    base = dict(
        scheme="spider-waterfilling",
        topology="line-5",
        capacity=200.0,
        num_transactions=250,
        arrival_rate=50.0,
        seed=17,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _run_json(config, vectorized, mutate=None):
    """Serialised metrics of one session run under the given dispatch mode.

    ``mutate(network)`` runs after the network is built and before the
    session starts — both modes replay the identical mutation because the
    inputs are rebuilt from the config seed each time.
    """
    assert SimulationSession.vectorized_dispatch  # default stays vectorised
    SimulationSession.vectorized_dispatch = vectorized
    try:
        if mutate is None:
            metrics = run_experiment(config, engine="session")
        else:
            network, records, scheme = config.build_simulation_inputs()
            mutate(network)
            session = SimulationSession(
                network, records, scheme, config.build_runtime_config()
            )
            metrics = session.run()
    finally:
        SimulationSession.vectorized_dispatch = True
    return metrics_to_json(metrics).encode()


@pytest.mark.parametrize("scheme", PINNED_SCHEMES)
@pytest.mark.parametrize("topology", ["line-5", "ripple-small"])
def test_dispatch_modes_byte_identical(scheme, topology):
    """Vectorised and scalar dispatch serialise to identical bytes.

    ``line-5`` forces every pair through shared channels (constant
    mid-cohort conflicts, heavy fallback traffic); ``ripple-small`` gives
    channel-disjoint path sets real batched coverage.
    """
    config = _config(scheme=scheme, topology=topology, num_transactions=150)
    fast = _run_json(config, vectorized=True)
    slow = _run_json(config, vectorized=False)
    assert fast == slow


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES + ["celer"])
def test_dispatch_parity_with_random_fees_and_frozen_channels(scheme):
    """Fee-bearing hops and frozen channels batch byte-identically.

    A proportional fee schedule plus a seeded random set of frozen
    channels pushes every regime the fee-aware staging must replay — the
    reverse fee recurrence, frozen-hop availability masking and the
    predicted-lock-failure fallback — and the two modes must still agree
    byte for byte.  (``celer`` declares no cohort rule and pins the
    sequential driver arm.)
    """
    import random

    def freeze_some(network):
        rng = random.Random(99)
        channels = list(network.channels())
        for channel in rng.sample(channels, max(1, len(channels) // 8)):
            channel.freeze()

    config = _config(
        scheme=scheme,
        topology="ripple-small",
        num_transactions=150,
        base_fee=0.01,
        fee_rate=0.001,
        max_fee_fraction=0.25,
    )
    fast = _run_json(config, vectorized=True, mutate=freeze_some)
    slow = _run_json(config, vectorized=False, mutate=freeze_some)
    assert fast == slow


@pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
def test_dispatch_parity_fee_bearing_shared_channels(scheme):
    """Shared-channel path sets with fees batch byte-identically.

    ``line-5`` forces every pair through the same channels, so each
    cohort is one big conflict group: every payment's replay must read
    the residual capacities left by the payments staged before it, with
    per-hop fee-inclusive amounts.  This is the regime PR 6 sent
    wholesale to the scalar fallback.
    """
    config = _config(
        scheme=scheme,
        topology="line-5",
        num_transactions=150,
        base_fee=0.01,
        fee_rate=0.001,
        max_fee_fraction=0.25,
    )
    fast = _run_json(config, vectorized=True)
    slow = _run_json(config, vectorized=False)
    assert fast == slow


def test_mid_cohort_conflicts_batch_through_residual_replay():
    """Shared-channel cohorts batch instead of falling back.

    On ``line-5`` every payment's paths share channels — under PR 6 that
    meant flush-then-scalar for the whole cohort; the residual replay now
    stages those conflict groups, so batched units flow and the fallback
    counter stays at zero (waterfilling decisions clamp to the residual
    bottleneck, so no lock failure can be predicted).  ``ripple-small``
    pins the disjoint fast path alongside.  The parity tests above would
    pass vacuously if the batched arm were dead — this pins the counters,
    and the session's ``dispatch_stats`` accessor with them.
    """
    for topology in ["line-5", "ripple-small"]:
        config = _config(topology=topology, num_transactions=150)
        network, records, scheme = config.build_simulation_inputs()
        session = SimulationSession(
            network, records, scheme, config.build_runtime_config()
        )
        session.run()
        plan = session._dispatch
        assert plan is not None and plan.cohorts > 0
        assert plan.batched_units > 0
        assert plan.scalar_fallbacks == 0
        stats = session.dispatch_stats()
        assert stats == {
            "cohorts": plan.cohorts,
            "cohort_payments": plan.cohort_payments,
            "batched_units": plan.batched_units,
            "scalar_fallbacks": plan.scalar_fallbacks,
        }
        assert stats["cohort_payments"] >= stats["cohorts"]


def test_unbatchable_pair_takes_scalar_fallback():
    """A payment whose pair profile is not batchable drops to the
    scheme's scalar ``attempt`` (flush-first), keeping the fallback arm
    of the cohort driver honest."""
    from repro.engine.dispatch import _PairProfile

    config = _config(topology="ripple-small", num_transactions=10)
    network, records, scheme = config.build_simulation_inputs()
    session = SimulationSession(
        network, records, scheme, config.build_runtime_config()
    )
    session.prepare()
    plan = session._dispatch
    assert plan is not None
    payment = session._new_payment(records[0])
    # Forge the degenerate profile (no probeable path set) for the pair.
    plan._profiles[(payment.source, payment.dest)] = _PairProfile()
    plan.attempt_cohort((payment,))
    assert plan.scalar_fallbacks == 1
    assert payment.units_sent > 0  # the scalar attempt really ran


def test_same_tick_settle_then_lock_ordering():
    """Resolution flushes and polls landing on one tick stay ordered.

    With ``confirmation_delay == poll_interval`` every unit's maturity
    tick coincides with a poll tick, so each poll's cohort relocks value
    released by the same tick's settlement flush.  Both dispatch modes
    must sequence the two identically.
    """
    config = _config(
        topology="ripple-small",
        num_transactions=200,
        confirmation_delay=0.25,
        poll_interval=0.25,
    )
    fast = _run_json(config, vectorized=True)
    slow = _run_json(config, vectorized=False)
    assert fast == slow


def test_schedule_many_matches_repeated_scalar_pushes():
    """Bulk trace scheduling pops in exactly the scalar push order."""
    fired_bulk = []
    fired_scalar = []

    def make(engine, out):
        def cb(tag):
            out.append((engine.now_tick, tag))

        return cb

    ticks = [5, 1, 5, 3, 1, 9, 3, 3, 5]
    tags = list(range(len(ticks)))

    scalar_engine = TickEngine()
    cb = make(scalar_engine, fired_scalar)
    for tick, tag in zip(ticks, tags):
        scalar_engine.schedule_at_tick(tick, cb, (tag,))
    scalar_engine.run()

    bulk_engine = TickEngine()
    cb = make(bulk_engine, fired_bulk)
    bulk_engine.schedule_many(ticks, cb, [(tag,) for tag in tags])
    bulk_engine.run()

    assert fired_bulk == fired_scalar
    # Mixed per-event callbacks take the same path.
    mixed_engine = TickEngine()
    seen = []
    mixed_engine.schedule_many(
        [2, 2, 1],
        [lambda: seen.append("a"), lambda: seen.append("b"), lambda: seen.append("c")],
        [(), (), ()],
    )
    mixed_engine.run()
    assert seen == ["c", "a", "b"]


def test_pending_heap_add_many_matches_repeated_add():
    """Bulk registration drains in exactly the repeated-add order."""
    payments = [
        Payment(
            payment_id=pid,
            source=0,
            dest=1,
            amount=amount,
            arrival_time=0.1 * pid,
        )
        for pid, amount in enumerate([5.0, 1.0, 9.0, 1.0, 3.0, 7.0, 2.0])
    ]
    for policy_name in ["srpt", "fifo", "smallest-total"]:
        one_by_one = PendingHeap(get_policy(policy_name))
        for payment in payments:
            one_by_one.add(payment)
        bulk = PendingHeap(get_policy(policy_name))
        bulk.add_many(payments)
        assert bulk.ordered() == one_by_one.ordered()
        # Equivalence must survive interleaving with a standing heap.
        late = Payment(payment_id=99, source=0, dest=1, amount=0.5, arrival_time=9.9)
        one_by_one.add(late)
        bulk.add_many([late])
        assert bulk.ordered() == one_by_one.ordered()


def test_finish_asserts_dispatch_buffers_drained():
    """A cohort that strands staged sends fails the run loudly.

    ``finish``-time draining is the guard against truncated runs silently
    dropping in-flight units: staged-but-unflushed sends are landed (so
    the store stays conserved) and the session raises.
    """
    config = _config(topology="ripple-small", num_transactions=40)
    network, records, scheme = config.build_simulation_inputs()
    session = SimulationSession(network, records, scheme, config.build_runtime_config())
    session.prepare()
    plan = session._dispatch
    assert plan is not None

    # Forge a staged send the cohort "forgot" to flush.
    from repro.network.htlc import HashLock

    paths = scheme.path_cache.paths(records[0].source, records[0].dest)
    assert paths
    cpath = network.path_table.compile(paths[0])
    payment = session._new_payment(records[0])
    plan._staged_payments.append(payment)
    plan._staged_cpaths.append(cpath)
    plan._staged_amounts.append(1.0)
    plan._staged_fees.append(0.0)
    plan._staged_hop_amounts.append(None)
    plan._staged_locks.append(HashLock.generate(payment.payment_id, 0))
    with pytest.raises(SimulationError) as excinfo:
        plan.assert_drained()
    # The failure is attributable: it names each non-empty staging buffer
    # with its count and the payment ids of the stranded sends.
    message = str(excinfo.value)
    assert "staged_payments=1" in message
    assert "staged_cpaths=1" in message
    assert "staged_amounts=1" in message
    assert f"payment ids [{payment.payment_id}]" in message
    assert not plan._staged_payments  # funds were landed, buffers cleared


def test_truncated_horizon_still_finishes_clean():
    """An ``end_time`` cutting the trace mid-flight finishes without
    tripping the drain assertions, in both dispatch modes, identically."""
    config = _config(topology="ripple-small", num_transactions=250, end_time=1.5)
    fast = _run_json(config, vectorized=True)
    slow = _run_json(config, vectorized=False)
    assert fast == slow


def test_compiled_kernel_flag_is_safely_gated(monkeypatch):
    """``REPRO_COMPILED_DISPATCH`` only activates when numba imports.

    The container intentionally ships without numba: reloading the module
    with the flag set must leave the pure-Python kernel in charge rather
    than raising.  When numba *is* importable the jitted kernel loads and
    the parity suite covers its output.
    """
    import importlib

    import repro.engine.dispatch as dispatch_mod

    monkeypatch.setenv("REPRO_COMPILED_DISPATCH", "1")
    try:
        reloaded = importlib.reload(dispatch_mod)
        try:
            import numba  # noqa: F401

            assert reloaded.compiled_kernel_enabled()
        except ImportError:
            assert not reloaded.compiled_kernel_enabled()
    finally:
        monkeypatch.delenv("REPRO_COMPILED_DISPATCH")
        importlib.reload(dispatch_mod)
