"""PathService: provider parity, persistence, and discovery determinism.

The CSR array-frontier BFS must reproduce the scalar per-pair loops *byte
for byte* — path discovery feeds every routing decision, so a single
tie-break divergence would silently change every downstream metric.  These
tests pin:

* :class:`CsrDisjointProvider` against :class:`ScalarDisjointProvider` on
  random topologies (disconnected pairs, ``src == dst``, ``k`` larger than
  the graph supports);
* the landmark tree provider across vectorised/scalar modes and against
  the legacy two-BFS-per-pair assembly;
* persistent-cache round trips (disk artifacts serve the exact path sets)
  and cold-vs-warm byte-identical metrics JSON;
* byte-identical metrics with ``PathService.vectorized_discovery`` on and
  off for the schemes that consume discovery.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.engine.pathservice import (
    CsrDisjointProvider,
    CsrGraph,
    PathService,
    PersistentCache,
    ScalarDisjointProvider,
    contract_loops,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import SweepExecutor
from repro.experiments.runner import run_experiment
from repro.fluid.paths import bfs_shortest_path, build_path_set
from repro.metrics.report import metrics_to_json
from repro.simulator.rng import make_rng
from repro.topology import isp_topology, ripple_topology


@pytest.fixture(autouse=True)
def _fresh_shared_cache():
    """Each test sees a cold process-wide pair store."""
    PersistentCache.clear_shared()
    yield
    PersistentCache.clear_shared()


def random_adjacency(seed: int, n: int, p: float) -> dict:
    """A seeded undirected G(n, p) adjacency with sorted rows."""
    rng = make_rng(seed)
    adjacency = {i: set() for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.uniform() < p:
                adjacency[i].add(j)
                adjacency[j].add(i)
    return {i: sorted(v) for i, v in adjacency.items()}


class TestCsrParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_k_disjoint_matches_scalar_on_random_graphs(self, seed):
        """Exhaustive all-pairs parity, including disconnected pairs,
        isolated nodes, src == dst, and k beyond the available paths."""
        n = 6 + 2 * seed
        adjacency = random_adjacency(seed, n, p=0.08 + 0.03 * (seed % 5))
        graph = CsrGraph.from_adjacency(adjacency)
        for k in (1, 2, 4, 9):
            csr = CsrDisjointProvider(graph, k)
            scalar = ScalarDisjointProvider(adjacency, k)
            for source in range(n):
                for dest in range(n):
                    assert csr.paths(source, dest) == scalar.paths(
                        source, dest
                    ), (seed, k, source, dest)

    def test_first_path_matches_bfs_shortest_path(self):
        """The k=1 CSR path is exactly the scalar BFS tie-break."""
        adjacency = random_adjacency(3, 24, p=0.15)
        graph = CsrGraph.from_adjacency(adjacency)
        csr = CsrDisjointProvider(graph, 1)
        for source in range(24):
            for dest in range(24):
                if source == dest:
                    continue
                expected = bfs_shortest_path(adjacency, source, dest)
                got = csr.paths(source, dest)
                assert got == ([expected] if expected else [])

    def test_unknown_endpoints_and_self_pairs(self):
        adjacency = {0: [1], 1: [0]}
        csr = CsrDisjointProvider(CsrGraph.from_adjacency(adjacency), 3)
        scalar = ScalarDisjointProvider(adjacency, 3)
        for pair in [(0, 7), (7, 0), (0, 0), (7, 7)]:
            assert csr.paths(*pair) == scalar.paths(*pair)

    def test_duplicate_neighbour_entries_stay_edge_disjoint(self):
        """Parallel entries in the input adjacency must not leave the
        k-disjoint edge mask covering only one CSR slot (regression)."""
        adjacency = {0: [1, 1], 1: [0, 0, 2, 3], 2: [1, 3], 3: [1, 2]}
        csr = CsrDisjointProvider(CsrGraph.from_adjacency(adjacency), 3)
        scalar = ScalarDisjointProvider(adjacency, 3)
        for source in adjacency:
            for dest in adjacency:
                assert csr.paths(source, dest) == scalar.paths(source, dest)

    def test_paths_many_order(self):
        adjacency = random_adjacency(5, 12, p=0.3)
        graph = CsrGraph.from_adjacency(adjacency)
        csr = CsrDisjointProvider(graph, 4)
        pairs = [(0, 5), (5, 0), (1, 1), (2, 9)]
        assert csr.paths_many(pairs) == [csr.paths(*p) for p in pairs]

    def test_sorted_csr_rows(self):
        """The tie-break ordering is explicit in the layout: every CSR row
        is sorted ascending."""
        adjacency = random_adjacency(7, 30, p=0.2)
        graph = CsrGraph.from_adjacency(adjacency)
        for i in range(30):
            row = graph.indices[graph.indptr[i] : graph.indptr[i + 1]]
            assert list(row) == sorted(row)

    def test_service_modes_byte_identical_on_ripple(self):
        """Service-level parity on a real topology, both modes."""
        network = ripple_topology("small", seed=0).build_network(
            default_capacity=100.0
        )
        rng = make_rng(11)
        nodes = sorted(network.nodes())
        pairs = [
            (nodes[int(a)], nodes[int(b)])
            for a, b in (
                rng.choice(len(nodes), size=2, replace=False) for _ in range(25)
            )
        ]
        vector = PathService.from_network(network).paths_many(pairs, k=4)
        PersistentCache.clear_shared()
        PathService.vectorized_discovery = False
        try:
            scalar = PathService.from_network(network).paths_many(pairs, k=4)
        finally:
            PathService.vectorized_discovery = True
        assert vector == scalar


class TestLandmarkProvider:
    def _legacy_landmark_paths(self, adjacency, landmarks, source, dest):
        """The pre-service construction: two BFS per (pair, landmark)."""
        paths, seen = [], set()
        for landmark in landmarks:
            first = bfs_shortest_path(adjacency, source, landmark)
            second = bfs_shortest_path(adjacency, landmark, dest)
            if first is None or second is None:
                continue
            merged = contract_loops(tuple(first) + tuple(second[1:]))
            if len(merged) < 2 or merged[0] != source or merged[-1] != dest:
                continue
            if merged not in seen:
                seen.add(merged)
                paths.append(merged)
        return paths

    @pytest.mark.parametrize("seed", range(4))
    def test_tree_assembly_matches_per_pair_bfs(self, seed):
        """Tree-based leg assembly is byte-identical to the legacy two
        fresh BFS runs per (pair, landmark)."""
        adjacency = random_adjacency(seed + 20, 18, p=0.18)
        service = PathService.from_adjacency(adjacency)
        provider = service.landmark_provider(3)
        for source in range(18):
            for dest in range(18):
                assert provider.paths(source, dest) == (
                    self._legacy_landmark_paths(
                        adjacency, provider.landmarks, source, dest
                    )
                ), (seed, source, dest)

    def test_modes_agree(self):
        adjacency = random_adjacency(42, 20, p=0.2)
        vector = PathService.from_adjacency(adjacency).landmark_provider(3)
        PathService.vectorized_discovery = False
        try:
            scalar = PathService.from_adjacency(adjacency).landmark_provider(3)
        finally:
            PathService.vectorized_discovery = True
        assert vector.landmarks == scalar.landmarks
        for source in range(20):
            for dest in range(20):
                assert vector.paths(source, dest) == scalar.paths(source, dest)

    def test_landmarks_are_highest_degree(self):
        network = isp_topology().build_network(default_capacity=100.0)
        provider = network.path_service.landmark_provider(3)
        # ISP core nodes (0-7) have the highest degree.
        assert all(landmark < 8 for landmark in provider.landmarks)


class TestPairPathView:
    def test_view_surface(self):
        network = isp_topology().build_network(default_capacity=100.0)
        view = network.path_service.view(k=3)
        assert view.k == 3
        paths = view.paths(8, 20)
        assert paths and view.shortest(8, 20) == paths[0]
        assert view.shortest(8, 8) == (8,)  # scalar-parity degenerate pair
        assert view.paths_many([(8, 20)]) == [paths]

    def test_view_validation(self):
        network = isp_topology().build_network(default_capacity=100.0)
        with pytest.raises(ValueError):
            network.path_service.view(k=0)
        with pytest.raises(ValueError):
            network.path_service.view(k=2, method="bogus")

    def test_yen_method_matches_scalar_reference(self):
        network = isp_topology().build_network(default_capacity=100.0)
        from repro.fluid.paths import k_shortest_paths

        view = network.path_service.view(k=3, method="yen")
        adjacency = network.path_service.sorted_adjacency()
        assert view.paths(8, 20) == k_shortest_paths(adjacency, 8, 20, 3)

    def test_shared_across_schemes_per_network(self):
        """Two views with the same budget serve the same pair store."""
        network = isp_topology().build_network(default_capacity=100.0)
        service = network.path_service
        first = service.view(k=4).paths(8, 20)
        assert service.view(k=4).paths(8, 20) is first  # memoised list


class TestBuildPathSetThroughService:
    def test_matches_direct_providers(self):
        adjacency = random_adjacency(9, 16, p=0.3)
        pairs = [(0, 5), (3, 12)]
        path_set = build_path_set(adjacency, pairs, k=4)
        scalar = ScalarDisjointProvider(adjacency, 4)
        assert path_set == {pair: scalar.paths(*pair) for pair in pairs}

    def test_no_path_error(self):
        from repro.errors import NoPathError

        with pytest.raises(NoPathError):
            build_path_set({0: [1], 1: [0], 2: []}, [(0, 2)], k=2)


class TestPersistentCache:
    def test_disk_round_trip_serves_identical_paths(self, tmp_path):
        network = ripple_topology("small", seed=0).build_network(
            default_capacity=100.0
        )
        rng = make_rng(5)
        nodes = sorted(network.nodes())
        pairs = sorted(
            (nodes[int(a)], nodes[int(b)])
            for a, b in (
                rng.choice(len(nodes), size=2, replace=False) for _ in range(20)
            )
        )
        service = PathService.from_network(network, cache_dir=str(tmp_path))
        service.prepare(pairs, k=4)
        expected = service.paths_many(pairs, k=4)
        artifacts = [f for f in os.listdir(tmp_path) if f.startswith("paths-")]
        assert len(artifacts) == 1

        # A fresh process-level store must serve the artifact without ever
        # touching the provider.
        PersistentCache.clear_shared()

        class _Boom:
            def paths(self, *args):
                raise AssertionError("artifact miss: provider was invoked")

            def paths_many(self, *args):
                raise AssertionError("artifact miss: provider was invoked")

        warm = PathService.from_network(network, cache_dir=str(tmp_path))
        warm.provider(4).provider = _Boom()
        assert warm.paths_many(pairs, k=4) == expected

    def test_artifact_bytes_deterministic(self, tmp_path):
        network = isp_topology().build_network(default_capacity=100.0)
        pairs = [(8, 20), (9, 21), (10, 31)]

        def artifact_bytes(subdir):
            PersistentCache.clear_shared()
            service = PathService.from_network(
                network, cache_dir=str(tmp_path / subdir)
            )
            service.prepare(pairs, k=4)
            (name,) = os.listdir(tmp_path / subdir)
            return (tmp_path / subdir / name).read_bytes()

        assert artifact_bytes("a") == artifact_bytes("b")

    def test_flush_covers_pairs_discovered_before_attach(self, tmp_path):
        """Pairs computed before a cache dir is attached (possibly by an
        earlier service instance) must still reach the artifact
        (regression: per-instance dirty flag vs. process-wide store)."""
        network = isp_topology().build_network(default_capacity=100.0)
        PathService.from_network(network).prepare([(8, 20)], k=4)  # no dir
        late = PathService.from_network(network)
        late.persist_to(str(tmp_path))
        late.prepare([(8, 20)], k=4)  # nothing missing — must still write
        assert any(f.startswith("paths-") for f in os.listdir(tmp_path))
        PersistentCache.clear_shared()
        warm = PathService.from_network(network, cache_dir=str(tmp_path))

        class _Boom:
            def paths(self, *args):
                raise AssertionError("artifact miss")

            def paths_many(self, *args):
                raise AssertionError("artifact miss")

        warm.provider(4).provider = _Boom()
        assert warm.paths(8, 20, k=4)

    def test_concurrent_writers_leave_a_valid_artifact(self, tmp_path):
        """Two processes precomputing the same topology concurrently must
        not corrupt or double-write the JSON artifact.

        Each flush writes to a pid-suffixed temp file and atomically
        ``os.replace``s it over the artifact, so simultaneous writers can
        only ever race whole consistent files into place.  Both workers
        compute the same pair set here, so whichever lands last the
        artifact is complete; the test asserts a single valid JSON file,
        no temp-file litter, and a warm service that serves every pair
        without touching the provider.
        """
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        network = ripple_topology("small", seed=0).build_network(
            default_capacity=100.0
        )
        rng = make_rng(9)
        nodes = sorted(network.nodes())
        pairs = sorted(
            (nodes[int(a)], nodes[int(b)])
            for a, b in (
                rng.choice(len(nodes), size=2, replace=False) for _ in range(25)
            )
        )
        expected = PathService.from_network(network).paths_many(pairs, k=4)

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)

        def worker(conn):
            try:
                # A cold per-process store: both workers genuinely compute
                # and both genuinely write.
                PersistentCache.clear_shared()
                service = PathService.from_network(
                    network, cache_dir=str(tmp_path)
                )
                barrier.wait(timeout=60.0)  # maximise flush overlap
                service.prepare(pairs, k=4)
                conn.send("ok")
            except BaseException as exc:  # pragma: no cover - failure path
                conn.send(f"{type(exc).__name__}: {exc}")
            finally:
                conn.close()

        connections = []
        procs = []
        for _ in range(2):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=worker, args=(child_conn,))
            proc.start()
            connections.append(parent_conn)
            procs.append(proc)
        outcomes = [conn.recv() for conn in connections]
        for proc in procs:
            proc.join(timeout=60.0)
        assert outcomes == ["ok", "ok"]

        names = os.listdir(tmp_path)
        assert [n for n in names if ".tmp." in n] == []  # no litter
        artifacts = [n for n in names if n.startswith("paths-")]
        assert len(artifacts) == 1  # one artifact, not one per writer
        with open(tmp_path / artifacts[0], "r", encoding="utf-8") as handle:
            json.load(handle)  # whole consistent JSON, not interleaved

        PersistentCache.clear_shared()

        class _Boom:
            def paths(self, *args):
                raise AssertionError("artifact miss: provider was invoked")

            def paths_many(self, *args):
                raise AssertionError("artifact miss: provider was invoked")

        warm = PathService.from_network(network, cache_dir=str(tmp_path))
        warm.provider(4).provider = _Boom()
        assert warm.paths_many(pairs, k=4) == expected
        PersistentCache.clear_shared()

    def test_unreadable_artifact_recomputed(self, tmp_path):
        network = isp_topology().build_network(default_capacity=100.0)
        service = PathService.from_network(network, cache_dir=str(tmp_path))
        service.prepare([(8, 20)], k=4)
        (name,) = os.listdir(tmp_path)
        (tmp_path / name).write_text("not json")
        PersistentCache.clear_shared()
        fresh = PathService.from_network(network, cache_dir=str(tmp_path))
        assert fresh.paths(8, 20, k=4)  # silently recomputed

    def test_cold_vs_warm_metrics_byte_identical(self, tmp_path):
        """A run that loads every pair set from disk reproduces the cold
        run's metrics JSON byte for byte."""
        config = ExperimentConfig(
            scheme="spider-waterfilling",
            topology="ripple-tiny",
            capacity=200.0,
            num_transactions=120,
            arrival_rate=50.0,
            seed=13,
        )
        cold = metrics_to_json(
            run_experiment(config, path_cache_dir=str(tmp_path))
        )
        assert any(f.startswith("paths-") for f in os.listdir(tmp_path))
        PersistentCache.clear_shared()
        warm = metrics_to_json(
            run_experiment(config, path_cache_dir=str(tmp_path))
        )
        assert cold.encode() == warm.encode()
        # And both equal the uncached run.
        PersistentCache.clear_shared()
        assert metrics_to_json(run_experiment(config)).encode() == cold.encode()


class TestSweepPrecompute:
    def test_executor_precomputes_and_reuses_artifacts(self, tmp_path):
        base = ExperimentConfig(
            scheme="spider-waterfilling",
            topology="ripple-tiny",
            capacity=200.0,
            num_transactions=80,
            arrival_rate=50.0,
            seed=7,
        )
        executor = SweepExecutor(
            base, processes=1, cache_dir=str(tmp_path), reseed_cells=False
        )
        assert executor.path_cache_dir == os.path.join(str(tmp_path), "paths")
        results = executor.capacity_sweep(
            [150.0, 250.0], ["spider-waterfilling"]
        )
        assert len(results) == 2
        paths_dir = tmp_path / "paths"
        assert any(f.startswith("paths-") for f in os.listdir(paths_dir))

        # A fresh executor over the same grid: cells come from the JSON
        # cache, and a widened grid's new cell loads paths from disk.
        PersistentCache.clear_shared()
        second = SweepExecutor(
            base, processes=1, cache_dir=str(tmp_path), reseed_cells=False
        )
        widened = second.capacity_sweep(
            [150.0, 250.0, 350.0], ["spider-waterfilling"]
        )
        assert second.cache_hits == 2 and second.cache_misses == 1
        for key, metrics in results.items():
            assert metrics_to_json(widened[key]) == metrics_to_json(metrics)


class TestDiscoveryModeDeterminism:
    @pytest.mark.parametrize(
        "scheme",
        ["spider-waterfilling", "spider-lp", "silentwhispers", "spider-queueing"],
    )
    def test_metrics_byte_identical_across_modes(self, scheme):
        """Vectorised and scalar discovery produce byte-identical runs."""
        config = ExperimentConfig(
            scheme=scheme,
            topology="ripple-tiny",
            capacity=200.0,
            num_transactions=100,
            arrival_rate=50.0,
            seed=29,
        )
        vector = metrics_to_json(run_experiment(config))
        PersistentCache.clear_shared()
        PathService.vectorized_discovery = False
        try:
            scalar = metrics_to_json(run_experiment(config))
        finally:
            PathService.vectorized_discovery = True
        assert vector.encode() == scalar.encode()


class TestRepeatRunSharing:
    def test_second_run_reuses_pair_sets(self):
        """Identical topology ⇒ the second run never re-discovers (the
        fix for per-run duplicated path work)."""
        config = ExperimentConfig(
            scheme="spider-waterfilling",
            topology="ripple-tiny",
            capacity=200.0,
            num_transactions=60,
            arrival_rate=50.0,
            seed=3,
        )
        first = metrics_to_json(run_experiment(config))
        store_sizes = {
            key: len(pairs) for key, pairs in PersistentCache._shared.items()
        }
        assert store_sizes  # discovery went through the shared store

        calls = {"n": 0}
        original = CsrDisjointProvider.paths

        def counting(self, source, dest):
            calls["n"] += 1
            return original(self, source, dest)

        CsrDisjointProvider.paths = counting
        try:
            second = metrics_to_json(run_experiment(config))
        finally:
            CsrDisjointProvider.paths = original
        assert calls["n"] == 0  # every pair served from the shared store
        assert first.encode() == second.encode()
