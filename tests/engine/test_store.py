"""Tests for the array-backed channel state store and its channel views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.store import ChannelStateStore
from repro.errors import InsufficientFundsError
from repro.network.channel import PaymentChannel
from repro.network.network import PaymentNetwork


class TestAllocation:
    def test_allocate_rows(self):
        store = ChannelStateStore()
        a = store.allocate(100.0, 60.0)
        b = store.allocate(50.0, 25.0)
        assert (a, b) == (0, 1)
        assert len(store) == 2
        assert store.balance_view.tolist() == [[60.0, 40.0], [25.0, 25.0]]
        assert store.capacity_view.tolist() == [100.0, 50.0]

    def test_growth_preserves_state(self):
        store = ChannelStateStore(reserve=2)
        for i in range(40):
            store.allocate(10.0 * (i + 1), 5.0 * (i + 1))
        assert len(store) == 40
        assert store.capacity_view[-1] == pytest.approx(400.0)
        assert store.balance_view[0].tolist() == [5.0, 5.0]


class TestChannelIsView:
    def test_standalone_channel_gets_private_store(self):
        channel = PaymentChannel("a", "b", 100.0)
        assert len(channel.store) == 1
        assert channel.balance("a") == pytest.approx(50.0)

    def test_network_channels_share_one_store(self):
        network = PaymentNetwork()
        c1 = network.add_channel(0, 1, 100.0)
        c2 = network.add_channel(1, 2, 60.0)
        assert c1.store is network.state_store
        assert c2.store is network.state_store
        assert len(network.state_store) == 2
        assert (c1.channel_id, c2.channel_id) == (0, 1)

    def test_mutations_visible_through_arrays_without_copy(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 100.0)
        store = network.state_store
        htlc = channel.lock(0, 30.0)
        assert store.balance_view[0, 0] == pytest.approx(20.0)
        assert store.inflight_view[0, 0] == pytest.approx(30.0)
        channel.settle(htlc)
        assert store.balance_view[0, 1] == pytest.approx(80.0)
        assert store.settled_flow_view[0, 0] == pytest.approx(30.0)
        assert store.num_settled[0] == 1

    def test_direct_array_write_visible_through_view(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 100.0)
        network.state_store.balance[channel.channel_id, 0] = 77.0
        assert channel.balance(0) == pytest.approx(77.0)

    def test_frozen_flag_lives_in_store(self):
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 100.0)
        channel.freeze()
        assert network.state_store.frozen_view[0]
        assert network.available(0, 1) == 0.0
        with pytest.raises(InsufficientFundsError):
            channel.lock(0, 1.0)
        channel.unfreeze()
        assert network.available(0, 1) == pytest.approx(50.0)

    def test_deposit_updates_capacity_row(self):
        channel = PaymentChannel("u", "v", 10.0)
        channel.deposit("u", 5.0)
        assert channel.capacity == pytest.approx(15.0)
        assert channel.total_deposited == pytest.approx(5.0)
        channel.check_invariant()


class TestVectorisedAggregates:
    def _network(self):
        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0, balance_u=70.0)
        network.add_channel(1, 2, 60.0)
        network.add_channel(2, 3, 40.0, balance_u=10.0)
        return network

    def test_totals_match_per_channel_sums(self):
        network = self._network()
        network.channel(0, 1).lock(0, 20.0)
        assert network.total_funds() == pytest.approx(200.0)
        assert network.total_inflight() == pytest.approx(20.0)
        per_channel = sum(
            c.inflight(c.node_a) + c.inflight(c.node_b) for c in network.channels()
        )
        assert network.total_inflight() == pytest.approx(per_channel)

    def test_imbalances_match_channel_views(self):
        network = self._network()
        store = network.state_store
        expected = [c.imbalance() for c in network.channels()]
        assert store.imbalances().tolist() == pytest.approx(expected)

    def test_conservation_check_finds_violation(self):
        network = self._network()
        assert network.state_store.check_conservation() is None
        network.state_store.balance[1, 0] += 5.0  # corrupt one row
        assert network.state_store.check_conservation() == 1

    def test_channel_id_lookup(self):
        network = self._network()
        cid, side = network.channel_id(1, 0)
        assert cid == 0 and side == 1
        assert network.state_store.balance[cid, side] == pytest.approx(30.0)

    def test_snapshot_is_a_copy(self):
        network = self._network()
        snap = network.state_store.snapshot_balances()
        network.channel(0, 1).lock(0, 10.0)
        assert snap[0, 0] == pytest.approx(70.0)  # unchanged
        assert network.state_store.balance_view[0, 0] == pytest.approx(60.0)
