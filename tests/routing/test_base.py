"""Tests for the scheme base class and path cache."""

from __future__ import annotations

import pytest

from repro.routing.base import PathCache
from repro.topology.generators import cycle_topology, line_topology
from repro.topology.isp import isp_topology


class TestPathCache:
    def test_paths_are_memoised(self):
        cache = PathCache(cycle_topology(6).adjacency(), k=2)
        first = cache.paths(0, 3)
        second = cache.paths(0, 3)
        assert first is second

    def test_k_limits_path_count(self):
        cache = PathCache(isp_topology().adjacency(), k=4)
        assert len(cache.paths(8, 20)) == 4
        cache1 = PathCache(isp_topology().adjacency(), k=1)
        assert len(cache1.paths(8, 20)) == 1

    def test_shortest_returns_first(self):
        cache = PathCache(cycle_topology(6).adjacency(), k=2)
        shortest = cache.shortest(0, 2)
        assert shortest == (0, 1, 2)

    def test_disconnected_pair_returns_empty(self):
        cache = PathCache({0: [1], 1: [0], 2: []}, k=2)
        assert cache.paths(0, 2) == []
        assert cache.shortest(0, 2) is None

    def test_from_network(self):
        network = line_topology(4).build_network(default_capacity=10.0)
        cache = PathCache.from_network(network, k=3)
        assert cache.paths(0, 3) == [(0, 1, 2, 3)]

    def test_yen_method(self):
        cache = PathCache(cycle_topology(6).adjacency(), k=2, method="yen")
        paths = cache.paths(0, 3)
        assert len(paths) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PathCache({}, k=0)
        with pytest.raises(ValueError):
            PathCache({}, k=1, method="bogus")
