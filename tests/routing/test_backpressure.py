"""Tests for Celer-style backpressure routing."""

from __future__ import annotations

import pytest

from repro.core.runtime import RuntimeConfig
from repro.experiments import ExperimentConfig, run_experiment
from repro.routing.backpressure import BackpressureRuntime, CelerScheme
from repro.topology.generators import cycle_topology, line_topology, star_topology
from repro.workload.generator import TransactionRecord


def run(records, network, scheme=None, end_time=30.0, config=None, **runtime_kwargs):
    scheme = scheme or CelerScheme()
    runtime = BackpressureRuntime(
        network,
        records,
        scheme,
        config or RuntimeConfig(end_time=end_time, check_invariants=True),
        **runtime_kwargs,
    )
    return runtime.run(), runtime


class TestDelivery:
    def test_delivers_on_a_line(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        metrics, runtime = run([TransactionRecord(0, 1.0, 0, 2, 10.0)], network)
        assert metrics.completed == 1
        assert metrics.delivered_value == pytest.approx(10.0)
        assert runtime.network.channel(0, 1).settled_flow(0) == pytest.approx(10.0)
        assert runtime.network.channel(1, 2).settled_flow(1) == pytest.approx(10.0)

    def test_delivers_across_a_star(self):
        network = star_topology(5).build_network(default_capacity=100.0)
        records = [
            TransactionRecord(i, 1.0 + 0.1 * i, 1 + i, 1 + (i + 1) % 4, 5.0)
            for i in range(4)
        ]
        metrics, _ = run(records, network)
        assert metrics.completed == 4

    def test_unit_never_revisits_a_node(self):
        # A unit on a cycle cannot loop: each settled trail is simple.
        network = cycle_topology(5).build_network(default_capacity=100.0)
        metrics, runtime = run([TransactionRecord(0, 1.0, 0, 2, 10.0)], network)
        assert metrics.completed == 1
        assert runtime.total_hops <= 3  # 0-1-2 or part of the long way

    def test_splits_into_capped_units(self):
        network = line_topology(3).build_network(default_capacity=200.0)
        scheme = CelerScheme(unit_cap=10.0)
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 2, 50.0)], network, scheme=scheme
        )
        assert metrics.completed == 1
        assert runtime.units_injected == 5

    def test_gradient_uses_the_second_route_under_contention(self):
        # Two disjoint routes 0→3 on a 6-cycle; a payment too big for one
        # route's balance must use both to finish.
        network = cycle_topology(6).build_network(default_capacity=100.0)
        scheme = CelerScheme(unit_cap=25.0)
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 3, 80.0)], network, scheme=scheme
        )
        assert metrics.delivered_value == pytest.approx(80.0)
        # Both of node 0's outgoing directions carried value.
        assert runtime.network.channel(0, 1).settled_flow(0) > 0
        assert runtime.network.channel(0, 5).settled_flow(0) > 0


class TestBacktracking:
    def test_stuck_unit_backtracks_out_of_a_dead_end(self):
        # Star with centre 0.  Edge order is chosen so that pure
        # backpressure (beta=0) pushes the unit into dead-end leaf 3 before
        # direction (0, 2) is serviced.  Reverse pressure then pops it back
        # (refunding the 0->3 HTLC) and it delivers over 1-0-2.
        from repro.network.network import PaymentNetwork
        from repro.metrics.collectors import MetricsCollector

        network = PaymentNetwork()
        network.add_channel(1, 0, 100.0)
        network.add_channel(0, 3, 100.0)
        network.add_channel(0, 2, 100.0)

        class TrailCollector(MetricsCollector):
            def __init__(self):
                super().__init__()
                self.trails = []

            def on_unit_settled(self, unit, now):
                super().on_unit_settled(unit, now)
                self.trails.append(unit.path)

        collector = TrailCollector()
        runtime = BackpressureRuntime(
            network,
            [TransactionRecord(0, 1.0, 1, 2, 10.0)],
            CelerScheme(),
            RuntimeConfig(end_time=30.0, check_invariants=True),
            beta=0.0,
            stuck_after=0.5,
            collector=collector,
        )
        metrics = runtime.run()
        assert metrics.completed == 1
        assert runtime.total_pops >= 1  # it did visit and leave the dead end
        assert collector.trails == [(1, 0, 2)]  # settled trail is the clean path
        # The popped hop refunded: leaf 3's channel is untouched at the end.
        channel = runtime.network.channel(0, 3)
        assert channel.balance(0) == pytest.approx(50.0)
        assert channel.inflight(0) == pytest.approx(0.0)

    def test_pop_to_wrong_node_is_rejected(self):
        from repro.core.payments import Payment
        from repro.routing.backpressure import BackpressureUnit

        network = line_topology(3).build_network(default_capacity=100.0)
        runtime = BackpressureRuntime(network, [], CelerScheme(), RuntimeConfig())
        payment = Payment(payment_id=1, source=0, dest=2, amount=5.0, arrival_time=0.0)
        payment.register_inflight(5.0)
        unit = BackpressureUnit(payment, 5.0, now=0.0)
        with pytest.raises(AssertionError):
            runtime._pop_hop(unit, 1)  # no hops to pop


class TestBookkeeping:
    def test_backlog_tracks_injected_value(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        scheme = CelerScheme()
        runtime = BackpressureRuntime(
            network,
            [TransactionRecord(0, 1.0, 0, 2, 10.0)],
            scheme,
            RuntimeConfig(end_time=30.0),
        )
        payment_records = runtime.records
        assert payment_records  # sanity: the trace is loaded
        # Drive manually: inject then inspect before any service epoch.
        from repro.core.payments import Payment

        payment = Payment(
            payment_id=7, source=0, dest=2, amount=10.0, arrival_time=0.0
        )
        assert runtime.inject(payment, 10.0)
        assert runtime.backlog(0, 2) == pytest.approx(10.0)
        assert runtime.backlog(1, 2) == 0.0
        assert payment.remaining == 0.0  # value is owned by the queues

    def test_injection_rejects_dust(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        runtime = BackpressureRuntime(
            network, [], CelerScheme(), RuntimeConfig(min_unit_value=1.0)
        )
        from repro.core.payments import Payment

        payment = Payment(payment_id=1, source=0, dest=2, amount=0.5, arrival_time=0.0)
        assert not runtime.inject(payment, 0.5)

    def test_unreachable_destination_fails_payment(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        network.add_node(99)
        metrics, _ = run([TransactionRecord(0, 1.0, 0, 99, 10.0)], network)
        assert metrics.failed == 1
        assert metrics.completed == 0

    def test_funds_conserved_under_contention(self):
        network = cycle_topology(6).build_network(default_capacity=50.0)
        records = [
            TransactionRecord(i, 1.0 + 0.2 * i, i % 6, (i + 3) % 6, 30.0)
            for i in range(10)
        ]
        metrics, runtime = run(records, network)
        runtime.network.check_invariants()  # explicit, beyond per-event checks
        assert metrics.attempted == 10


class TestExpiry:
    def test_max_hops_expires_and_value_returns(self):
        # max_hops=1 can never reach a 2-hop destination: every unit is
        # refunded and the payment fails at the end of the run.
        network = line_topology(3).build_network(default_capacity=100.0)
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 2, 10.0)],
            network,
            end_time=5.0,
            max_hops=1,
        )
        assert metrics.completed == 0
        assert runtime.units_expired > 0
        # Refunds restored every balance: no money evaporated.
        runtime.network.check_invariants()
        assert runtime.network.total_inflight() == pytest.approx(0.0)

    def test_deadline_withholds_late_settlement(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 10.0, deadline=1.05)]
        # Settlement takes settle_delay=0.5 > the 0.05s deadline slack.
        metrics, runtime = run(records, network, end_time=10.0)
        assert metrics.completed == 0
        assert metrics.delivered_value == pytest.approx(0.0)
        runtime.network.check_invariants()


class TestConstructionAndIntegration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"service_interval": 0.0},
            {"service_interval": -1.0},
            {"beta": -0.1},
            {"max_hops": 0},
        ],
    )
    def test_runtime_rejects_bad_parameters(self, kwargs):
        network = line_topology(3).build_network(default_capacity=100.0)
        with pytest.raises(ValueError):
            BackpressureRuntime(network, [], CelerScheme(), RuntimeConfig(), **kwargs)

    def test_scheme_rejects_bad_unit_cap(self):
        with pytest.raises(ValueError):
            CelerScheme(unit_cap=0.0)

    def test_scheme_requires_backpressure_runtime(self):
        from repro.core.runtime import Runtime
        from repro.core.payments import Payment

        network = line_topology(3).build_network(default_capacity=100.0)
        runtime = Runtime(network, [], CelerScheme())
        payment = Payment(payment_id=1, source=0, dest=2, amount=1.0, arrival_time=0.0)
        with pytest.raises(TypeError):
            CelerScheme().attempt(payment, runtime)

    def test_registered_and_runs_via_experiment_runner(self):
        config = ExperimentConfig(
            scheme="celer",
            scheme_params={"beta": 2.0, "max_hops": 8},
            topology="line-4",
            capacity=5_000.0,
            num_transactions=50,
            arrival_rate=25.0,
            seed=3,
        )
        metrics = run_experiment(config)
        assert metrics.attempted == 50
        assert metrics.completed > 0

    def test_runtime_kwargs_plumbed(self):
        scheme = CelerScheme(service_interval=0.25, beta=3.0, max_hops=6)
        assert scheme.runtime_kwargs() == {
            "service_interval": 0.25,
            "beta": 3.0,
            "max_hops": 6,
            "stuck_after": 1.0,
        }
