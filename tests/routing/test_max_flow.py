"""Tests for the from-scratch Edmonds–Karp max-flow and flow decomposition."""

from __future__ import annotations

import pytest

from repro.routing.max_flow import MaxFlowScheme, decompose_flow, edmonds_karp


class TestEdmondsKarp:
    def test_single_edge(self):
        value, flow = edmonds_karp({(0, 1): 5.0}, 0, 1)
        assert value == 5.0
        assert flow == {(0, 1): 5.0}

    def test_series_bottleneck(self):
        value, _ = edmonds_karp({(0, 1): 5.0, (1, 2): 3.0}, 0, 2)
        assert value == 3.0

    def test_parallel_paths_add(self):
        capacity = {(0, 1): 3.0, (1, 3): 3.0, (0, 2): 4.0, (2, 3): 4.0}
        value, _ = edmonds_karp(capacity, 0, 3)
        assert value == 7.0

    def test_classic_clrs_instance(self):
        """The textbook 6-node instance with max flow 23."""
        capacity = {
            ("s", "v1"): 16.0,
            ("s", "v2"): 13.0,
            ("v1", "v3"): 12.0,
            ("v2", "v1"): 4.0,
            ("v2", "v4"): 14.0,
            ("v3", "v2"): 9.0,
            ("v3", "t"): 20.0,
            ("v4", "v3"): 7.0,
            ("v4", "t"): 4.0,
        }
        value, flow = edmonds_karp(capacity, "s", "t")
        assert value == 23.0
        # Flow conservation at internal nodes.
        for node in ("v1", "v2", "v3", "v4"):
            inflow = sum(f for (u, v), f in flow.items() if v == node)
            outflow = sum(f for (u, v), f in flow.items() if u == node)
            assert inflow == pytest.approx(outflow)

    def test_requires_augmenting_through_residual(self):
        """Instance where the optimum needs flow cancellation via the
        residual graph (the reason Ford-Fulkerson uses backward edges)."""
        capacity = {
            (0, 1): 1.0,
            (0, 2): 1.0,
            (1, 2): 1.0,
            (1, 3): 1.0,
            (2, 3): 1.0,
        }
        value, _ = edmonds_karp(capacity, 0, 3)
        assert value == 2.0

    def test_disconnected_sink(self):
        value, flow = edmonds_karp({(0, 1): 5.0}, 0, 2)
        assert value == 0.0
        assert flow == {}

    def test_limit_stops_early(self):
        value, _ = edmonds_karp({(0, 1): 100.0}, 0, 1, limit=7.0)
        assert value == 7.0

    def test_bidirectional_capacities(self):
        # Payment channels expose both directions with separate balances.
        capacity = {(0, 1): 5.0, (1, 0): 3.0}
        value, flow = edmonds_karp(capacity, 0, 1)
        assert value == 5.0

    def test_flow_respects_capacities(self):
        capacity = {(0, 1): 2.5, (1, 2): 4.0, (0, 2): 1.0}
        _, flow = edmonds_karp(capacity, 0, 2)
        for edge, f in flow.items():
            assert f <= capacity[edge] + 1e-9


class TestDecomposeFlow:
    def test_paths_carry_full_value(self):
        capacity = {(0, 1): 3.0, (1, 3): 3.0, (0, 2): 4.0, (2, 3): 4.0}
        value, flow = edmonds_karp(capacity, 0, 3)
        paths = decompose_flow(flow, 0, 3)
        assert sum(v for _, v in paths) == pytest.approx(value)

    def test_paths_are_simple_and_start_end_correctly(self):
        capacity = {
            ("s", "a"): 2.0,
            ("a", "b"): 2.0,
            ("b", "t"): 2.0,
            ("s", "b"): 1.0,
            ("a", "t"): 1.0,
        }
        _, flow = edmonds_karp(capacity, "s", "t")
        for path, value in decompose_flow(flow, "s", "t"):
            assert path[0] == "s" and path[-1] == "t"
            assert len(set(path)) == len(path)
            assert value > 0

    def test_empty_flow(self):
        assert decompose_flow({}, 0, 1) == []


class TestMaxFlowScheme:
    def test_scheme_routes_across_parallel_paths(self, triangle):
        """70 > any single path (50) but within max-flow (100) on the
        triangle: direct 0-1 (50) plus 0-2-1 (50)."""
        from repro.core.runtime import Runtime, RuntimeConfig
        from repro.workload.generator import TransactionRecord

        records = [TransactionRecord(0, 1.0, 0, 1, 70.0)]
        runtime = Runtime(
            triangle, records, MaxFlowScheme(), RuntimeConfig(end_time=10.0)
        )
        metrics = runtime.run()
        assert metrics.completed == 1
        triangle.check_invariants()

    def test_scheme_fails_beyond_max_flow(self, triangle):
        from repro.core.runtime import Runtime, RuntimeConfig
        from repro.workload.generator import TransactionRecord

        records = [TransactionRecord(0, 1.0, 0, 1, 150.0)]
        runtime = Runtime(
            triangle, records, MaxFlowScheme(), RuntimeConfig(end_time=10.0)
        )
        metrics = runtime.run()
        assert metrics.failed == 1
        assert metrics.delivered_value == 0.0
