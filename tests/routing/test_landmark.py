"""Tests for SilentWhispers-style landmark routing."""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.routing.landmark import LandmarkScheme, contract_loops
from repro.topology.generators import star_topology
from repro.topology.isp import isp_topology
from repro.workload.generator import TransactionRecord


class TestContractLoops:
    def test_no_loop_is_identity(self):
        assert contract_loops((1, 2, 3)) == (1, 2, 3)

    def test_simple_loop_contracted(self):
        assert contract_loops((1, 2, 3, 2, 4)) == (1, 2, 4)

    def test_landmark_backtrack_contracted(self):
        # s -> l -> s -> d  (landmark path where s lies on the way back)
        assert contract_loops((1, 5, 1, 2)) == (1, 2)

    def test_nested_loops(self):
        assert contract_loops((1, 2, 3, 4, 3, 2, 5)) == (1, 2, 5)

    def test_single_node(self):
        assert contract_loops((7,)) == (7,)


class TestLandmarkScheme:
    def _run(self, records, network, **kwargs):
        scheme = LandmarkScheme(**kwargs)
        runtime = Runtime(network, records, scheme, RuntimeConfig(end_time=20.0))
        return runtime.run(), runtime

    def test_landmarks_are_highest_degree(self):
        network = isp_topology().build_network(default_capacity=1000.0)
        scheme = LandmarkScheme(num_landmarks=3)
        runtime = Runtime(network, [], scheme, RuntimeConfig(end_time=1.0))
        scheme.prepare(runtime)
        # The ISP core nodes (0-7) have the highest degree.
        assert all(landmark < 8 for landmark in scheme._landmarks)

    def test_star_routes_through_hub(self):
        network = star_topology(5).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 1, 2, 10.0)]
        metrics, _ = self._run(records, network, num_landmarks=1)
        assert metrics.completed == 1

    def test_payment_beyond_capacity_fails_atomically(self):
        network = star_topology(5).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 1, 2, 60.0)]  # bottleneck 50
        metrics, runtime = self._run(records, network, num_landmarks=1)
        assert metrics.failed == 1
        assert metrics.delivered_value == 0.0
        runtime.network.check_invariants()

    def test_multiple_landmarks_split_value(self):
        network = isp_topology().build_network(default_capacity=1000.0)
        records = [TransactionRecord(0, 1.0, 9, 21, 400.0)]
        metrics, runtime = self._run(records, network, num_landmarks=3)
        assert metrics.completed == 1
        # The value was split across more than one landmark path.
        used = [
            channel
            for channel in runtime.network.channels()
            if channel.num_settled > 0
        ]
        assert len(used) > 3  # one 3-hop path alone would touch 3 channels

    def test_shared_landmark_edge_limits_atomic_success(self):
        """Landmark paths often share the landmark's access edges; a payment
        exceeding that shared capacity fails even though the naive per-path
        probe sum suggests otherwise."""
        network = isp_topology().build_network(default_capacity=1000.0)
        records = [TransactionRecord(0, 1.0, 9, 21, 800.0)]
        metrics, _ = self._run(records, network, num_landmarks=3)
        assert metrics.failed == 1

    def test_paths_reach_destination(self):
        network = isp_topology().build_network(default_capacity=1000.0)
        scheme = LandmarkScheme(num_landmarks=3)
        runtime = Runtime(network, [], scheme, RuntimeConfig(end_time=1.0))
        scheme.prepare(runtime)
        for source, dest in [(8, 20), (10, 31), (9, 15)]:
            for path in scheme.landmark_paths(source, dest):
                assert path[0] == source
                assert path[-1] == dest
                assert len(set(path)) == len(path)

    def test_invalid_landmark_count(self):
        with pytest.raises(ValueError):
            LandmarkScheme(num_landmarks=0)
