"""Tests for the scheme registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.routing.base import RoutingScheme
from repro.routing.registry import (
    available_schemes,
    make_scheme,
    register_scheme,
    SCHEME_FACTORIES,
)


class TestRegistry:
    def test_all_builtins_instantiate(self):
        for name in available_schemes():
            scheme = make_scheme(name)
            assert isinstance(scheme, RoutingScheme)
            assert scheme.name  # every scheme has a display name

    def test_expected_schemes_present(self):
        names = available_schemes()
        for expected in (
            "shortest-path",
            "max-flow",
            "silentwhispers",
            "speedymurmurs",
            "spider-waterfilling",
            "spider-lp",
            "spider-primal-dual",
        ):
            assert expected in names

    def test_kwargs_forwarded(self):
        scheme = make_scheme("spider-waterfilling", num_paths=2)
        assert scheme.num_paths == 2

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError, match="spider-waterfilling"):
            make_scheme("bogus")

    def test_register_custom_scheme(self):
        class Custom(RoutingScheme):
            name = "custom-test"

            def attempt(self, payment, runtime):
                return None

        register_scheme("custom-test", Custom, overwrite=True)
        try:
            assert isinstance(make_scheme("custom-test"), Custom)
        finally:
            del SCHEME_FACTORIES["custom-test"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_scheme("max-flow", lambda: None)
