"""Tests for the shortest-path packet-switched baseline."""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.routing.shortest_path import ShortestPathScheme
from repro.topology.generators import cycle_topology, line_topology
from repro.workload.generator import TransactionRecord


def run(records, network, **config_kwargs):
    runtime = Runtime(
        network,
        records,
        ShortestPathScheme(),
        RuntimeConfig(end_time=30.0, **config_kwargs),
    )
    return runtime.run(), runtime


class TestShortestPathScheme:
    def test_uses_only_the_shortest_path(self):
        # On a 6-cycle, 0 -> 2 goes 0-1-2; the long way is never used.
        network = cycle_topology(6).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 10.0)]
        metrics, runtime = run(records, network)
        assert metrics.completed == 1
        assert runtime.network.channel(3, 4).settled_flow(3) == 0.0
        assert runtime.network.channel(0, 1).settled_flow(0) == 10.0

    def test_non_atomic_partial_delivery(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 80.0)]
        metrics, _ = run(records, network)
        # Bottleneck 50: partial delivery counts toward success volume.
        assert metrics.completed == 0
        assert metrics.delivered_value == pytest.approx(50.0)

    def test_queued_remainder_retries_after_reverse_flow(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        records = [
            TransactionRecord(0, 1.0, 0, 2, 80.0),
            TransactionRecord(1, 2.0, 2, 0, 40.0),
        ]
        metrics, runtime = run(records, network)
        # The reverse payment replenishes 0->2 capacity; the queued 30
        # eventually completes the big payment.
        assert runtime.payments[0].is_complete
        assert metrics.completed == 2

    def test_disconnected_pair_fails(self):
        from repro.network.network import PaymentNetwork

        network = PaymentNetwork()
        network.add_channel(0, 1, 100.0)
        network.add_node(2)
        records = [TransactionRecord(0, 1.0, 0, 2, 10.0)]
        metrics, _ = run(records, network)
        assert metrics.failed == 1
