"""Tests for the LND-style baseline (single cheapest path + pruning)."""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.network.network import PaymentNetwork
from repro.routing.lnd import LndScheme
from repro.topology.generators import cycle_topology, line_topology
from repro.workload.generator import TransactionRecord


def run(records, network, scheme=None, **config_kwargs):
    scheme = scheme or LndScheme()
    runtime = Runtime(
        network,
        records,
        scheme,
        RuntimeConfig(end_time=30.0, **config_kwargs),
    )
    return runtime.run(), runtime


def two_route_network(short_fee_rate=0.0, long_fee_rate=0.0, capacity=100.0):
    """0→3 via the 2-hop route 0-1-3 or the 3-hop route 0-2-4-3."""
    network = PaymentNetwork()
    network.add_channel(0, 1, capacity, fee_rate=short_fee_rate)
    network.add_channel(1, 3, capacity, fee_rate=short_fee_rate)
    network.add_channel(0, 2, capacity, fee_rate=long_fee_rate)
    network.add_channel(2, 4, capacity, fee_rate=long_fee_rate)
    network.add_channel(4, 3, capacity, fee_rate=long_fee_rate)
    return network


class TestPathSelection:
    def test_delivers_atomically_on_a_line(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        metrics, runtime = run([TransactionRecord(0, 1.0, 0, 2, 30.0)], network)
        assert metrics.completed == 1
        assert runtime.network.channel(0, 1).settled_flow(0) == pytest.approx(30.0)
        assert runtime.network.channel(1, 2).settled_flow(1) == pytest.approx(30.0)

    def test_prefers_fewer_hops_when_fees_are_equal(self):
        network = two_route_network()
        _, runtime = run([TransactionRecord(0, 1.0, 0, 3, 10.0)], network)
        assert runtime.network.channel(0, 1).settled_flow(0) == pytest.approx(10.0)
        assert runtime.network.channel(0, 2).settled_flow(0) == 0.0

    def test_prefers_cheaper_fees_over_fewer_hops(self):
        # Short route charges 10% per intermediary; long route is free and
        # the hop penalty is small, so the fee term dominates.
        network = two_route_network(short_fee_rate=0.10, long_fee_rate=0.0)
        scheme = LndScheme(hop_penalty=0.01)
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 3, 10.0)], network, scheme=scheme
        )
        assert metrics.completed == 1
        assert runtime.network.channel(0, 2).settled_flow(0) == pytest.approx(10.0)
        assert runtime.network.channel(0, 1).settled_flow(0) == 0.0

    def test_fee_accounting_matches_hop_amounts(self):
        network = two_route_network(short_fee_rate=0.05, long_fee_rate=0.5)
        metrics, runtime = run([TransactionRecord(0, 1.0, 0, 3, 10.0)], network)
        assert metrics.completed == 1
        payment = runtime.payments[0]
        # One intermediary (node 1) charges 5% of the delivered 10.
        assert payment.fees_paid == pytest.approx(0.5)

    def test_unreachable_destination_fails(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        network.add_node(99)
        metrics, _ = run([TransactionRecord(0, 1.0, 0, 99, 10.0)], network)
        assert metrics.completed == 0
        assert metrics.failed == 1

    def test_amount_above_gossiped_capacity_skips_channel(self):
        # The 2-hop route's channels cannot ever carry 60; LND must not even
        # try them and goes straight to the long route.
        network = PaymentNetwork()
        network.add_channel(0, 1, 50.0)
        network.add_channel(1, 3, 50.0)
        network.add_channel(0, 2, 200.0)
        network.add_channel(2, 4, 200.0)
        network.add_channel(4, 3, 200.0)
        scheme = LndScheme()
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 3, 60.0)], network, scheme=scheme
        )
        assert metrics.completed == 1
        assert runtime.network.channel(0, 2).settled_flow(0) == pytest.approx(60.0)
        assert scheme.failures_reported == 0


class TestRetriesAndMissionControl:
    def drained_short_route(self):
        """Short route 0-1-3 looks fine from gossip but 1→3 is unfunded."""
        network = two_route_network()
        channel = network.channel(1, 3)
        # Shift all of node 1's funds to node 3's side.
        htlc = channel.lock(1, 50.0, now=0.0)
        channel.settle(htlc)
        return network

    def test_prunes_unfunded_hop_and_retries(self):
        network = self.drained_short_route()
        scheme = LndScheme()
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 3, 10.0)], network, scheme=scheme
        )
        assert metrics.completed == 1
        assert scheme.failures_reported == 1
        # Delivery went over the long route.
        assert runtime.network.channel(0, 2).settled_flow(0) == pytest.approx(10.0)

    def test_mission_control_remembers_across_payments(self):
        network = self.drained_short_route()
        scheme = LndScheme(forget_time=100.0)
        records = [
            TransactionRecord(0, 1.0, 0, 3, 10.0),
            TransactionRecord(1, 2.0, 0, 3, 10.0),
        ]
        metrics, _ = run(records, network, scheme=scheme)
        assert metrics.completed == 2
        # Only the first payment probes the broken hop.
        assert scheme.failures_reported == 1
        assert scheme.attempts_used == 3  # 2 for payment 0, 1 for payment 1

    def test_forgotten_failures_are_probed_again(self):
        network = self.drained_short_route()
        scheme = LndScheme(forget_time=0.5)
        records = [
            TransactionRecord(0, 1.0, 0, 3, 10.0),
            TransactionRecord(1, 10.0, 0, 3, 10.0),  # well past forget_time
        ]
        metrics, _ = run(records, network, scheme=scheme)
        assert metrics.completed == 2
        assert scheme.failures_reported == 2

    def test_zero_forget_time_disables_memory(self):
        network = self.drained_short_route()
        scheme = LndScheme(forget_time=0.0)
        records = [
            TransactionRecord(0, 1.0, 0, 3, 10.0),
            TransactionRecord(1, 2.0, 0, 3, 10.0),
        ]
        metrics, _ = run(records, network, scheme=scheme)
        assert metrics.completed == 2
        assert scheme.failures_reported == 2

    def test_max_attempts_exhaustion_fails_payment(self):
        # Every route to 3 is drained; with max_attempts=1 LND gives up
        # after the first reported failure.
        network = two_route_network()
        for u, v in [(1, 3), (4, 3)]:
            channel = network.channel(u, v)
            channel.settle(channel.lock(u, 50.0, now=0.0))
        scheme = LndScheme(max_attempts=1)
        metrics, _ = run([TransactionRecord(0, 1.0, 0, 3, 10.0)], network, scheme=scheme)
        assert metrics.failed == 1
        assert scheme.attempts_used == 1

    def test_sender_balance_is_known_exactly(self):
        # The sender's own 0→1 direction is drained: no retry is wasted on
        # it because senders see their own balances, not just capacity.
        network = two_route_network()
        channel = network.channel(0, 1)
        channel.settle(channel.lock(0, 50.0, now=0.0))
        scheme = LndScheme()
        metrics, runtime = run(
            [TransactionRecord(0, 1.0, 0, 3, 10.0)], network, scheme=scheme
        )
        assert metrics.completed == 1
        assert scheme.failures_reported == 0
        assert runtime.network.channel(0, 2).settled_flow(0) == pytest.approx(10.0)


class TestFeeBudget:
    def test_fee_budget_rejection_fails_payment(self):
        network = line_topology(4).build_network(default_capacity=100.0)
        for channel in network.channels():
            channel.fee_rate = 0.2
        metrics, _ = run(
            [TransactionRecord(0, 1.0, 0, 3, 10.0)],
            network,
            max_fee_fraction=0.01,
        )
        assert metrics.failed == 1

    def test_generous_budget_allows_payment(self):
        network = line_topology(4).build_network(default_capacity=100.0)
        for channel in network.channels():
            channel.fee_rate = 0.01
        metrics, _ = run(
            [TransactionRecord(0, 1.0, 0, 3, 10.0)],
            network,
            max_fee_fraction=0.5,
        )
        assert metrics.completed == 1


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": -1},
            {"hop_penalty": -0.5},
            {"forget_time": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LndScheme(**kwargs)

    def test_registered_in_registry(self):
        from repro.routing.registry import make_scheme

        scheme = make_scheme("lnd", max_attempts=3)
        assert isinstance(scheme, LndScheme)
        assert scheme.max_attempts == 3

    def test_atomicity_flag(self):
        assert LndScheme.atomic is True


class TestOnCycleTopology:
    def test_retry_finds_the_other_way_around(self):
        # 6-cycle: 0→3 has two 3-hop routes; drain one, LND finds the other.
        network = cycle_topology(6).build_network(default_capacity=100.0)
        channel = network.channel(1, 2)
        channel.settle(channel.lock(1, 50.0, now=0.0))
        scheme = LndScheme()
        metrics, _ = run([TransactionRecord(0, 1.0, 0, 3, 10.0)], network, scheme=scheme)
        assert metrics.completed == 1
