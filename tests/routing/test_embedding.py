"""Tests for SpeedyMurmurs-style embedding routing."""

from __future__ import annotations

import pytest

from repro.core.runtime import Runtime, RuntimeConfig
from repro.routing.embedding import PrefixEmbedding, SpeedyMurmursScheme, tree_distance
from repro.topology.generators import grid_topology, line_topology, star_topology
from repro.topology.isp import isp_topology
from repro.workload.generator import TransactionRecord


class TestTreeDistance:
    def test_identical_coordinates(self):
        assert tree_distance((1, 2), (1, 2)) == 0

    def test_parent_child(self):
        assert tree_distance((1,), (1, 2)) == 1

    def test_siblings(self):
        assert tree_distance((1, 2), (1, 3)) == 2

    def test_root_to_leaf(self):
        assert tree_distance((), (5, 6, 7)) == 3

    def test_disjoint_subtrees(self):
        assert tree_distance((1, 2), (3, 4)) == 4


class TestPrefixEmbedding:
    def test_root_has_empty_coordinate(self):
        adjacency = line_topology(4).adjacency()
        embedding = PrefixEmbedding(adjacency, root=0, seed=0)
        assert embedding.coordinate(0) == ()

    def test_coordinate_depth_equals_tree_depth(self):
        adjacency = line_topology(4).adjacency()
        embedding = PrefixEmbedding(adjacency, root=0, seed=0)
        for node in range(4):
            assert len(embedding.coordinate(node)) == node

    def test_distance_on_line_matches_hops(self):
        adjacency = line_topology(6).adjacency()
        embedding = PrefixEmbedding(adjacency, root=0, seed=0)
        assert embedding.distance(1, 4) == 3

    def test_grid_embedding_covers_all_nodes(self):
        adjacency = grid_topology(4, 4).adjacency()
        embedding = PrefixEmbedding(adjacency, root=0, seed=1)
        for node in range(16):
            embedding.coordinate(node)  # must not raise


class TestSpeedyMurmursScheme:
    def _run(self, records, network, **kwargs):
        scheme = SpeedyMurmursScheme(**kwargs)
        runtime = Runtime(network, records, scheme, RuntimeConfig(end_time=20.0))
        return runtime.run(), runtime

    def test_simple_delivery(self):
        network = star_topology(5).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 1, 2, 10.0)]
        metrics, _ = self._run(records, network, num_trees=1)
        assert metrics.completed == 1

    def test_multi_tree_split(self):
        network = isp_topology().build_network(default_capacity=1000.0)
        records = [TransactionRecord(0, 1.0, 8, 20, 300.0)]
        metrics, _ = self._run(records, network, num_trees=3)
        assert metrics.completed == 1

    def test_share_failure_fails_whole_payment(self):
        # Line 0-1-2 with capacity 100/2=50 per direction: a 120 payment's
        # shares (40 each over 3 trees on the same physical path) exceed
        # the 50 available -> atomic failure, nothing delivered.
        network = line_topology(3).build_network(default_capacity=100.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 120.0)]
        metrics, runtime = self._run(records, network, num_trees=3)
        assert metrics.failed == 1
        assert metrics.delivered_value == 0.0
        runtime.network.check_invariants()

    def test_greedy_routing_respects_balances(self):
        network = line_topology(3).build_network(default_capacity=100.0)
        # Drain 0->1 so greedy routing dead-ends at the source.
        network.channel(0, 1).lock(0, 50.0)
        records = [TransactionRecord(0, 1.0, 0, 2, 10.0)]
        metrics, _ = self._run(records, network, num_trees=1)
        assert metrics.failed == 1

    def test_deterministic_for_seed(self):
        network1 = isp_topology().build_network(default_capacity=500.0)
        network2 = isp_topology().build_network(default_capacity=500.0)
        records = [
            TransactionRecord(i, 1.0 + 0.1 * i, 8 + i, 20 + i, 50.0) for i in range(5)
        ]
        m1, _ = self._run(list(records), network1, num_trees=3, seed=7)
        m2, _ = self._run(list(records), network2, num_trees=3, seed=7)
        assert m1.completed == m2.completed
        assert m1.delivered_value == m2.delivered_value

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpeedyMurmursScheme(num_trees=0)
        with pytest.raises(ValueError):
            SpeedyMurmursScheme(max_hops=1)
