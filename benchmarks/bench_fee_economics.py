"""Fee economics: routing fees vs throughput vs router income (§7).

§4.1 gives senders a "maximum acceptable routing fee" and §7 asks how
service providers should price routing.  This bench sweeps the uniform
proportional fee rate on the ISP topology with a fixed per-payment fee
budget, and measures the three quantities the discussion turns on:

* delivered volume (fees above the budget suppress payments),
* aggregate router revenue (price × surviving traffic — the Laffer-style
  trade-off: zero at zero price, zero again when pricing kills traffic),
* revenue concentration (Gini) across routers.

Run with::

    pytest benchmarks/bench_fee_economics.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.runtime import RuntimeConfig
from repro.metrics import (
    IncentiveCollector,
    escrow_by_node,
    fee_yield_report,
    format_table,
    gini,
)
from repro.routing import make_scheme
from repro.topology import isp_topology
from repro.workload.distributions import ripple_isp_sizes
from repro.workload.generator import WorkloadConfig, generate_workload

FEE_RATES = [0.0, 0.001, 0.005, 0.02, 0.08]
FEE_BUDGET_FRACTION = 0.05  # senders abort beyond 5% total fees
DURATION = 30.0


def _run_point(fee_rate: float, topology, records):
    network = topology.build_network(
        default_capacity=3_000.0, fee_rate=fee_rate
    )
    initial_escrow = escrow_by_node(network)
    collector = IncentiveCollector()
    from repro.core.runtime import Runtime

    runtime = Runtime(
        network,
        records,
        make_scheme("spider-waterfilling"),
        RuntimeConfig(end_time=DURATION + 10.0,
                      max_fee_fraction=FEE_BUDGET_FRACTION),
        collector=collector,
    )
    metrics = runtime.run()
    report = fee_yield_report(collector, initial_escrow, DURATION)
    return metrics, collector, report


def test_fee_sweep(benchmark):
    """Volume falls and revenue rises-then-falls as fees climb."""
    topology = isp_topology()
    workload = WorkloadConfig(
        num_transactions=1_000,
        arrival_rate=50.0,
        size_distribution=ripple_isp_sizes(),
        seed=31,
    )
    records = generate_workload(list(topology.nodes), workload)

    def run():
        return [(_rate, *_run_point(_rate, topology, records)) for _rate in FEE_RATES]

    results = run_once(benchmark, run)

    rows = []
    for rate, metrics, collector, report in results:
        revenue = sum(collector.router_revenue.values())
        concentration = gini([r.revenue for r in report])
        rows.append(
            [
                f"{rate:.3f}",
                f"{100 * metrics.success_volume:.1f}",
                f"{100 * metrics.success_ratio:.1f}",
                f"{revenue:.0f}",
                f"{concentration:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["fee_rate", "volume_%", "ratio_%", "router_revenue", "gini"],
            rows,
            title=(
                "uniform proportional fees, sender budget "
                f"{100 * FEE_BUDGET_FRACTION:.0f}% of payment"
            ),
        )
    )

    volumes = [m.success_volume for _, m, _, _ in results]
    revenues = [sum(c.router_revenue.values()) for _, _, c, _ in results]

    # Fee-free routing earns nothing; any positive fee earns something.
    assert revenues[0] == 0.0
    assert revenues[1] > 0.0
    # Delivered volume is (weakly) decreasing in the fee level.
    for lo_rate, hi_rate in zip(volumes[1:], volumes):
        assert lo_rate <= hi_rate + 0.02
    # The budget bites: at the top rate (0.08 > 5% budget for multi-hop
    # payments) volume must drop decisively below the fee-free level.
    assert volumes[-1] < volumes[0] - 0.10
    # Laffer shape: revenue at the punitive rate is below the peak.
    assert max(revenues) > revenues[-1]


def test_fee_yield_favours_central_routers(benchmark):
    """Well-connected routers earn a higher return on escrow — the §7
    centralisation pressure, measured."""
    topology = isp_topology()
    workload = WorkloadConfig(
        num_transactions=800,
        arrival_rate=40.0,
        size_distribution=ripple_isp_sizes(),
        seed=37,
    )
    records = generate_workload(list(topology.nodes), workload)

    def run():
        return _run_point(0.005, topology, records)

    metrics, collector, report = run_once(benchmark, run)
    adjacency = topology.adjacency()
    degree = {node: len(neigh) for node, neigh in adjacency.items()}
    earners = [r for r in report if r.revenue > 0]
    assert earners, "somebody must earn fees at a positive rate"
    top = earners[: max(1, len(earners) // 4)]
    bottom = earners[-max(1, len(earners) // 4):]
    mean_degree_top = sum(degree[r.node] for r in top) / len(top)
    mean_degree_bottom = sum(degree[r.node] for r in bottom) / len(bottom)
    print(
        f"\nmean degree of top-quartile earners: {mean_degree_top:.1f}, "
        f"bottom quartile: {mean_degree_bottom:.1f}"
    )
    assert mean_degree_top >= mean_degree_bottom
