"""§5.3 — convergence of the decentralized primal-dual algorithm.

Reproduces the claim that "for sufficiently small step sizes, the algorithm
converges to the optimal solution": the iterates reach the balanced LP
optimum on the Fig. 4 example and track the rebalancing LP for finite γ,
and the online (in-simulator) protocol gets within a few points of
waterfilling without oracle demand knowledge.

Run with::

    pytest benchmarks/bench_primal_dual_convergence.py --benchmark-only -s
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import DEFAULT_CAPACITY, run_once
from repro.experiments import ExperimentConfig, compare_schemes
from repro.fluid import (
    PrimalDualConfig,
    all_simple_paths,
    solve_fluid_lp,
    solve_primal_dual,
)
from repro.metrics import format_table
from repro.topology import FIG4_DEMANDS, fig4_topology


@pytest.fixture(scope="module")
def fig4_paths():
    adjacency = fig4_topology().adjacency()
    return {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}


def test_convergence_to_balanced_optimum(benchmark, fig4_paths):
    """Iterates reach nu(C*) = 8 without rebalancing."""
    config = PrimalDualConfig(
        alpha=0.02, eta=0.05, kappa=0.05, gamma=math.inf, iterations=25_000
    )
    result = run_once(
        benchmark, lambda: solve_primal_dual(FIG4_DEMANDS, fig4_paths, config=config)
    )
    milestones = [0, 100, 1_000, 10_000, len(result.history) - 1]
    print()
    print(
        format_table(
            ["iteration", "throughput"],
            [[i, f"{result.history[i]:.3f}"] for i in milestones],
            title="primal-dual convergence (target: 8.0)",
        )
    )
    assert result.throughput == pytest.approx(8.0, abs=0.1)


def test_tracks_rebalancing_lp(benchmark, fig4_paths):
    """With finite gamma the iterates match the eqs. 6–11 LP."""
    gamma = 0.1
    config = PrimalDualConfig(
        alpha=0.02, eta=0.05, kappa=0.05, beta=0.05, gamma=gamma, iterations=25_000
    )

    def run():
        pd = solve_primal_dual(FIG4_DEMANDS, fig4_paths, config=config)
        lp = solve_fluid_lp(FIG4_DEMANDS, fig4_paths, balance="rebalance", gamma=gamma)
        return pd, lp

    pd, lp = run_once(benchmark, run)
    print(
        f"\ngamma={gamma}: primal-dual throughput {pd.throughput:.3f} "
        f"(LP {lp.throughput:.3f}), rebalancing {pd.total_rebalancing:.3f} "
        f"(LP {lp.total_rebalancing:.3f})"
    )
    assert pd.throughput == pytest.approx(lp.throughput, abs=0.2)
    assert pd.total_rebalancing == pytest.approx(lp.total_rebalancing, abs=0.3)


def test_online_protocol_is_competitive(benchmark):
    """The in-simulator price-based protocol (no oracle demands) lands within
    a few points of waterfilling on the ISP workload."""
    config = ExperimentConfig(
        topology="isp",
        capacity=DEFAULT_CAPACITY,
        num_transactions=1_500,
        arrival_rate=100.0,
        seed=7,
    )
    results = run_once(
        benchmark,
        lambda: compare_schemes(config, ["spider-primal-dual", "spider-waterfilling"]),
    )
    by_scheme = {m.scheme: m for m in results}
    print()
    for name, metrics in by_scheme.items():
        print(
            f"{name:22s} ratio={100 * metrics.success_ratio:.1f}% "
            f"volume={100 * metrics.success_volume:.1f}%"
        )
    assert (
        by_scheme["spider-primal-dual"].success_volume
        >= by_scheme["spider-waterfilling"].success_volume - 0.08
    )
