"""Figure 5 — circulation/DAG decomposition of the payment graph (§5.2.2).

Paper numbers: the example's 12 units of demand decompose into a maximum
circulation of value **8** (Fig. 5b) and a DAG remainder of value **4**
(Fig. 5c).  (The paper's "8/12 = 75%" is an arithmetic slip; 8/12 ≈ 66.7%.)

Run with::

    pytest benchmarks/bench_fig5_circulation.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.fluid import (
    PaymentGraph,
    decompose_payment_graph,
    peel_cycles,
    route_circulation_on_tree,
)
from repro.metrics import format_table
from repro.topology import FIG4_DEMANDS, fig4_topology
from repro.workload import mixed_demand


def test_fig5_decomposition_lp(benchmark):
    """Fig. 5b/5c via the LP method."""
    graph = PaymentGraph(FIG4_DEMANDS)
    decomposition = run_once(benchmark, lambda: decompose_payment_graph(graph, "lp"))
    print()
    print(
        format_table(
            ["component", "value", "paper"],
            [
                ["total demand", f"{decomposition.total_demand:g}", "12"],
                ["circulation nu(C*)", f"{decomposition.value:g}", "8"],
                ["DAG remainder", f"{decomposition.dag_value:g}", "4"],
            ],
            title="Fig. 5 decomposition",
        )
    )
    assert decomposition.value == pytest.approx(8.0)
    assert decomposition.dag_value == pytest.approx(4.0)


def test_fig5_decomposition_cycle_cancelling(benchmark):
    """Same numbers via the combinatorial algorithm (independent check)."""
    graph = PaymentGraph(FIG4_DEMANDS)
    decomposition = run_once(
        benchmark, lambda: decompose_payment_graph(graph, "cycle-cancelling")
    )
    assert decomposition.value == pytest.approx(8.0)


def test_fig5_circulation_peels_into_cycles(benchmark):
    """The circulation decomposes into simple cycles (the construction the
    paper describes)."""
    graph = PaymentGraph(FIG4_DEMANDS)
    decomposition = decompose_payment_graph(graph, "lp")
    cycles = run_once(benchmark, lambda: peel_cycles(decomposition.circulation))
    total = sum(value * len(cycle) for cycle, value in cycles)
    assert total == pytest.approx(decomposition.value)


def test_prop1_tree_routing_balances_the_circulation(benchmark):
    """Constructive half of Prop. 1: spanning-tree routing of C* is
    perfectly balanced on the Fig. 4 topology."""
    graph = PaymentGraph(FIG4_DEMANDS)
    decomposition = decompose_payment_graph(graph, "lp")
    adjacency = fig4_topology().adjacency()

    edge_flows = run_once(
        benchmark, lambda: route_circulation_on_tree(decomposition.circulation, adjacency)
    )
    for (u, v), flow in edge_flows.items():
        assert edge_flows.get((v, u), 0.0) == pytest.approx(flow)


def test_decomposition_scales_to_larger_graphs(benchmark):
    """Timing row: decomposition on a 200-node, ~400-edge payment graph."""
    demands = mixed_demand(range(200), 10_000.0, circulation_fraction=0.7, seed=0)
    graph = PaymentGraph(demands)
    decomposition = run_once(benchmark, lambda: decompose_payment_graph(graph, "lp"))
    assert 0.0 <= decomposition.circulation_fraction <= 1.0
