"""Extension experiments: the paper's deferred features, measured.

Covers the §4.1/§4.2/§5.3/§7 machinery the paper describes but does not
evaluate:

* **AMP** (§4.1) — atomic multi-path Spider vs the non-atomic transport:
  atomicity trades partial-delivery volume for a cleaner success ratio;
* **in-network queues** (§4.2 / "future work" in §6.1) — hop-by-hop
  forwarding with router queues vs the paper's source-side queueing;
* **proportional fairness** (§5.3 closing remark) — the utility-based LP
  eliminates starved pairs at bounded throughput cost;
* **admission control** (§7) — rejecting doomed whales preserves ratio and
  spares in-flight capital, at some volume cost.

Run with::

    pytest benchmarks/bench_extensions.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import ExperimentConfig, compare_schemes
from repro.metrics import format_metrics_table, format_table

BASE = dict(
    topology="isp",
    capacity=1_500.0,
    num_transactions=1_200,
    arrival_rate=100.0,
    sizes="isp",
    seed=7,
)


def test_amp_vs_non_atomic(benchmark):
    """Atomicity ablation on Spider itself (same waterfilling allocator)."""
    config = ExperimentConfig(**BASE)
    results = run_once(
        benchmark, lambda: compare_schemes(config, ["spider-waterfilling", "spider-amp"])
    )
    by_scheme = {m.scheme: m for m in results}
    print()
    print(format_metrics_table(results, title="AMP (atomic) vs non-atomic Spider"))
    non_atomic = by_scheme["spider-waterfilling"]
    amp = by_scheme["spider-amp"]
    # §4.1: "relaxing atomicity improves network efficiency" — volume.
    assert non_atomic.success_volume >= amp.success_volume - 0.01
    # AMP stays competitive on ratio (single clean attempt).
    assert amp.success_ratio >= non_atomic.success_ratio - 0.05


def test_in_network_queues_vs_source_queueing(benchmark):
    """§4.2 in-network queues vs the paper's evaluated source queueing."""
    config = ExperimentConfig(**BASE)
    results = run_once(
        benchmark,
        lambda: compare_schemes(config, ["spider-waterfilling", "spider-queueing"]),
    )
    by_scheme = {m.scheme: m for m in results}
    print()
    print(
        format_metrics_table(
            results, title="source queueing vs in-network router queues"
        )
    )
    # The two transports are close at this load; in-network queues must not
    # collapse (they hold funds in-flight while queued, which costs some
    # capacity relative to source queueing).
    assert (
        by_scheme["spider-queueing"].success_volume
        >= by_scheme["spider-waterfilling"].success_volume - 0.10
    )


def test_admission_control_tradeoff(benchmark):
    """§7: reject unlikely-to-complete payments at arrival."""
    config = ExperimentConfig(**BASE)

    def run():
        plain = compare_schemes(config, ["spider-waterfilling"])[0]
        controlled = compare_schemes(
            config,
            ["spider-admission"],
            scheme_params={
                "spider-admission": {
                    "inner": "spider-waterfilling",
                    "admit_fraction": 0.9,
                }
            },
        )[0]
        return plain, controlled

    plain, controlled = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["variant", "ratio %", "volume %"],
            [
                ["plain waterfilling", f"{100 * plain.success_ratio:.1f}", f"{100 * plain.success_volume:.1f}"],
                ["with admission control", f"{100 * controlled.success_ratio:.1f}", f"{100 * controlled.success_volume:.1f}"],
            ],
            title="admission control (admit_fraction=0.9)",
        )
    )
    assert controlled.success_ratio >= plain.success_ratio - 0.02


def test_fee_budget_sweep(benchmark):
    """§2/§4.1: rising network fees push payments over their fee budget.

    With a 2% max-fee budget, success degrades as the per-hop proportional
    fee climbs — the economics knob the paper's §7 discussion anticipates.
    """
    from repro.experiments import fee_sweep

    config = ExperimentConfig(**BASE).with_overrides(
        capacity=3_000.0, max_fee_fraction=0.02
    )
    rates = [0.0, 0.005, 0.02, 0.05]

    results = run_once(
        benchmark, lambda: fee_sweep(config, rates, ["spider-waterfilling"])
    )
    rows = []
    for rate in rates:
        metrics = results[("spider-waterfilling", rate)]
        rows.append(
            [
                f"{100 * rate:g}%",
                f"{100 * metrics.success_ratio:.1f}",
                f"{100 * metrics.success_volume:.1f}",
                f"{metrics.total_fees_paid:,.0f}",
            ]
        )
    print()
    print(
        format_table(
            ["fee rate", "ratio %", "volume %", "fees paid"],
            rows,
            title="fee sweep under a 2% max-fee budget",
        )
    )
    series = [results[("spider-waterfilling", r)].success_volume for r in rates]
    # Success volume must be non-increasing as fees rise past the budget.
    assert series[-1] <= series[0] + 1e-9
    # Low fees fit the budget and are actually paid.
    assert results[("spider-waterfilling", 0.005)].total_fees_paid > 0.0


def test_fairness_lp_row(benchmark):
    """§5.3: proportional fairness vs max-throughput on a contended core."""
    from repro.fluid import jain_index, solve_fairness_lp, solve_fluid_lp
    from repro.fluid.paths import all_simple_paths
    from repro.topology.generators import line_topology

    adjacency = line_topology(4).adjacency()
    demands = {(0, 3): 10.0, (3, 0): 10.0, (1, 2): 10.0, (2, 1): 10.0}
    path_set = {pair: all_simple_paths(adjacency, *pair) for pair in demands}
    capacities = {(1, 2): 10.0}

    def run():
        greedy = solve_fluid_lp(
            demands, path_set, capacities=capacities, delta=1.0, balance="equality"
        )
        fair = solve_fairness_lp(demands, path_set, capacities, delta=1.0)
        return greedy, fair

    greedy, fair = run_once(benchmark, run)
    greedy_flows = [greedy.pair_flows.get(p, 0.0) for p in sorted(demands)]
    fair_flows = [fair.pair_flows[p] for p in sorted(demands)]
    print()
    print(
        format_table(
            ["objective", "throughput", "min pair flow", "Jain index"],
            [
                ["max-throughput", f"{greedy.throughput:.2f}", f"{min(greedy_flows):.2f}", f"{jain_index(greedy_flows):.3f}"],
                ["proportional fairness", f"{fair.throughput:.2f}", f"{min(fair_flows):.2f}", f"{jain_index(fair_flows):.3f}"],
            ],
            title="fairness vs throughput (shared-bottleneck line)",
        )
    )
    assert min(greedy_flows) == pytest.approx(0.0, abs=1e-6)
    assert min(fair_flows) > 0.0
    assert jain_index(fair_flows) > 0.9
