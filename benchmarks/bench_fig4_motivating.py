"""Figure 4 — the motivating example (§5.1).

Paper numbers on the 5-node topology:

* shortest-path balanced routing delivers **5** units/s (Fig. 4b);
* optimal balanced routing delivers **8** units/s (Fig. 4c);
* total demand is 12 units/s.

Run with::

    pytest benchmarks/bench_fig4_motivating.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.fluid import all_simple_paths, bfs_shortest_path, solve_fluid_lp
from repro.metrics import format_table
from repro.topology import (
    FIG4_DEMANDS,
    FIG4_OPTIMAL_THROUGHPUT,
    FIG4_SHORTEST_PATH_THROUGHPUT,
    fig4_topology,
)


@pytest.fixture(scope="module")
def adjacency():
    return fig4_topology().adjacency()


def test_fig4_shortest_path_row(benchmark, adjacency):
    """Fig. 4b: balanced routing restricted to shortest paths -> 5 units."""
    path_set = {pair: [bfs_shortest_path(adjacency, *pair)] for pair in FIG4_DEMANDS}

    solution = run_once(
        benchmark, lambda: solve_fluid_lp(FIG4_DEMANDS, path_set, balance="equality")
    )
    print()
    print(
        format_table(
            ["routing", "throughput", "paper"],
            [["shortest-path balanced", f"{solution.throughput:g}", "5"]],
            title="Fig. 4b",
        )
    )
    assert solution.throughput == pytest.approx(FIG4_SHORTEST_PATH_THROUGHPUT)


def test_fig4_optimal_row(benchmark, adjacency):
    """Fig. 4c: optimal balanced routing -> 8 units (= nu(C*))."""
    path_set = {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}

    solution = run_once(
        benchmark, lambda: solve_fluid_lp(FIG4_DEMANDS, path_set, balance="equality")
    )
    print()
    print(
        format_table(
            ["routing", "throughput", "paper"],
            [["optimal balanced", f"{solution.throughput:g}", "8"]],
            title="Fig. 4c",
        )
    )
    assert solution.throughput == pytest.approx(FIG4_OPTIMAL_THROUGHPUT)


def test_fig4_gap_shape(benchmark, adjacency):
    """The headline of §5.1: optimal balanced routing beats shortest-path
    balanced routing by 60% on this example."""
    shortest = {pair: [bfs_shortest_path(adjacency, *pair)] for pair in FIG4_DEMANDS}
    all_paths = {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}

    def both():
        a = solve_fluid_lp(FIG4_DEMANDS, shortest, balance="equality").throughput
        b = solve_fluid_lp(FIG4_DEMANDS, all_paths, balance="equality").throughput
        return a, b

    sp_value, opt_value = run_once(benchmark, both)
    assert opt_value / sp_value == pytest.approx(8.0 / 5.0)
