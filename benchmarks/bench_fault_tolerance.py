"""Robustness under churn: success vs node-outage rate.

§7 leaves "the robustness of the routing protocol" to future work; this
bench measures it.  A seeded Poisson process takes routers offline for
fixed intervals while the Fig. 6-style ISP workload runs.  Expected
shape: everyone degrades with churn; multipath packet-switched schemes
(waterfilling) degrade gracefully because remaining paths absorb the
traffic and queued payments retry after outages, while the single-path
atomic baseline (LND) loses every payment whose moment of arrival hits a
broken path.

Run with::

    pytest benchmarks/bench_fault_tolerance.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.runtime import RuntimeConfig
from repro.experiments.runner import build_runtime
from repro.metrics import format_table
from repro.network.faults import random_churn_schedule
from repro.routing import make_scheme
from repro.topology import isp_topology
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.distributions import ripple_isp_sizes

CHURN_RATES = [0.0, 0.1, 0.3]  # expected outages per second, network-wide
OUTAGE_DURATION = 3.0
SCHEMES = ["spider-waterfilling", "shortest-path", "lnd"]
DURATION = 30.0


def _run_point(scheme_name: str, churn_rate: float, topology, records):
    network = topology.build_network(default_capacity=2_000.0)
    scheme = make_scheme(scheme_name)
    runtime = build_runtime(
        network, records, scheme, RuntimeConfig(end_time=DURATION + 10.0)
    )
    schedule = random_churn_schedule(
        list(topology.nodes),
        duration=DURATION,
        churn_rate=churn_rate,
        outage_duration=OUTAGE_DURATION,
        seed=17,
    )
    schedule.install(runtime)
    metrics = runtime.run()
    network.check_invariants()
    return metrics


def test_churn_sweep(benchmark):
    """Success degrades with churn; multipath degrades most gracefully."""
    topology = isp_topology()
    workload = WorkloadConfig(
        num_transactions=1_200,
        arrival_rate=50.0,
        size_distribution=ripple_isp_sizes(),
        seed=17,
    )
    records = generate_workload(list(topology.nodes), workload)

    def run():
        return {
            (scheme, rate): _run_point(scheme, rate, topology, records)
            for scheme in SCHEMES
            for rate in CHURN_RATES
        }

    table = run_once(benchmark, run)

    rows = []
    for scheme in SCHEMES:
        row = [scheme]
        for rate in CHURN_RATES:
            metrics = table[(scheme, rate)]
            row.append(
                f"{100 * metrics.success_ratio:.1f}/{100 * metrics.success_volume:.1f}"
            )
        rows.append(row)
    print()
    print(
        format_table(
            ["scheme"] + [f"churn={r}/s" for r in CHURN_RATES],
            rows,
            title=(
                "success ratio % / success volume % under node churn "
                f"(outages last {OUTAGE_DURATION:.0f}s)"
            ),
        )
    )

    for scheme in SCHEMES:
        clean = table[(scheme, 0.0)].success_ratio
        churned = table[(scheme, CHURN_RATES[-1])].success_ratio
        assert churned <= clean + 0.02, f"{scheme}: churn should not help"

    # Graceful degradation: waterfilling under max churn keeps a larger
    # share of its clean-network ratio than single-path atomic LND.
    def retention(scheme):
        clean = table[(scheme, 0.0)].success_ratio
        churned = table[(scheme, CHURN_RATES[-1])].success_ratio
        return churned / max(clean, 1e-9)

    assert retention("spider-waterfilling") >= retention("lnd") - 0.02, (
        f"waterfilling retention {retention('spider-waterfilling'):.2f} vs "
        f"lnd {retention('lnd'):.2f}"
    )


def test_outage_recovery_timeline(benchmark):
    """Throughput collapses during a blanket outage window and recovers
    after it — queued non-atomic payments drain the backlog."""
    topology = isp_topology()
    workload = WorkloadConfig(
        num_transactions=900,
        arrival_rate=30.0,
        size_distribution=ripple_isp_sizes(),
        seed=23,
    )
    records = generate_workload(list(topology.nodes), workload)

    def run():
        from repro.network.faults import FaultSchedule, NodeOutage

        network = topology.build_network(default_capacity=3_000.0)
        # Take out a third of the routers for t in [10, 14).
        victims = sorted(topology.nodes)[::3]
        schedule = FaultSchedule(
            [NodeOutage(10.0, 14.0, node) for node in victims]
        )
        runtime = build_runtime(
            network,
            records,
            make_scheme("spider-waterfilling"),
            RuntimeConfig(end_time=40.0),
        )
        schedule.install(runtime)
        return runtime.run()

    metrics = run_once(benchmark, run)
    series = dict(metrics.throughput_series)
    during = sum(series.get(t, 0.0) for t in (11.0, 12.0, 13.0)) / 3.0
    before = sum(series.get(t, 0.0) for t in (7.0, 8.0, 9.0)) / 3.0
    after = sum(series.get(t, 0.0) for t in (15.0, 16.0, 17.0)) / 3.0
    print(
        f"\nthroughput before/during/after outage: "
        f"{before:.0f} / {during:.0f} / {after:.0f} value/s"
    )
    assert during < before * 0.8, "outage should dent throughput"
    assert after > during, "throughput should recover after the outage"
    assert metrics.success_ratio > 0.5  # the backlog does drain
