"""Shared benchmark configuration.

Scaling note (see EXPERIMENTS.md): the paper drives 200 000 transactions at
~1000 txn/s against 30 000-XRP channels.  The benchmarks run the same
*regime* at 1/10 scale — ~100 txn/s against proportionally smaller
channels — so the whole suite finishes in minutes.  Capacity values quoted
in the benchmark output therefore correspond to 10× those values in the
paper's figures.
"""

from __future__ import annotations

import pytest

#: 1/10 of the paper's 30 000 XRP per channel (uniform, split evenly).
DEFAULT_CAPACITY = 3_000.0

#: The paper's six evaluated schemes (Fig. 6) in its legend order.
FIG6_SCHEMES = [
    "spider-lp",
    "spider-waterfilling",
    "max-flow",
    "shortest-path",
    "silentwhispers",
    "speedymurmurs",
]


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation runs are seconds long and deterministic; repeated rounds
    would only slow the suite down without adding information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
