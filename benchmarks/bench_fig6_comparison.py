"""Figure 6 — the headline comparison: six schemes on ISP and Ripple (§6.2).

Paper observations reproduced here (shape, not absolute numbers — see
EXPERIMENTS.md for the scaling):

* Spider (Waterfilling) performs within ~5% of max-flow;
* non-atomic shortest-path routing beats the atomic baselines
  (SpeedyMurmurs, SilentWhispers);
* Spider (LP)'s success volume collapses toward the circulation share of
  the demand and its success ratio is hurt by never-attempted pairs;
* every scheme does worse on the Ripple-like graph than on the ISP graph
  at equal capacity (sparser connectivity, heavier transactions).

Run with::

    pytest benchmarks/bench_fig6_comparison.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DEFAULT_CAPACITY, FIG6_SCHEMES, run_once
from repro.experiments import ExperimentConfig, compare_schemes
from repro.metrics import format_metrics_table


def isp_config():
    return ExperimentConfig(
        topology="isp",
        capacity=DEFAULT_CAPACITY,
        num_transactions=2_000,
        arrival_rate=100.0,
        sizes="isp",
        seed=7,
    )


def ripple_config():
    return ExperimentConfig(
        topology="ripple-tiny",
        capacity=DEFAULT_CAPACITY,
        num_transactions=1_500,
        arrival_rate=60.0,
        sizes="ripple",
        seed=7,
    )


@pytest.mark.parametrize("topology", ["isp", "ripple"])
def test_fig6_comparison(benchmark, topology):
    """One Fig. 6 panel: all six schemes on an identical trace."""
    config = isp_config() if topology == "isp" else ripple_config()

    results = run_once(benchmark, lambda: compare_schemes(config, FIG6_SCHEMES))
    by_scheme = {m.scheme: m for m in results}
    print()
    print(
        format_metrics_table(
            results,
            title=(
                f"Fig. 6 ({topology} topology, capacity={config.capacity:g}, "
                f"{config.num_transactions} transactions)"
            ),
        )
    )

    waterfilling = by_scheme["spider-waterfilling"]
    max_flow = by_scheme["max-flow"]
    shortest = by_scheme["shortest-path"]
    silent = by_scheme["silentwhispers"]
    murmurs = by_scheme["speedymurmurs"]
    lp = by_scheme["spider-lp"]

    # §6.2: waterfilling within ~5% of max-flow.
    assert waterfilling.success_ratio >= max_flow.success_ratio - 0.05
    # §6.2: packet-switched shortest path beats the atomic baselines.
    assert shortest.success_ratio > silent.success_ratio
    assert shortest.success_ratio >= murmurs.success_ratio - 0.03
    # Spider schemes dominate the landmark/embedding baselines on volume.
    assert waterfilling.success_volume > silent.success_volume
    assert waterfilling.success_volume > murmurs.success_volume
    # Spider-LP's ratio is dragged down by zero-flow pairs.
    assert lp.success_ratio < waterfilling.success_ratio


def test_fig6_lp_volume_matches_circulation_share(benchmark):
    """§6.2: Spider (LP)'s success volume ≈ the circulation component of the
    demand's payment graph."""
    from repro.fluid import PaymentGraph, decompose_payment_graph
    from repro.workload import estimate_demand_matrix

    config = isp_config()

    def run():
        topology = config.build_topology()
        records = config.build_workload(list(topology.nodes))
        share = decompose_payment_graph(
            PaymentGraph(estimate_demand_matrix(records)), method="lp"
        ).circulation_fraction
        metrics = compare_schemes(config, ["spider-lp"])[0]
        return share, metrics

    share, metrics = run_once(benchmark, run)
    print()
    print(
        f"spider-lp success volume {100 * metrics.success_volume:.1f}% "
        f"vs circulation share {100 * share:.1f}%"
    )
    assert metrics.success_volume == pytest.approx(share, abs=0.12)
