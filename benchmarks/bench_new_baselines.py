"""Deployed-system baselines: Spider vs LND vs Celer vs windowed Spider.

The provided text evaluates against SpeedyMurmurs/SilentWhispers/max-flow
(Fig. 6); the NSDI version of the paper adds the two systems people
actually run or propose to run — the Lightning daemon's source routing
(single cheapest path, atomic, retries with pruning) and Celer's
backpressure routing — plus Spider's final windowed transport.  This
bench reproduces that comparison on the ISP topology: the expected shape
is Spider (waterfilling or windowed) on top, LND materially below (atomic
single-path wastes multipath capacity), and backpressure in between with
far higher in-network effort per delivered unit.

Run with::

    pytest benchmarks/bench_new_baselines.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_CAPACITY, run_once
from repro.experiments import ExperimentConfig, compare_schemes
from repro.metrics import format_metrics_table

SCHEMES = ["spider-waterfilling", "spider-window", "celer", "lnd", "shortest-path"]


def base_config(**overrides):
    defaults = dict(
        topology="isp",
        capacity=DEFAULT_CAPACITY / 2,  # tighter than Fig. 6 so gaps show
        num_transactions=1_500,
        arrival_rate=100.0,
        sizes="isp",
        seed=42,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_deployed_baseline_comparison(benchmark):
    """The NSDI-version headline: Spider beats the deployed baseline."""

    def run():
        return compare_schemes(base_config(), SCHEMES)

    results = run_once(benchmark, run)
    print()
    print(format_metrics_table(results, title="ISP topology, deployed baselines"))

    by_name = {m.scheme: m for m in results}
    spider = by_name["spider-waterfilling"]
    windowed = by_name["spider-window"]
    lnd = by_name["lnd"]
    celer = by_name["celer"]

    # Headline: packet-switched multipath Spider clearly outperforms the
    # deployed atomic single-path design on both metrics.
    assert spider.success_ratio > lnd.success_ratio
    assert spider.success_volume > lnd.success_volume

    # The windowed transport is Spider-class, not baseline-class: it must
    # land well above LND too (it trades a little volume for stability).
    assert windowed.success_volume > lnd.success_volume

    # Backpressure delivers meaningful volume but pays in effort; it
    # should not collapse (sanity floor) nor beat Spider here.
    assert celer.success_volume > 0.15
    assert spider.success_volume >= celer.success_volume - 0.05


def test_lnd_retry_budget_matters(benchmark):
    """The pruning loop does real work at light load; at heavy load extra
    retries *hurt* globally.

    Light load: a failed shortest path usually has a funded alternative,
    so attempts=3 beats attempts=1.  Heavy load: retried payments succeed
    over longer paths that lock more capacity per delivered unit, and the
    network-wide success ratio *drops* — the congestion externality of
    aggressive retrying that deployed Lightning networks exhibit, and one
    of the motivations for Spider's congestion control (§4.1).  Both
    regimes are printed; both directions are asserted.
    """
    from repro.experiments import run_experiment

    def run():
        light = [
            run_experiment(
                base_config(
                    scheme="lnd", scheme_params={"max_attempts": attempts},
                    capacity=1_000.0, num_transactions=500, arrival_rate=30.0,
                )
            )
            for attempts in (1, 3)
        ]
        heavy = [
            run_experiment(
                base_config(scheme="lnd", scheme_params={"max_attempts": attempts})
            )
            for attempts in (1, 6)
        ]
        return light, heavy

    light, heavy = run_once(benchmark, run)
    print()
    for label, attempts_list, rows in (
        ("light", (1, 3), light),
        ("heavy", (1, 6), heavy),
    ):
        for attempts, metrics in zip(attempts_list, rows):
            print(
                f"  {label} load, max_attempts={attempts}: "
                f"ratio {100 * metrics.success_ratio:.1f}% "
                f"volume {100 * metrics.success_volume:.1f}%"
            )
    assert light[1].success_ratio >= light[0].success_ratio
    assert heavy[1].success_ratio <= heavy[0].success_ratio + 0.01


def test_imbalance_aware_window_ablation(benchmark):
    """§4.1's imbalance-aware congestion control, measured.

    On a ring with asymmetric two-way demand (heavy clockwise, light
    counter-clockwise), scaling the additive increase by the path's
    rebalance score is throughput-neutral but leaves channels measurably
    closer to balance at moderate gain — rate aggressiveness *as a
    rebalancing tool*, exactly the paper's suggestion.
    """
    from repro.core.runtime import RuntimeConfig
    from repro.experiments.runner import build_runtime
    from repro.routing import make_scheme
    from repro.topology import cycle_topology
    from repro.workload import records_from_demand

    n = 6
    demands = {}
    for i in range(n):
        demands[(i, (i + 1) % n)] = 60.0
        demands[((i + 1) % n, i)] = 20.0
    records = records_from_demand(demands, duration=40.0, mean_size=8.0, seed=3)

    def run_variant(scheme_name, **params):
        network = cycle_topology(n).build_network(default_capacity=60.0)
        scheme = make_scheme(scheme_name, **params)
        runtime = build_runtime(
            network, records, scheme, RuntimeConfig(end_time=50.0, mtu=10.0)
        )
        return runtime.run()

    def run():
        return (
            run_variant("spider-window"),
            run_variant("spider-window-imbalance", imbalance_gain=1.0),
        )

    plain, aware = run_once(benchmark, run)
    print(
        f"\nplain window:      volume {100 * plain.success_volume:.1f}%  "
        f"mean imbalance {plain.mean_channel_imbalance:.1f}"
    )
    print(
        f"imbalance-aware:   volume {100 * aware.success_volume:.1f}%  "
        f"mean imbalance {aware.mean_channel_imbalance:.1f}"
    )
    # Throughput-neutral...
    assert abs(aware.success_volume - plain.success_volume) < 0.03
    # ...while keeping channels closer to balance.
    assert aware.mean_channel_imbalance < plain.mean_channel_imbalance
