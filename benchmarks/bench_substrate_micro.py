"""Micro-benchmarks of the substrates (engine, channels, max-flow, LP).

These are true pytest-benchmark timings (many rounds) of the hot paths that
bound how large a simulation the library can run.

Run with::

    pytest benchmarks/bench_substrate_micro.py --benchmark-only
"""

from __future__ import annotations

from repro.fluid import solve_fluid_lp
from repro.fluid.paths import k_edge_disjoint_paths
from repro.network.network import PaymentNetwork
from repro.routing.max_flow import edmonds_karp
from repro.simulator.engine import Simulator
from repro.topology import isp_topology, ripple_topology
from repro.topology.examples import FIG4_DEMANDS, fig4_topology
from repro.fluid.paths import all_simple_paths


def test_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.call_after(0.001, tick)

        sim.call_after(0.001, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_channel_lock_settle_throughput(benchmark):
    """Lock+settle 1k HTLCs on one channel."""

    def run():
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 1_000_000.0)
        for _ in range(500):
            htlc = channel.lock(0, 10.0)
            channel.settle(htlc)
            htlc = channel.lock(1, 10.0)
            channel.settle(htlc)
        return channel.num_settled

    assert benchmark(run) == 1_000


def test_path_lock_rollback(benchmark):
    """Atomic path locking with rollback pressure on a line network."""
    from repro.topology import line_topology

    def run():
        network = line_topology(6).build_network(default_capacity=100.0)
        done = 0
        for _ in range(200):
            htlcs = network.lock_path((0, 1, 2, 3, 4, 5), 0.25)
            network.settle_path((0, 1, 2, 3, 4, 5), htlcs)
            done += 1
        return done

    assert benchmark(run) == 200


def test_max_flow_on_isp_balances(benchmark):
    """One max-flow computation at ISP scale (the per-transaction cost the
    paper calls prohibitive, §3)."""
    network = isp_topology().build_network(default_capacity=3_000.0)
    capacity = {}
    for channel in network.channels():
        a, b = channel.endpoints
        capacity[(a, b)] = channel.balance(a)
        capacity[(b, a)] = channel.balance(b)

    value, _ = benchmark(lambda: edmonds_karp(capacity, 8, 20))
    assert value > 0


def test_k_disjoint_paths_on_ripple(benchmark):
    """Path-set computation on the Ripple-like graph."""
    adjacency = ripple_topology("small", seed=0).adjacency()

    paths = benchmark(lambda: k_edge_disjoint_paths(adjacency, 0, 150, 4))
    assert paths


def test_fluid_lp_on_fig4(benchmark):
    """The complete-path-set balanced LP on the example graph."""
    adjacency = fig4_topology().adjacency()
    path_set = {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}

    solution = benchmark(
        lambda: solve_fluid_lp(FIG4_DEMANDS, path_set, balance="equality")
    )
    assert solution.throughput > 0
