"""Micro-benchmarks of the substrates (engine, channels, max-flow, LP).

These are true pytest-benchmark timings (many rounds) of the hot paths that
bound how large a simulation the library can run.

Run with::

    pytest benchmarks/bench_substrate_micro.py --benchmark-only

The module is also directly executable as the engine-comparison smoke run
used by CI (finishes in seconds)::

    python benchmarks/bench_substrate_micro.py --out BENCH_substrate.json

which times the legacy float-time ``Simulator`` against the new slab-queue
``TickEngine`` on two event workloads (chained timers = shallow heap,
pre-scheduled fan-out = deep heap), the hop-by-hop queueing transport
(``spider-queueing`` on a congested line) with scalar vs. vectorised
path operations, the ``path_ops`` microbenchmark (batch bottleneck
probes and lock+settle round-trips through the PathTable vs. the scalar
loops), the ``signals`` microbenchmark (ControlPlane price updates and
mark scans, vectorised vs. scalar), the ``path_discovery``
microbenchmark (k-edge-disjoint pairs/sec on the 10k-node Ripple-like
graph: scalar per-pair BFS vs. the CSR array-frontier provider, cold vs.
memoised vs. disk-artifact warm), the ``dispatch`` microbenchmark (the
macro-tick cohort pipeline vs. the scalar per-payment poll loop on the
10k-node graph, plus a same-tick burst sweep at cohort sizes 1/16/256),
and a bounded ``scale`` smoke (a 10k-node Ripple-like waterfilling run
under both dispatch modes — asserting byte-identical metrics at scale —
plus a parallel SweepExecutor grid exercising the persistent path cache;
``prepare()`` — discovery, prefetch, trace scheduling — is timed apart
from the event loop), and the ``sharding`` section (one locality-weighted
run on the 10k-node Ripple-like graph executed serially vs. split across
4 forked shard workers over the shared-memory ChannelStateStore —
asserting byte-identical metrics between the two plans — with a 100k-node
scale-free leg behind ``REPRO_SLOW_TESTS=1``), recording events/sec and
speedups for all of them.
Pass ``--assert-floor`` to fail when native hop-by-hop throughput
regresses below 0.8x the previously recorded value, when either signals
kernel drops under its 3x acceptance floor, when CSR path discovery
falls under 3x the scalar BFS, when macro-tick dispatch at cohort 256
drops under its 2x floor, when the scale smoke's txn/s falls below
0.8x the recorded value with the scalar-vs-macro-tick speedup also
below 0.8x its recorded ratio, or when the sharding section loses
serial/parallel parity or posts under its 2x wall-clock speedup at
4 shards (the speedup clause is waived, and recorded as waived, on
single-core hosts where forked workers time-slice one CPU) — the CI
gate.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.engine.events import TickEngine
from repro.fluid import solve_fluid_lp
from repro.fluid.paths import k_edge_disjoint_paths
from repro.network.network import PaymentNetwork
from repro.routing.max_flow import edmonds_karp
from repro.simulator.engine import Simulator
from repro.topology import isp_topology, ripple_topology
from repro.topology.examples import FIG4_DEMANDS, fig4_topology
from repro.fluid.paths import all_simple_paths


# ----------------------------------------------------------------------
# Event-engine workloads (shared by the pytest benchmarks and the smoke
# comparison): chained timers keep the heap shallow and stress per-event
# overhead; the fan-out pre-schedules every event, so the heap is deep and
# ordering comparisons dominate.
# ----------------------------------------------------------------------
def _chained_legacy(n: int) -> int:
    sim = Simulator()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < n:
            sim.call_after(0.001, tick)

    sim.call_after(0.001, tick)
    sim.run()
    return count


def _chained_tick(n: int) -> int:
    eng = TickEngine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < n:
            eng.schedule_after(0.001, tick)

    eng.schedule_after(0.001, tick)
    eng.run()
    return count


def _fanout_legacy(n: int) -> int:
    sim = Simulator()
    count = 0

    def fire():
        nonlocal count
        count += 1

    for i in range(n):
        sim.call_at(((i * 2654435761) % n) * 0.001, fire)
    sim.run()
    return count


def _fanout_tick(n: int) -> int:
    eng = TickEngine()
    count = 0

    def fire():
        nonlocal count
        count += 1

    for i in range(n):
        eng.schedule_at_tick(((i * 2654435761) % n) * 1000, fire)
    eng.run()
    return count


def test_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events on the legacy engine."""
    assert benchmark(_chained_legacy, 10_000) == 10_000


def test_tick_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events on the new slab-queue engine."""
    assert benchmark(_chained_tick, 10_000) == 10_000


def test_tick_engine_fanout_throughput(benchmark):
    """Drain 10k pre-scheduled events (deep heap) on the new engine."""
    assert benchmark(_fanout_tick, 10_000) == 10_000


def test_channel_lock_settle_throughput(benchmark):
    """Lock+settle 1k HTLCs on one channel."""

    def run():
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 1_000_000.0)
        for _ in range(500):
            htlc = channel.lock(0, 10.0)
            channel.settle(htlc)
            htlc = channel.lock(1, 10.0)
            channel.settle(htlc)
        return channel.num_settled

    assert benchmark(run) == 1_000


def test_path_lock_rollback(benchmark):
    """Atomic path locking with rollback pressure on a line network."""
    from repro.topology import line_topology

    def run():
        network = line_topology(6).build_network(default_capacity=100.0)
        done = 0
        for _ in range(200):
            htlcs = network.lock_path((0, 1, 2, 3, 4, 5), 0.25)
            network.settle_path((0, 1, 2, 3, 4, 5), htlcs)
            done += 1
        return done

    assert benchmark(run) == 200


def test_pathtable_batch_probe(benchmark):
    """Batch bottleneck probe of 48 k-path sets through the PathTable."""
    network, path_sets = _path_ops_fixture(num_pairs=48)
    table = network.path_table
    for paths in path_sets:
        table.bottleneck_many(paths)

    def run():
        total = 0.0
        for paths in path_sets:
            total += table.bottleneck_many(paths, refresh=True)[0]
        return total

    assert benchmark(run) > 0


def test_pathtable_scalar_probe(benchmark):
    """The same probe workload through the scalar per-hop loops."""
    network, path_sets = _path_ops_fixture(num_pairs=48)

    def run():
        total = 0.0
        for paths in path_sets:
            for path in paths:
                network._validate_path(path)
                total += min(
                    network.available(a, b) for a, b in zip(path, path[1:])
                )
        return total

    assert benchmark(run) > 0


def test_max_flow_on_isp_balances(benchmark):
    """One max-flow computation at ISP scale (the per-transaction cost the
    paper calls prohibitive, §3)."""
    network = isp_topology().build_network(default_capacity=3_000.0)
    capacity = {}
    for channel in network.channels():
        a, b = channel.endpoints
        capacity[(a, b)] = channel.balance(a)
        capacity[(b, a)] = channel.balance(b)

    value, _ = benchmark(lambda: edmonds_karp(capacity, 8, 20))
    assert value > 0


def test_k_disjoint_paths_on_ripple(benchmark):
    """Path-set computation on the Ripple-like graph."""
    adjacency = ripple_topology("small", seed=0).adjacency()

    paths = benchmark(lambda: k_edge_disjoint_paths(adjacency, 0, 150, 4))
    assert paths


def test_fluid_lp_on_fig4(benchmark):
    """The complete-path-set balanced LP on the example graph."""
    adjacency = fig4_topology().adjacency()
    path_set = {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}

    solution = benchmark(
        lambda: solve_fluid_lp(FIG4_DEMANDS, path_set, balance="equality")
    )
    assert solution.throughput > 0


# ----------------------------------------------------------------------
# Engine-comparison smoke run (CI: writes BENCH_substrate.json in seconds)
# ----------------------------------------------------------------------
def _events_per_second(fn, n: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fired = fn(n)
        elapsed = time.perf_counter() - start
        assert fired == n
        best = min(best, elapsed)
    return n / best


def run_engine_comparison(events: int = 100_000, repeats: int = 3) -> dict:
    """Legacy vs. tick-engine events/sec on both workloads.

    Returns the result dict written to ``BENCH_substrate.json``; the
    headline ``speedup`` is total events over total best-case time, so both
    workloads weigh in.
    """
    results = {}
    for workload, legacy_fn, tick_fn in (
        ("chained", _chained_legacy, _chained_tick),
        ("fanout", _fanout_legacy, _fanout_tick),
    ):
        legacy_eps = _events_per_second(legacy_fn, events, repeats)
        tick_eps = _events_per_second(tick_fn, events, repeats)
        results[workload] = {
            "events": events,
            "legacy_events_per_sec": round(legacy_eps),
            "tick_events_per_sec": round(tick_eps),
            "speedup": round(tick_eps / legacy_eps, 3),
        }
    total_legacy = sum(
        r["events"] / r["legacy_events_per_sec"] for r in results.values()
    )
    total_tick = sum(r["events"] / r["tick_events_per_sec"] for r in results.values())
    return {
        "benchmark": "engine_event_throughput",
        "workloads": results,
        "speedup": round(total_legacy / total_tick, 3),
    }


# ----------------------------------------------------------------------
# Hop-by-hop transport comparison: the §4.2 in-network-queue scheme on a
# congested line through the native session transport, with the scalar
# per-hop path operations vs. the vectorised PathTable kernels.  (The
# legacy QueueingRuntime is a thin shim over the same transport now, so
# the interesting axis is scalar-vs-vectorised path ops, not engines.)
# ----------------------------------------------------------------------
def _hop_config(num_transactions: int):
    from repro.experiments.config import ExperimentConfig

    # Capacity below offered load so units park at routers: the run
    # exercises enqueue/timeout/service, not just the happy path.
    return ExperimentConfig(
        scheme="spider-queueing",
        topology="line-5",
        capacity=600.0,
        num_transactions=num_transactions,
        arrival_rate=100.0,
        seed=11,
    )


def run_hop_transport_comparison(transactions: int = 1_500, repeats: int = 3) -> dict:
    """Scalar vs. vectorised events/sec on the hop-by-hop workload.

    Both runs replay the identical seeded trace on the native session
    engine; only ``PaymentNetwork.vectorized_path_ops`` differs, so the
    ``speedup`` isolates exactly what the PathTable buys end to end.
    Construction stays outside the timed region — the timer covers
    ``run()``, i.e. event dispatch plus the scheme's per-poll routing
    work.
    """
    from repro.engine.session import SimulationSession
    from repro.network.network import PaymentNetwork

    def _measure(vectorized: bool):
        best_elapsed, events = float("inf"), 0
        previous = PaymentNetwork.vectorized_path_ops
        PaymentNetwork.vectorized_path_ops = vectorized
        try:
            for _ in range(repeats):
                session = SimulationSession.from_config(_hop_config(transactions))
                start = time.perf_counter()
                session.run()
                elapsed = time.perf_counter() - start
                if session._delegate is not None:  # would time the legacy path
                    raise RuntimeError("hop scheme fell back to the legacy runtime")
                events = session.events_processed
                best_elapsed = min(best_elapsed, elapsed)
        finally:
            PaymentNetwork.vectorized_path_ops = previous
        return best_elapsed, events

    scalar_time, scalar_events = _measure(vectorized=False)
    native_time, native_events = _measure(vectorized=True)
    return {
        "transactions": transactions,
        "scalar_events": scalar_events,
        "scalar_events_per_sec": round(scalar_events / scalar_time),
        "native_events": native_events,
        "native_events_per_sec": round(native_events / native_time),
        "speedup": round(scalar_time / native_time, 3),
    }


# ----------------------------------------------------------------------
# Path-operation microbenchmark: batch bottleneck probes and lock+settle
# round-trips on a Ripple-scale store, scalar loops vs. PathTable kernels.
# ----------------------------------------------------------------------
def _path_ops_fixture(num_pairs: int = 48, k: int = 4):
    """A Ripple-like network plus ``num_pairs`` k-path sets over it."""
    from repro.routing.base import PathCache
    from repro.simulator.rng import make_rng

    network = ripple_topology("small", seed=0).build_network(default_capacity=200.0)
    cache = PathCache.from_network(network, k=k)
    rng = make_rng(7)
    nodes = sorted(network.nodes())
    path_sets = []
    while len(path_sets) < num_pairs:
        source, dest = rng.choice(len(nodes), size=2, replace=False)
        paths = cache.paths(nodes[int(source)], nodes[int(dest)])
        if paths:
            path_sets.append(paths)
    return network, path_sets


def run_path_ops_microbench(
    num_pairs: int = 48, iterations: int = 200, repeats: int = 3
) -> dict:
    """Scalar vs. vectorised path operations on one shared store.

    * ``bottleneck_batch``: probes/sec scoring a whole k-path set (one
      pair) per probe.  The vectorised side is forced to recompute
      (``refresh=True``) so the number times the gather + masked min, not
      the memoisation.
    * ``lock_settle``: lock+settle round-trips/sec along one path
      (forward then reverse, so balances are restored and the timing is
      steady-state).
    """
    network, path_sets = _path_ops_fixture(num_pairs=num_pairs)
    table = network.path_table
    for paths in path_sets:  # compile outside the timed region
        table.bottleneck_many(paths)

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def scalar_probe_all():
        for paths in path_sets:
            for path in paths:
                # The pre-PathTable loop: validate + per-hop dict walk.
                network._validate_path(path)
                min(network.available(a, b) for a, b in zip(path, path[1:]))

    def vector_probe_all():
        for paths in path_sets:
            table.bottleneck_many(paths, refresh=True)

    def cached_probe_all():
        for paths in path_sets:
            table.bottleneck_many(paths)

    probes = num_pairs * iterations
    scalar_time = best_of(lambda: [scalar_probe_all() for _ in range(iterations)])
    vector_time = best_of(lambda: [vector_probe_all() for _ in range(iterations)])
    cached_time = best_of(lambda: [cached_probe_all() for _ in range(iterations)])

    # Lock+settle round-trips on one mid-length path, forward then reverse.
    path = max((p for paths in path_sets for p in paths), key=len)
    reverse = tuple(reversed(path))
    trips = 4 * iterations

    def scalar_round_trips():
        network.use_path_table = False
        try:
            for _ in range(2 * iterations):
                for p in (path, reverse):
                    network.settle_path(p, network.lock_path(p, 1.0))
        finally:
            network.use_path_table = True

    def vector_round_trips():
        for _ in range(2 * iterations):
            for p in (path, reverse):
                network.settle_path(p, network.lock_path(p, 1.0))

    scalar_lock_time = best_of(scalar_round_trips)
    vector_lock_time = best_of(vector_round_trips)

    return {
        "network": {"nodes": network.num_nodes, "channels": network.num_channels},
        "path_sets": num_pairs,
        "bottleneck_batch": {
            "scalar_probes_per_sec": round(probes / scalar_time),
            "vectorised_probes_per_sec": round(probes / vector_time),
            "cached_probes_per_sec": round(probes / cached_time),
            "speedup": round(scalar_time / vector_time, 3),
        },
        "lock_settle": {
            "path_hops": len(path) - 1,
            "scalar_round_trips_per_sec": round(trips / scalar_lock_time),
            "vectorised_round_trips_per_sec": round(trips / vector_lock_time),
            "speedup": round(scalar_lock_time / vector_lock_time, 3),
        },
    }


# ----------------------------------------------------------------------
# Congestion-signal microbenchmark: the ControlPlane's vectorised price
# updates and mark scans against the scalar parity baselines they replace
# (the per-object PriceTable loop and the per-unit mark branch).
# ----------------------------------------------------------------------
class _ScanUnit:
    """Minimal stand-in for a HopUnit in the mark-scan benchmark."""

    __slots__ = ("marked",)

    def __init__(self):
        self.marked = False


def run_signals_microbench(
    iterations: int = 200, batch: int = 2048, repeats: int = 3
) -> dict:
    """Scalar vs. vectorised congestion signalling on one shared store.

    * ``price_update``: channel price updates/sec through a
      ``PriceTable`` driving a realistic observe-then-update control loop
      (8 path observations per dual step).  Vectorised mode runs
      :meth:`ControlPlane.update_prices` (a handful of array ops across
      every channel); scalar mode loops the per-channel
      ``ChannelPriceState`` objects.
    * ``mark_scan``: serviced-unit scans/sec through
      :meth:`ControlPlane.observe_service` on a large service batch —
      one array comparison vs. the per-unit Python branch.
    """
    from repro.core.prices import PriceTable
    from repro.engine.signals import ControlPlane
    from repro.simulator.rng import make_rng

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def measure_prices(vectorized: bool):
        previous = ControlPlane.vectorized_signals
        ControlPlane.vectorized_signals = vectorized
        try:
            network, path_sets = _path_ops_fixture(num_pairs=16)
            table = PriceTable(network, delta=0.5)
            paths = [path for paths in path_sets for path in paths][:8]
            for path in paths:  # compile outside the timed region
                table.observe_path(path, 1.0)
            table.update_all(dt=1.0, eta=0.1, kappa=0.1)

            def run():
                for _ in range(iterations):
                    for path in paths:
                        table.observe_path(path, 5.0)
                    table.update_all(dt=1.0, eta=0.1, kappa=0.1)

            elapsed = best_of(run)
        finally:
            ControlPlane.vectorized_signals = previous
        return iterations * network.num_channels / elapsed, network.num_channels

    def measure_marks(vectorized: bool):
        previous = ControlPlane.vectorized_signals
        ControlPlane.vectorized_signals = vectorized
        try:
            network = PaymentNetwork()
            network.add_channel(0, 1, 1000.0)
            control = network.control_plane
            control.configure_marking(0.75)
            rng = make_rng(5)
            delays = [float(d) for d in rng.uniform(0.0, 1.0, size=batch)]
            units = [_ScanUnit() for _ in range(batch)]

            def run():
                for _ in range(iterations):
                    control.observe_service(0, 0, delays, units)

            elapsed = best_of(run)
        finally:
            ControlPlane.vectorized_signals = previous
        return iterations * batch / elapsed

    scalar_price, channels = measure_prices(vectorized=False)
    vector_price, _ = measure_prices(vectorized=True)
    scalar_scan = measure_marks(vectorized=False)
    vector_scan = measure_marks(vectorized=True)
    return {
        "channels": channels,
        "price_update": {
            "scalar_updates_per_sec": round(scalar_price),
            "vectorised_updates_per_sec": round(vector_price),
            "speedup": round(vector_price / scalar_price, 3),
        },
        "mark_scan": {
            "batch": batch,
            "scalar_scans_per_sec": round(scalar_scan),
            "vectorised_scans_per_sec": round(vector_scan),
            "speedup": round(vector_scan / scalar_scan, 3),
        },
    }


# ----------------------------------------------------------------------
# Path-discovery microbenchmark: k edge-disjoint shortest paths on the
# 10k-node Ripple-like graph — the per-pair scalar BFS the seed ran vs.
# the PathService's CSR array-frontier provider, plus the memoised and
# disk-artifact warm paths (cold vs. cached).
# ----------------------------------------------------------------------
def run_path_discovery_microbench(
    num_pairs: int = 48, k: int = 4, repeats: int = 3
) -> dict:
    """Pairs/sec of scalar vs. CSR discovery on ripple-huge, cold vs. warm.

    All modes resolve the identical pair list and are asserted
    byte-identical.  ``speedup`` is CSR-cold over scalar-cold — both sides
    timed on this machine in the same run, so the ratio is
    hardware-independent (the ≥5x ripple-huge acceptance number).
    ``cached`` times the in-process PersistentCache memo hit and
    ``disk_warm`` a fresh process-level store serving the persisted
    artifact.
    """
    import tempfile

    from repro.engine.pathservice import (
        CsrDisjointProvider,
        CsrGraph,
        PathService,
        PersistentCache,
        ScalarDisjointProvider,
    )
    from repro.simulator.rng import make_rng

    adjacency = {
        node: sorted(neighbours)
        for node, neighbours in ripple_topology("huge", seed=0)
        .adjacency()
        .items()
    }
    build_start = time.perf_counter()
    graph = CsrGraph.from_adjacency(adjacency)
    graph.edge_positions  # the masking index, also built once per graph
    build_elapsed = time.perf_counter() - build_start
    nodes = sorted(adjacency)
    rng = make_rng(3)
    pairs = [
        (nodes[int(a)], nodes[int(b)])
        for a, b in (
            rng.choice(len(nodes), size=2, replace=False)
            for _ in range(num_pairs)
        )
    ]

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    scalar = ScalarDisjointProvider(adjacency, k)
    csr = CsrDisjointProvider(graph, k)
    expected = scalar.paths_many(pairs)
    assert csr.paths_many(pairs) == expected  # byte-identical discovery
    scalar_time = best_of(lambda: scalar.paths_many(pairs))
    csr_time = best_of(lambda: csr.paths_many(pairs))

    with tempfile.TemporaryDirectory() as tmp:
        PersistentCache.clear_shared()
        service = PathService.from_adjacency(adjacency, cache_dir=tmp)
        service.prepare(pairs, k=k)  # populate memo + write the artifact
        assert service.paths_many(pairs, k=k) == expected
        cached_time = best_of(lambda: service.paths_many(pairs, k=k))
        PersistentCache.clear_shared()
        disk_start = time.perf_counter()
        warm = PathService.from_adjacency(adjacency, cache_dir=tmp)
        loaded = warm.paths_many(pairs, k=k)
        disk_time = time.perf_counter() - disk_start
        assert loaded == expected
        PersistentCache.clear_shared()

    return {
        "network": {
            "nodes": len(nodes),
            "channels": int(graph.indices.shape[0] // 2),
        },
        "pairs": num_pairs,
        "k": k,
        "csr_build_seconds": round(build_elapsed, 3),
        "scalar_pairs_per_sec": round(num_pairs / scalar_time, 1),
        "csr_pairs_per_sec": round(num_pairs / csr_time, 1),
        "speedup": round(scalar_time / csr_time, 3),
        "cached_pairs_per_sec": round(num_pairs / cached_time),
        "disk_warm_pairs_per_sec": round(num_pairs / disk_time, 1),
    }


# ----------------------------------------------------------------------
# Dispatch microbenchmark: the macro-tick cohort pipeline vs the scalar
# per-payment loop, on the 10k-node graph.  prepare() — transport build,
# CSR discovery, pair prefetch, trace scheduling — runs outside the timed
# region in both modes, so the numbers isolate the dispatch loop itself.
# ----------------------------------------------------------------------
def run_dispatch_microbench(
    transactions: int = 600, preset: str = "huge", sweep_total: int = 512
) -> dict:
    """Scalar vs vectorised dispatch throughput, cohort sweep, fee workload.

    The sweep re-stamps one seeded trace into arrival bursts of 1, 16 and
    256 same-tick payments (total volume held fixed), measuring how the
    cohort kernels scale with burst size: at cohort 1 the two modes do
    nearly identical work, at 256 the batched probe/lock path amortises
    the per-payment Python glue the scalar loop pays every time.

    Event counts are **not** comparable across modes — the vectorised
    loop coalesces a same-tick burst into one cohort event where the
    scalar loop fires one event per payment — so each cell reports
    per-mode event counts for context and puts the modes on the common
    denominator that is actually fixed: transactions processed per
    second.  ``speedup`` is plain wall-clock (scalar time / vectorised
    time) over the identical workload.

    ``fee_workload`` times a ripple-style fee-bearing trace (proportional
    fee schedule, 64-payment same-tick bursts whose hot-pair path sets
    overlap heavily) and records the DispatchPlan counters: under the
    PR 6 envelope every fee-bearing payment took the scalar fallback
    (fallback rate 1.0 by construction — ``batchable`` required
    ``fee_free``); the fee-aware residual replay must hold the rate at
    least 5x lower and keep a >=2x wall-clock speedup.
    """
    from dataclasses import replace as dc_replace

    from repro.engine.session import SimulationSession
    from repro.experiments.config import ExperimentConfig

    base = ExperimentConfig(
        scheme="spider-waterfilling",
        topology=f"ripple-{preset}",
        capacity=500.0,
        num_transactions=transactions,
        arrival_rate=250.0,
        seed=23,
    )

    def measure(config, vectorized: bool, records=None):
        """(events fired, seconds, dispatch stats) of one event loop.

        ``prepare()`` (scheme prep, probe/profile priming, trace
        scheduling) runs untimed; the timed region is the tick-engine
        loop alone — no end-of-run metrics finalisation, which scans all
        33k channels and would swamp these sub-second loops.
        """
        assert SimulationSession.vectorized_dispatch  # default stays on
        SimulationSession.vectorized_dispatch = vectorized
        try:
            network, trace, scheme = config.build_simulation_inputs()
            session = SimulationSession(
                network,
                records if records is not None else trace,
                scheme,
                config.build_runtime_config(),
            )
            session.prepare()
            start = time.perf_counter()
            session.sim.run(until=session.end_time)
            elapsed = time.perf_counter() - start
        finally:
            SimulationSession.vectorized_dispatch = True
        return session.events_processed, elapsed, session.dispatch_stats()

    def best_of(config, vectorized: bool, records=None, repeats: int = 3):
        events, times, stats = 0, [], {}
        for _ in range(repeats):
            events, elapsed, stats = measure(config, vectorized, records)
            times.append(elapsed)
        return events, min(times), stats

    # First scalar call warms the shared discovery cache so the sweep
    # compares dispatch loops, not cold-vs-warm path discovery (only the
    # vectorised mode prefetches pairs inside its untimed prepare()).
    scalar_events, scalar_time, _ = best_of(base, False)
    native_events, native_time, _ = best_of(base, True)
    report = {
        "transactions": transactions,
        "scalar_events_per_sec": round(scalar_events / scalar_time),
        "vectorized_events_per_sec": round(native_events / native_time),
        "speedup": round(scalar_time / native_time, 3),
        "cohort_sweep": {},
    }

    _, trace, _ = base.build_simulation_inputs()
    trace = trace[:sweep_total]
    for cohort in (1, 16, 256):
        burst_gap = 0.2 * cohort  # keep offered load per second comparable
        bursts = [
            dc_replace(record, arrival_time=round((i // cohort) * burst_gap, 6))
            for i, record in enumerate(trace)
        ]
        scalar_events, scalar_time, _ = best_of(base, False, records=bursts)
        native_events, native_time, _ = best_of(base, True, records=bursts)
        report["cohort_sweep"][str(cohort)] = {
            "transactions": len(bursts),
            "scalar_events": scalar_events,
            "vectorized_events": native_events,
            "scalar_txns_per_sec": round(len(bursts) / scalar_time, 1),
            "vectorized_txns_per_sec": round(len(bursts) / native_time, 1),
            "speedup": round(scalar_time / native_time, 3),
        }

    fee_config = ExperimentConfig(
        scheme="spider-waterfilling",
        topology=f"ripple-{preset}",
        capacity=500.0,
        num_transactions=transactions,
        arrival_rate=250.0,
        seed=23,
        base_fee=0.01,
        fee_rate=0.001,
        max_fee_fraction=0.25,
    )
    _, fee_trace, _ = fee_config.build_simulation_inputs()
    fee_trace = fee_trace[:sweep_total]
    fee_bursts = [
        dc_replace(record, arrival_time=round((i // 64) * 12.8, 6))
        for i, record in enumerate(fee_trace)
    ]
    scalar_events, scalar_time, _ = best_of(fee_config, False, records=fee_bursts)
    native_events, native_time, stats = best_of(
        fee_config, True, records=fee_bursts
    )
    cohort_payments = stats.get("cohort_payments", 0)
    fallbacks = stats.get("scalar_fallbacks", 0)
    report["fee_workload"] = {
        "transactions": len(fee_bursts),
        "scalar_events": scalar_events,
        "vectorized_events": native_events,
        "scalar_txns_per_sec": round(len(fee_bursts) / scalar_time, 1),
        "vectorized_txns_per_sec": round(len(fee_bursts) / native_time, 1),
        "speedup": round(scalar_time / native_time, 3),
        "cohorts": stats.get("cohorts", 0),
        "cohort_payments": cohort_payments,
        "batched_units": stats.get("batched_units", 0),
        "scalar_fallbacks": fallbacks,
        "fallback_rate": round(fallbacks / cohort_payments, 4)
        if cohort_payments
        else None,
        # The PR 6 staging rules required fee-free path sets, so this
        # workload's fallback rate was 1.0 by construction — kept as the
        # reference envelope the floor gate measures the drop against.
        "pr6_envelope_fallback_rate": 1.0,
    }
    return report


# ----------------------------------------------------------------------
# Scale smoke: a 10k-node Ripple-like topology through the session engine
# and a parallel SweepExecutor grid (bounded runtime; the CI smoke runs it
# and BENCH_substrate.json keeps the numbers).
# ----------------------------------------------------------------------
def run_scale_smoke(
    transactions: int = 600, preset: str = "huge", processes: int = 2
) -> dict:
    """One bounded waterfilling run at 10k-node scale, plus a 2-cell sweep.

    Records events/sec and transactions/sec of the direct session run
    (since PR 5 path discovery runs through the CSR PathService, so event
    dispatch and scheme-side probing are back in front; the macro-tick
    PR then split one-time ``prepare()`` — discovery, pair prefetch,
    trace scheduling — out of the timed loop, reported as
    ``prepare_seconds``) and the wall time of the same workload fanned
    out across SweepExecutor workers with the persistent path cache
    active — the parent precomputes each topology's pair sets once and
    every worker loads the artifact from disk.

    The run is measured best-of-2 (sub-100ms loops are jittery), then
    repeated once with ``vectorized_dispatch = False``: the scalar run's
    serialised metrics must match the macro-tick run's byte for byte —
    the at-scale parity check — and the wall ratio is recorded as
    ``dispatch_speedup``, giving the floor gate a hardware-independent
    signal alongside the absolute txn/s.
    """
    import tempfile

    from repro.engine.pathservice import PersistentCache
    from repro.engine.session import SimulationSession
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.executor import SweepExecutor
    from repro.metrics.report import metrics_to_json

    base = ExperimentConfig(
        scheme="spider-waterfilling",
        topology=f"ripple-{preset}",
        capacity=500.0,
        num_transactions=transactions,
        arrival_rate=250.0,
        seed=23,
    )
    PersistentCache.clear_shared()
    build_start = time.perf_counter()
    session = SimulationSession.from_config(base)
    build_elapsed = time.perf_counter() - build_start
    network = session.network
    prepare_start = time.perf_counter()
    session.prepare()
    prepare_elapsed = time.perf_counter() - prepare_start
    run_start = time.perf_counter()
    metrics = session.run()
    run_elapsed = time.perf_counter() - run_start
    events_fired = session.events_processed

    rerun = SimulationSession.from_config(base)
    rerun.prepare()
    rerun_start = time.perf_counter()
    rerun_metrics = rerun.run()
    run_elapsed = min(run_elapsed, time.perf_counter() - rerun_start)
    assert metrics_to_json(rerun_metrics) == metrics_to_json(metrics)

    assert SimulationSession.vectorized_dispatch
    SimulationSession.vectorized_dispatch = False
    try:
        scalar_session = SimulationSession.from_config(base)
        scalar_session.prepare()
        scalar_start = time.perf_counter()
        scalar_metrics = scalar_session.run()
        scalar_elapsed = time.perf_counter() - scalar_start
    finally:
        SimulationSession.vectorized_dispatch = True
    # The at-scale dispatch parity pin: both modes must serialise the
    # identical metrics on the 10k-node run, not just the test topologies.
    assert metrics_to_json(scalar_metrics) == metrics_to_json(metrics)

    PersistentCache.clear_shared()  # sweep workers start cold, like CI
    with tempfile.TemporaryDirectory() as path_cache_dir:
        executor = SweepExecutor(
            base,
            processes=processes,
            cache_dir=None,
            path_cache_dir=path_cache_dir,
        )
        sweep_start = time.perf_counter()
        sweep = executor.capacity_sweep([400.0, 600.0], ["spider-waterfilling"])
        sweep_elapsed = time.perf_counter() - sweep_start
        path_artifacts = len(os.listdir(path_cache_dir))
    return {
        "network": {"nodes": network.num_nodes, "channels": network.num_channels},
        "transactions": transactions,
        "build_seconds": round(build_elapsed, 2),
        "prepare_seconds": round(prepare_elapsed, 2),
        "run_seconds": round(run_elapsed, 3),
        "events_per_sec": round(events_fired / run_elapsed),
        "transactions_per_sec": round(transactions / run_elapsed, 1),
        "scalar_run_seconds": round(scalar_elapsed, 3),
        "scalar_events_per_sec": round(
            scalar_session.events_processed / scalar_elapsed
        ),
        "dispatch_speedup": round(scalar_elapsed / run_elapsed, 2),
        "dispatch_parity": True,
        "success_ratio": round(metrics.success_ratio, 4),
        "sweep": {
            "cells": len(sweep),
            "processes": processes,
            "wall_seconds": round(sweep_elapsed, 2),
            "path_artifacts": path_artifacts,
        },
    }


# ----------------------------------------------------------------------
# Spatial sharding: one run partitioned across worker processes over the
# shared-memory store (serial parity plan vs forked shard workers).
# ----------------------------------------------------------------------
def _locality_trace(
    adjacency, partition, transactions: int, arrival_rate: float,
    cross_fraction: float = 0.1, seed: int = 31,
):
    """A locality-weighted trace: most pairs are graph-near within a segment.

    Spatial sharding only parallelises traffic whose candidate paths stay
    inside a segment, so the benchmark workload models the regime the
    layer targets (geographically clustered payment demand): local pairs
    take a short random walk over in-segment edges from a random node —
    their shortest paths rarely leave the segment — while the
    ``cross_fraction`` remainder is drawn network-wide and lands in the
    boundary lane.
    """
    from repro.simulator.rng import make_rng
    from repro.workload.generator import TransactionRecord

    rng = make_rng(seed)
    nodes = sorted(adjacency)
    segment_of = partition.segment_of
    in_segment = {
        node: [n for n in adjacency[node] if segment_of(n) == segment_of(node)]
        for node in nodes
    }
    records = []
    now = 0.0
    for txn_id in range(transactions):
        now += float(rng.exponential(1.0 / arrival_rate))
        source = dest = nodes[int(rng.integers(len(nodes)))]
        if rng.uniform() >= cross_fraction:
            for _ in range(1 + int(rng.integers(2))):  # 1-2 in-segment hops
                steps = in_segment[dest]
                if not steps:
                    break
                dest = steps[int(rng.integers(len(steps)))]
        if source == dest:  # isolated-in-segment node or the walk looped
            a, b = rng.choice(len(nodes), size=2, replace=False)
            source, dest = nodes[int(a)], nodes[int(b)]
        amount = round(float(rng.uniform(1.0, 10.0)), 2)
        records.append(
            TransactionRecord(txn_id, round(now, 6), source, dest, amount)
        )
    return records


def run_sharding_benchmark(
    transactions: int = 800,
    preset: str = "huge",
    shards: int = 4,
    epoch: float = 2.0,
    repeats: int = 2,
) -> dict:
    """Serial parity plan vs N forked shard workers on one run.

    Both legs execute the *identical* partitioned epoch plan — same
    partition, same traffic classification, same lane order — so the
    wall-clock ratio isolates what multiprocessing buys and the metrics
    must serialise byte-identically (asserted here, the at-scale parity
    pin).  The workload is locality-weighted (90% intra-segment pairs,
    ``shortest-path``'s k=1 candidates), the regime the sharding layer
    targets; the recorded ``local_fraction`` documents how much of the
    trace actually ran concurrently.

    On a single-core host the parallel leg time-slices every worker over
    one CPU, so the ≥2x acceptance speedup is unmeasurable; the section
    then records ``speedup_waived`` with the core count and the floor
    gate skips the clause rather than failing on hardware that cannot
    express the parallelism.  A 100k-node generated topology leg runs
    when ``REPRO_SLOW_TESTS=1`` (several minutes of graph build alone).
    """
    from repro.core.runtime import RuntimeConfig
    from repro.engine.pathservice import PersistentCache
    from repro.engine.sharding import ShardedSession
    from repro.metrics.report import metrics_to_json
    from repro.topology import partition_topology, scale_free_topology

    def measure(topology, records, parallel: bool, sanitize: bool = False):
        """(session, metrics, wall seconds) of one full sharded run."""
        network = topology.build_network(default_capacity=500.0)
        assert ShardedSession.sharded_execution  # default stays on
        ShardedSession.sharded_execution = parallel
        try:
            session = ShardedSession(
                network,
                records,
                "shortest-path",
                config=RuntimeConfig(),
                num_shards=shards,
                epoch=epoch,
                sanitize=True if sanitize else None,
            )
            start = time.perf_counter()
            metrics = session.run()
            elapsed = time.perf_counter() - start
        finally:
            ShardedSession.sharded_execution = True
        return session, metrics, elapsed

    def best_of(topology, records, parallel: bool, sanitize: bool = False):
        best = None
        for _ in range(repeats):
            session, metrics, elapsed = measure(
                topology, records, parallel, sanitize
            )
            if best is None or elapsed < best[2]:
                best = (session, metrics, elapsed)
        return best

    def compare(topology, records):
        serial_session, serial_metrics, serial_time = best_of(
            topology, records, parallel=False
        )
        parallel_session, parallel_metrics, parallel_time = best_of(
            topology, records, parallel=True
        )
        # The headline invariant: N worker processes, byte-identical JSON.
        parity = metrics_to_json(serial_metrics) == metrics_to_json(
            parallel_metrics
        )
        stats = parallel_session.dispatch_stats()
        # One more parallel leg under the write-ownership sanitizer: the
        # run completing at all means zero violations (a bad write raises
        # ShardViolationError), and the wall-clock ratio against the plain
        # parallel leg is the sanitizer's overhead (acceptance: <= 1.5x).
        _, sanitized_metrics, sanitized_time = best_of(
            topology, records, parallel=True, sanitize=True
        )
        sanitized_parity = metrics_to_json(parallel_metrics) == metrics_to_json(
            sanitized_metrics
        )
        return {
            "transactions": len(records),
            "shards": shards,
            "epoch": epoch,
            "local_fraction": round(
                stats["local_payments"] / max(len(records), 1), 3
            ),
            "cut_channels": stats["cut_channels"],
            "serial_wall_seconds": round(serial_time, 3),
            "parallel_wall_seconds": round(parallel_time, 3),
            "serial_txns_per_sec": round(len(records) / serial_time, 1),
            "parallel_txns_per_sec": round(len(records) / parallel_time, 1),
            "speedup": round(serial_time / parallel_time, 3),
            "parallel_mode_used": bool(stats["parallel"]),
            "parity": parity,
            "sanitized": {
                "wall_seconds": round(sanitized_time, 3),
                "slowdown": round(sanitized_time / parallel_time, 3),
                "violations": 0,
                "parity": sanitized_parity,
            },
        }

    PersistentCache.clear_shared()
    topology = ripple_topology(preset, seed=0)
    partition = partition_topology(topology, shards)
    records = _locality_trace(
        topology.adjacency(), partition, transactions, arrival_rate=250.0
    )
    report = compare(topology, records)
    report["network"] = {
        "nodes": len(list(topology.nodes)),
        "preset": f"ripple-{preset}",
    }
    cores = os.cpu_count() or 1
    report["cpu_count"] = cores
    if cores < 2:
        report["speedup_waived"] = (
            f"single-core host (os.cpu_count()={cores}): the forked shard "
            "workers time-slice one CPU, so the >=2x wall-clock acceptance "
            "speedup cannot be expressed on this machine"
        )
    if os.environ.get("REPRO_SLOW_TESTS") == "1":
        PersistentCache.clear_shared()
        big = scale_free_topology(100_000, m=3, seed=7)
        big_partition = partition_topology(big, shards)
        big_records = _locality_trace(
            big.adjacency(), big_partition, max(transactions, 2000),
            arrival_rate=500.0,
        )
        big_report = compare(big, big_records)
        big_report["network"] = {"nodes": 100_000, "preset": "scale-free-100k"}
        report["nodes_100k"] = big_report
    return report


def check_throughput_floor(report: dict, baseline: dict, ratio: float = 0.8):
    """Regression gate: native hop throughput must stay near the recorded
    baseline.  Returns an error string, or ``None`` when within bounds.

    Two ways to pass, so the gate is meaningful on hardware other than
    the machine that recorded the baseline:

    * absolute — measured native events/sec ≥ ``ratio`` × the recorded
      native events/sec, or
    * relative — the measured native-vs-scalar speedup (both sides timed
      on *this* machine in the same run) ≥ ``ratio`` × the recorded
      speedup.  A slower CI runner scales both measurements equally, so
      only a genuine hot-path regression drops the speedup.

    Signal-kernel coverage: the ``signals`` section's vectorised-vs-scalar
    speedups must also stay above the 3x acceptance floor (both sides are
    timed on this machine in the same run, so the ratio is
    hardware-independent).  Path-discovery coverage: the
    ``path_discovery`` section's CSR-vs-scalar speedup on the 10k-node
    graph must stay above its 3x floor (the recorded value documents the
    ≥5x ripple-huge acceptance number).
    """
    signals = report.get("signals")
    if signals:
        for section in ("price_update", "mark_scan"):
            speedup = signals[section]["speedup"]
            if speedup < 3.0:
                return (
                    f"signals {section} vectorised speedup {speedup:.2f}x "
                    "fell below the 3x acceptance floor"
                )
    discovery = report.get("path_discovery")
    if discovery:
        speedup = discovery["speedup"]
        if speedup < 3.0:
            return (
                f"path_discovery CSR speedup {speedup:.2f}x fell below "
                "the 3x acceptance floor"
            )
    dispatch = report.get("dispatch")
    if dispatch and not dispatch.get("carried_forward"):
        speedup = dispatch["cohort_sweep"]["256"]["speedup"]
        if speedup < 2.0:
            return (
                f"macro-tick dispatch speedup {speedup:.2f}x at cohort 256 "
                "fell below the 2x acceptance floor (both modes timed on "
                "this machine in the same run)"
            )
        fee = dispatch.get("fee_workload")
        if fee:
            # Fee-aware staging acceptance: the PR 6 envelope sent every
            # fee-bearing payment to the scalar fallback (rate 1.0); the
            # residual replay must keep the rate at least 5x lower AND
            # stay >=2x faster wall-clock than the scalar loop.
            rate = fee.get("fallback_rate")
            envelope = fee.get("pr6_envelope_fallback_rate", 1.0)
            if rate is None or rate > envelope / 5.0:
                return (
                    f"fee-bearing dispatch fallback rate {rate!r} exceeds "
                    f"1/5 of the PR 6 envelope ({envelope}) — fee-aware "
                    "staging is not absorbing the cohort"
                )
            fee_speedup = fee["speedup"]
            if fee_speedup < 2.0:
                return (
                    f"fee-bearing dispatch speedup {fee_speedup:.2f}x fell "
                    "below the 2x acceptance floor (both modes timed on "
                    "this machine in the same run)"
                )
    sharding = report.get("sharding")
    if sharding and not sharding.get("carried_forward"):
        if sharding.get("parity") is not True:
            return (
                "sharded execution broke metrics parity: the serial plan "
                "and the forked shard workers serialised different JSON"
            )
        if not sharding.get("speedup_waived"):
            speedup = sharding["speedup"]
            if speedup < 2.0:
                return (
                    f"sharded speedup {speedup:.2f}x at "
                    f"{sharding['shards']} shards fell below the 2x "
                    "acceptance floor (both modes timed on this machine "
                    "in the same run)"
                )
        sanitized = sharding.get("sanitized")
        if sanitized:
            if sanitized.get("parity") is not True:
                return (
                    "sanitized sharded run broke metrics parity: the "
                    "write-ownership sanitizer must be invisible to the "
                    "simulation"
                )
            slowdown = sanitized["slowdown"]
            if slowdown > 1.5:
                return (
                    f"shard-sanitizer slowdown {slowdown:.2f}x exceeds the "
                    "1.5x acceptance ceiling (sanitized vs plain parallel, "
                    "both timed on this machine in the same run)"
                )
    scale = report.get("scale")
    recorded_scale = (baseline or {}).get("scale", {})
    if (
        scale
        and not scale.get("carried_forward")
        and not recorded_scale.get("carried_forward")
        and recorded_scale.get("transactions_per_sec")
    ):
        measured = scale["transactions_per_sec"]
        recorded = recorded_scale["transactions_per_sec"]
        if measured < ratio * recorded:
            # Same two-way escape as the hop gate: the macro-tick run is
            # well under 100ms at 600 transactions, so absolute txn/s is
            # jittery across machines and process warmth — but the
            # scalar-vs-macro-tick ratio is timed on this machine in the
            # same run and only drops on a genuine dispatch regression.
            recorded_speedup = recorded_scale.get("dispatch_speedup")
            measured_speedup = scale.get("dispatch_speedup", 0.0)
            if not (
                recorded_speedup
                and measured_speedup >= ratio * recorded_speedup
            ):
                return (
                    f"scale smoke throughput regressed: {measured} txn/s is "
                    f"below {ratio:.0%} of the recorded {recorded} txn/s, "
                    f"and the dispatch speedup {measured_speedup:.2f}x is "
                    f"below {ratio:.0%} of the recorded "
                    f"{recorded_speedup or 0:.2f}x"
                )
    recorded_hop = (baseline or {}).get("hop_by_hop", {})
    recorded = recorded_hop.get("native_events_per_sec")
    if not recorded:
        return None
    measured = report["hop_by_hop"]["native_events_per_sec"]
    if measured >= ratio * recorded:
        return None
    recorded_speedup = recorded_hop.get("speedup")
    measured_speedup = report["hop_by_hop"]["speedup"]
    if recorded_speedup and measured_speedup >= ratio * recorded_speedup:
        return None
    return (
        f"native hop-by-hop throughput regressed: {measured:,} ev/s is below "
        f"{ratio:.0%} of the recorded baseline {recorded:,} ev/s, and the "
        f"native-vs-scalar speedup {measured_speedup:.2f}x is below "
        f"{ratio:.0%} of the recorded {recorded_speedup or 0:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_substrate.json", help="result file")
    parser.add_argument(
        "--events", type=int, default=100_000, help="events per workload per repeat"
    )
    parser.add_argument(
        "--hop-transactions",
        type=int,
        default=1_500,
        help="trace length of the hop-by-hop transport comparison",
    )
    parser.add_argument(
        "--path-ops-iterations",
        type=int,
        default=200,
        help="probe sweeps per repeat in the path-ops microbenchmark",
    )
    parser.add_argument(
        "--signals-iterations",
        type=int,
        default=200,
        help="control-loop iterations per repeat in the signals microbenchmark",
    )
    parser.add_argument(
        "--discovery-pairs",
        type=int,
        default=48,
        help="pair count of the path-discovery microbenchmark (0 disables it)",
    )
    parser.add_argument(
        "--scale-transactions",
        type=int,
        default=600,
        help="trace length of the 10k-node scale smoke (0 disables it)",
    )
    parser.add_argument(
        "--dispatch-transactions",
        type=int,
        default=600,
        help="trace length of the macro-tick dispatch comparison (0 disables it)",
    )
    parser.add_argument(
        "--sharding-transactions",
        type=int,
        default=800,
        help="trace length of the spatial-sharding 1-vs-N-shard comparison "
        "(0 disables it; the 100k-node leg additionally needs "
        "REPRO_SLOW_TESTS=1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="worker count of the sharding comparison (acceptance: 4)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--assert-floor",
        action="store_true",
        help=(
            "fail (exit 1) if native hop-by-hop events/sec drops below 0.8x "
            "the value recorded in the existing --out file (CI regression gate)"
        ),
    )
    args = parser.parse_args(argv)
    baseline = {}
    try:
        with open(args.out, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError):
        pass
    report = run_engine_comparison(events=args.events, repeats=args.repeats)
    report["hop_by_hop"] = run_hop_transport_comparison(
        transactions=args.hop_transactions, repeats=args.repeats
    )
    report["path_ops"] = run_path_ops_microbench(
        iterations=args.path_ops_iterations, repeats=args.repeats
    )
    report["signals"] = run_signals_microbench(
        iterations=args.signals_iterations, repeats=args.repeats
    )
    if args.discovery_pairs > 0:
        report["path_discovery"] = run_path_discovery_microbench(
            num_pairs=args.discovery_pairs, repeats=args.repeats
        )
    elif "path_discovery" in baseline:
        report["path_discovery"] = dict(
            baseline["path_discovery"], carried_forward=True
        )
    if args.dispatch_transactions > 0:
        report["dispatch"] = run_dispatch_microbench(
            transactions=args.dispatch_transactions
        )
    elif "dispatch" in baseline:
        report["dispatch"] = dict(baseline["dispatch"], carried_forward=True)
    if args.scale_transactions > 0:
        report["scale"] = run_scale_smoke(transactions=args.scale_transactions)
    elif "scale" in baseline:
        # Keep the recorded entry rather than dropping it, but tag it so
        # nobody mistakes another machine's numbers for this run's.
        report["scale"] = dict(baseline["scale"], carried_forward=True)
    if args.sharding_transactions > 0:
        report["sharding"] = run_sharding_benchmark(
            transactions=args.sharding_transactions, shards=args.shards
        )
    elif "sharding" in baseline:
        report["sharding"] = dict(baseline["sharding"], carried_forward=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for workload, numbers in report["workloads"].items():
        print(
            f"{workload:8s} legacy {numbers['legacy_events_per_sec']:>9,} ev/s   "
            f"tick {numbers['tick_events_per_sec']:>9,} ev/s   "
            f"{numbers['speedup']:.2f}x"
        )
    hop = report["hop_by_hop"]
    print(
        f"hop_by_hop scalar {hop['scalar_events_per_sec']:>9,} ev/s   "
        f"native {hop['native_events_per_sec']:>9,} ev/s   "
        f"{hop['speedup']:.2f}x wall-clock"
    )
    ops = report["path_ops"]
    print(
        f"path_ops bottleneck {ops['bottleneck_batch']['scalar_probes_per_sec']:>9,} -> "
        f"{ops['bottleneck_batch']['vectorised_probes_per_sec']:>9,} probes/s "
        f"({ops['bottleneck_batch']['speedup']:.2f}x, cached "
        f"{ops['bottleneck_batch']['cached_probes_per_sec']:,}/s)   "
        f"lock+settle {ops['lock_settle']['scalar_round_trips_per_sec']:>7,} -> "
        f"{ops['lock_settle']['vectorised_round_trips_per_sec']:>7,} trips/s "
        f"({ops['lock_settle']['speedup']:.2f}x)"
    )
    sig = report["signals"]
    print(
        f"signals  prices {sig['price_update']['scalar_updates_per_sec']:>9,} -> "
        f"{sig['price_update']['vectorised_updates_per_sec']:>11,} updates/s "
        f"({sig['price_update']['speedup']:.2f}x)   "
        f"marks {sig['mark_scan']['scalar_scans_per_sec']:>9,} -> "
        f"{sig['mark_scan']['vectorised_scans_per_sec']:>11,} scans/s "
        f"({sig['mark_scan']['speedup']:.2f}x)"
    )
    if "path_discovery" in report:
        disc = report["path_discovery"]
        print(
            f"discovery {disc['network']['nodes']:,} nodes: scalar "
            f"{disc['scalar_pairs_per_sec']:>7,} -> csr "
            f"{disc['csr_pairs_per_sec']:>7,} pairs/s "
            f"({disc['speedup']:.2f}x), cached "
            f"{disc['cached_pairs_per_sec']:,}/s, disk-warm "
            f"{disc['disk_warm_pairs_per_sec']:,}/s"
        )
    if "dispatch" in report:
        disp = report["dispatch"]
        sweep = disp["cohort_sweep"]
        print(
            f"dispatch scalar {disp['scalar_events_per_sec']:>9,} -> "
            f"macro-tick {disp['vectorized_events_per_sec']:>9,} ev/s "
            f"({disp['speedup']:.2f}x); cohorts "
            + ", ".join(
                f"{size}: {cell['speedup']:.2f}x" for size, cell in sweep.items()
            )
        )
        fee = disp.get("fee_workload")
        if fee:
            rate = fee.get("fallback_rate")
            print(
                f"dispatch fee-bearing {fee['scalar_txns_per_sec']:,} -> "
                f"{fee['vectorized_txns_per_sec']:,} txn/s "
                f"({fee['speedup']:.2f}x), fallbacks "
                f"{fee['scalar_fallbacks']}/{fee['cohort_payments']} "
                f"(rate {rate if rate is not None else 'n/a'}, "
                f"PR6 envelope {fee['pr6_envelope_fallback_rate']})"
            )
    if "scale" in report:
        scale = report["scale"]
        print(
            f"scale    {scale['network']['nodes']:,} nodes / "
            f"{scale['network']['channels']:,} channels: "
            f"{scale['transactions_per_sec']} txn/s, "
            f"{scale['events_per_sec']} ev/s "
            f"({scale.get('dispatch_speedup', 0):.1f}x over scalar, "
            "parity ok), sweep "
            f"{scale['sweep']['cells']} cells in "
            f"{scale['sweep']['wall_seconds']}s"
        )
    if "sharding" in report:
        shard = report["sharding"]
        waived = " (speedup floor waived: single core)" if shard.get(
            "speedup_waived"
        ) else ""
        print(
            f"sharding {shard['network']['nodes']:,} nodes @ "
            f"{shard['shards']} shards: serial "
            f"{shard['serial_txns_per_sec']} -> parallel "
            f"{shard['parallel_txns_per_sec']} txn/s "
            f"({shard['speedup']:.2f}x, local fraction "
            f"{shard['local_fraction']}, parity "
            f"{'ok' if shard.get('parity') else 'BROKEN'}){waived}"
        )
    print(f"overall speedup: {report['speedup']:.2f}x  ->  {args.out}")
    if args.assert_floor:
        error = check_throughput_floor(report, baseline)
        if error:
            print(f"FLOOR CHECK FAILED: {error}")
            return 1
        print("floor check passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
