"""Micro-benchmarks of the substrates (engine, channels, max-flow, LP).

These are true pytest-benchmark timings (many rounds) of the hot paths that
bound how large a simulation the library can run.

Run with::

    pytest benchmarks/bench_substrate_micro.py --benchmark-only

The module is also directly executable as the engine-comparison smoke run
used by CI (finishes in seconds)::

    python benchmarks/bench_substrate_micro.py --out BENCH_substrate.json

which times the legacy float-time ``Simulator`` against the new slab-queue
``TickEngine`` on two event workloads (chained timers = shallow heap,
pre-scheduled fan-out = deep heap), plus the hop-by-hop queueing transport
(``spider-queueing`` on a congested line) through the legacy
``QueueingRuntime`` vs. the native session transport, and records
events/sec and speedups for all of them.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.engine.events import TickEngine
from repro.fluid import solve_fluid_lp
from repro.fluid.paths import k_edge_disjoint_paths
from repro.network.network import PaymentNetwork
from repro.routing.max_flow import edmonds_karp
from repro.simulator.engine import Simulator
from repro.topology import isp_topology, ripple_topology
from repro.topology.examples import FIG4_DEMANDS, fig4_topology
from repro.fluid.paths import all_simple_paths


# ----------------------------------------------------------------------
# Event-engine workloads (shared by the pytest benchmarks and the smoke
# comparison): chained timers keep the heap shallow and stress per-event
# overhead; the fan-out pre-schedules every event, so the heap is deep and
# ordering comparisons dominate.
# ----------------------------------------------------------------------
def _chained_legacy(n: int) -> int:
    sim = Simulator()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < n:
            sim.call_after(0.001, tick)

    sim.call_after(0.001, tick)
    sim.run()
    return count


def _chained_tick(n: int) -> int:
    eng = TickEngine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < n:
            eng.schedule_after(0.001, tick)

    eng.schedule_after(0.001, tick)
    eng.run()
    return count


def _fanout_legacy(n: int) -> int:
    sim = Simulator()
    count = 0

    def fire():
        nonlocal count
        count += 1

    for i in range(n):
        sim.call_at(((i * 2654435761) % n) * 0.001, fire)
    sim.run()
    return count


def _fanout_tick(n: int) -> int:
    eng = TickEngine()
    count = 0

    def fire():
        nonlocal count
        count += 1

    for i in range(n):
        eng.schedule_at_tick(((i * 2654435761) % n) * 1000, fire)
    eng.run()
    return count


def test_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events on the legacy engine."""
    assert benchmark(_chained_legacy, 10_000) == 10_000


def test_tick_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events on the new slab-queue engine."""
    assert benchmark(_chained_tick, 10_000) == 10_000


def test_tick_engine_fanout_throughput(benchmark):
    """Drain 10k pre-scheduled events (deep heap) on the new engine."""
    assert benchmark(_fanout_tick, 10_000) == 10_000


def test_channel_lock_settle_throughput(benchmark):
    """Lock+settle 1k HTLCs on one channel."""

    def run():
        network = PaymentNetwork()
        channel = network.add_channel(0, 1, 1_000_000.0)
        for _ in range(500):
            htlc = channel.lock(0, 10.0)
            channel.settle(htlc)
            htlc = channel.lock(1, 10.0)
            channel.settle(htlc)
        return channel.num_settled

    assert benchmark(run) == 1_000


def test_path_lock_rollback(benchmark):
    """Atomic path locking with rollback pressure on a line network."""
    from repro.topology import line_topology

    def run():
        network = line_topology(6).build_network(default_capacity=100.0)
        done = 0
        for _ in range(200):
            htlcs = network.lock_path((0, 1, 2, 3, 4, 5), 0.25)
            network.settle_path((0, 1, 2, 3, 4, 5), htlcs)
            done += 1
        return done

    assert benchmark(run) == 200


def test_max_flow_on_isp_balances(benchmark):
    """One max-flow computation at ISP scale (the per-transaction cost the
    paper calls prohibitive, §3)."""
    network = isp_topology().build_network(default_capacity=3_000.0)
    capacity = {}
    for channel in network.channels():
        a, b = channel.endpoints
        capacity[(a, b)] = channel.balance(a)
        capacity[(b, a)] = channel.balance(b)

    value, _ = benchmark(lambda: edmonds_karp(capacity, 8, 20))
    assert value > 0


def test_k_disjoint_paths_on_ripple(benchmark):
    """Path-set computation on the Ripple-like graph."""
    adjacency = ripple_topology("small", seed=0).adjacency()

    paths = benchmark(lambda: k_edge_disjoint_paths(adjacency, 0, 150, 4))
    assert paths


def test_fluid_lp_on_fig4(benchmark):
    """The complete-path-set balanced LP on the example graph."""
    adjacency = fig4_topology().adjacency()
    path_set = {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}

    solution = benchmark(
        lambda: solve_fluid_lp(FIG4_DEMANDS, path_set, balance="equality")
    )
    assert solution.throughput > 0


# ----------------------------------------------------------------------
# Engine-comparison smoke run (CI: writes BENCH_substrate.json in seconds)
# ----------------------------------------------------------------------
def _events_per_second(fn, n: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fired = fn(n)
        elapsed = time.perf_counter() - start
        assert fired == n
        best = min(best, elapsed)
    return n / best


def run_engine_comparison(events: int = 100_000, repeats: int = 3) -> dict:
    """Legacy vs. tick-engine events/sec on both workloads.

    Returns the result dict written to ``BENCH_substrate.json``; the
    headline ``speedup`` is total events over total best-case time, so both
    workloads weigh in.
    """
    results = {}
    for workload, legacy_fn, tick_fn in (
        ("chained", _chained_legacy, _chained_tick),
        ("fanout", _fanout_legacy, _fanout_tick),
    ):
        legacy_eps = _events_per_second(legacy_fn, events, repeats)
        tick_eps = _events_per_second(tick_fn, events, repeats)
        results[workload] = {
            "events": events,
            "legacy_events_per_sec": round(legacy_eps),
            "tick_events_per_sec": round(tick_eps),
            "speedup": round(tick_eps / legacy_eps, 3),
        }
    total_legacy = sum(
        r["events"] / r["legacy_events_per_sec"] for r in results.values()
    )
    total_tick = sum(r["events"] / r["tick_events_per_sec"] for r in results.values())
    return {
        "benchmark": "engine_event_throughput",
        "workloads": results,
        "speedup": round(total_legacy / total_tick, 3),
    }


# ----------------------------------------------------------------------
# Hop-by-hop transport comparison: the §4.2 in-network-queue scheme on a
# congested line, legacy QueueingRuntime vs. the native session transport.
# ----------------------------------------------------------------------
def _hop_config(num_transactions: int):
    from repro.experiments.config import ExperimentConfig

    # Capacity below offered load so units park at routers: the run
    # exercises enqueue/timeout/service, not just the happy path.
    return ExperimentConfig(
        scheme="spider-queueing",
        topology="line-5",
        capacity=600.0,
        num_transactions=num_transactions,
        arrival_rate=100.0,
        seed=11,
    )


def run_hop_transport_comparison(transactions: int = 1_500, repeats: int = 3) -> dict:
    """Legacy vs. native events/sec on the hop-by-hop queueing workload.

    Both engines replay the identical seeded trace.  Topology, workload and
    scheme construction happen *outside* the timed region — the timer
    covers only ``run()``, i.e. event dispatch plus the scheme's per-poll
    routing work — and ``speedup`` is the wall-clock ratio of those runs
    (the engines process slightly different event counts: the native
    transport lets lazily-cancelled timeouts fire as no-ops).
    """
    from repro.engine.session import SimulationSession

    def _measure(prepare):
        best_elapsed, events = float("inf"), 0
        for _ in range(repeats):
            run_once = prepare()  # construction stays untimed
            start = time.perf_counter()
            events = run_once()
            elapsed = time.perf_counter() - start
            best_elapsed = min(best_elapsed, elapsed)
        return best_elapsed, events

    def _prepare_legacy():
        from repro.experiments.runner import build_runtime

        config = _hop_config(transactions)
        network, records, scheme = config.build_simulation_inputs()
        runtime = build_runtime(
            network, records, scheme, config.build_runtime_config()
        )

        def run_once():
            runtime.run()
            return runtime.sim.events_processed

        return run_once

    def _prepare_native():
        session = SimulationSession.from_config(_hop_config(transactions))

        def run_once():
            session.run()
            if session._delegate is not None:  # would time the legacy path
                raise RuntimeError("hop scheme fell back to the legacy runtime")
            return session.events_processed

        return run_once

    legacy_time, legacy_events = _measure(_prepare_legacy)
    native_time, native_events = _measure(_prepare_native)
    return {
        "transactions": transactions,
        "legacy_events": legacy_events,
        "legacy_events_per_sec": round(legacy_events / legacy_time),
        "native_events": native_events,
        "native_events_per_sec": round(native_events / native_time),
        "speedup": round(legacy_time / native_time, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_substrate.json", help="result file")
    parser.add_argument(
        "--events", type=int, default=100_000, help="events per workload per repeat"
    )
    parser.add_argument(
        "--hop-transactions",
        type=int,
        default=1_500,
        help="trace length of the hop-by-hop transport comparison",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    args = parser.parse_args(argv)
    report = run_engine_comparison(events=args.events, repeats=args.repeats)
    report["hop_by_hop"] = run_hop_transport_comparison(
        transactions=args.hop_transactions, repeats=args.repeats
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for workload, numbers in report["workloads"].items():
        print(
            f"{workload:8s} legacy {numbers['legacy_events_per_sec']:>9,} ev/s   "
            f"tick {numbers['tick_events_per_sec']:>9,} ev/s   "
            f"{numbers['speedup']:.2f}x"
        )
    hop = report["hop_by_hop"]
    print(
        f"hop_by_hop legacy {hop['legacy_events_per_sec']:>9,} ev/s   "
        f"native {hop['native_events_per_sec']:>9,} ev/s   "
        f"{hop['speedup']:.2f}x wall-clock"
    )
    print(f"overall speedup: {report['speedup']:.2f}x  ->  {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
