"""Figure 7 — success metrics vs per-channel capacity on the ISP topology.

Paper observations reproduced here:

* both success ratio and success volume rise monotonically with capacity
  for every scheme;
* Spider (Waterfilling) reaches any given success level with less capital
  than the other schemes ("the amount of capital that needs to be locked
  in with Spider (Waterfilling) is much lower");
* Spider (LP) is the least sensitive to capacity ("because it does a
  better job of avoiding imbalance").

Capacities are 1/10 of the paper's 10 000–100 000 XRP axis (see
benchmarks/conftest.py for the scaling note).

Run with::

    pytest benchmarks/bench_fig7_capacity_sweep.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FIG6_SCHEMES, run_once
from repro.experiments import ExperimentConfig, SweepExecutor
from repro.metrics import format_table

CAPACITIES = [1_000.0, 3_000.0, 5_000.0, 10_000.0]


def base_config():
    return ExperimentConfig(
        topology="isp",
        num_transactions=1_500,
        arrival_rate=100.0,
        sizes="isp",
        seed=7,
    )


@pytest.fixture(scope="module")
def sweep_results():
    # 24 cells (6 schemes × 4 capacities) across worker processes on the
    # SimulationSession engine.  reseed_cells=False keeps one seed for the
    # whole grid so the monotonicity checks below compare identical traces.
    executor = SweepExecutor(base_config(), processes=4, reseed_cells=False)
    return executor.capacity_sweep(CAPACITIES, FIG6_SCHEMES)


def _series(results, scheme, metric):
    return [getattr(results[(scheme, c)], metric) for c in CAPACITIES]


def test_fig7_success_ratio_series(benchmark, sweep_results):
    """The Fig. 7 (left) series: success ratio vs capacity per scheme."""
    results = run_once(benchmark, lambda: sweep_results)
    rows = []
    for scheme in FIG6_SCHEMES:
        rows.append(
            [scheme]
            + [f"{100 * results[(scheme, c)].success_ratio:.1f}" for c in CAPACITIES]
        )
    print()
    print(
        format_table(
            ["scheme"] + [f"cap={c:g}" for c in CAPACITIES],
            rows,
            title="Fig. 7 (left): success ratio % vs capacity",
        )
    )
    # Monotone non-decreasing in capacity for the adaptive schemes.
    for scheme in ("spider-waterfilling", "shortest-path", "max-flow"):
        series = _series(results, scheme, "success_ratio")
        for a, b in zip(series, series[1:]):
            assert b >= a - 0.03


def test_fig7_success_volume_series(benchmark, sweep_results):
    """The Fig. 7 (right) series: success volume vs capacity per scheme."""
    results = run_once(benchmark, lambda: sweep_results)
    rows = []
    for scheme in FIG6_SCHEMES:
        rows.append(
            [scheme]
            + [f"{100 * results[(scheme, c)].success_volume:.1f}" for c in CAPACITIES]
        )
    print()
    print(
        format_table(
            ["scheme"] + [f"cap={c:g}" for c in CAPACITIES],
            rows,
            title="Fig. 7 (right): success volume % vs capacity",
        )
    )
    waterfilling = _series(results, "spider-waterfilling", "success_volume")
    for a, b in zip(waterfilling, waterfilling[1:]):
        assert b >= a - 0.03


def test_fig7_capital_efficiency(benchmark, sweep_results):
    """Spider (WF) needs no more capital than any baseline for a 70% volume
    target, and strictly less than the landmark/embedding baselines."""

    def capital_needed(scheme, target=0.7):
        for capacity in CAPACITIES:
            if sweep_results[(scheme, capacity)].success_volume >= target:
                return capacity
        return float("inf")

    spider = run_once(benchmark, lambda: capital_needed("spider-waterfilling"))
    print()
    for scheme in FIG6_SCHEMES:
        needed = capital_needed(scheme)
        label = f"{needed:g}" if needed != float("inf") else f"> {CAPACITIES[-1]:g}"
        print(f"capital for 70% volume: {scheme:22s} {label}")
    assert spider <= capital_needed("shortest-path")
    assert spider < capital_needed("silentwhispers")
    assert spider < capital_needed("speedymurmurs")


def test_fig7_lp_is_least_capacity_sensitive(benchmark, sweep_results):
    """Spider (LP)'s volume moves least across the capacity range (§6.2)."""

    def swing(scheme):
        series = _series(sweep_results, scheme, "success_volume")
        return max(series) - min(series)

    lp_swing = run_once(benchmark, lambda: swing("spider-lp"))
    for scheme in ("spider-waterfilling", "shortest-path", "silentwhispers"):
        assert lp_swing <= swing(scheme) + 0.02
