"""Proposition 1 — the balanced-throughput bound, checked dynamically.

The proposition says ν(C*) is exactly the ceiling for perfectly balanced
routing.  This bench verifies both halves on random payment graphs (the
fluid level) and then confirms the dynamic counterpart in the simulator:
a pure-circulation workload is (nearly) fully routable, a pure-DAG
workload starves once the escrowed funds are spent.

Run with::

    pytest benchmarks/bench_prop1_throughput_bound.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.runtime import Runtime, RuntimeConfig
from repro.fluid import (
    PaymentGraph,
    all_simple_paths,
    decompose_payment_graph,
    solve_fluid_lp,
)
from repro.metrics import format_table
from repro.routing import make_scheme
from repro.topology import complete_topology
from repro.workload import circulation_demand, dag_demand, records_from_demand


def test_prop1_upper_bound_on_random_graphs(benchmark):
    """No balanced routing exceeds nu(C*): LP throughput <= nu on random
    demand over a complete topology (where path sets are rich)."""
    topology = complete_topology(8)
    adjacency = topology.adjacency()

    def run():
        rows = []
        for seed in range(5):
            from repro.workload import mixed_demand

            demands = mixed_demand(range(8), 40.0, circulation_fraction=0.6, seed=seed)
            nu = decompose_payment_graph(PaymentGraph(demands), method="lp").value
            path_set = {
                pair: all_simple_paths(adjacency, *pair, cutoff=3) for pair in demands
            }
            balanced = solve_fluid_lp(demands, path_set, balance="equality").throughput
            rows.append((seed, nu, balanced))
            assert balanced <= nu + 1e-6
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["seed", "nu(C*)", "balanced LP"],
            [[s, f"{n:.3f}", f"{b:.3f}"] for s, n, b in rows],
            title="Prop. 1 upper bound (balanced <= nu)",
        )
    )


def test_prop1_circulation_workload_flows(benchmark):
    """Dynamic lower bound: a circulation workload achieves near-full volume."""
    topology = complete_topology(8)

    def run():
        demands = circulation_demand(range(8), 60.0, num_cycles=4, seed=3)
        records = records_from_demand(demands, duration=30.0, mean_size=5.0, seed=3)
        network = topology.build_network(default_capacity=5_000.0)
        runtime = Runtime(
            network,
            records,
            make_scheme("spider-waterfilling"),
            RuntimeConfig(end_time=45.0),
        )
        return runtime.run()

    metrics = run_once(benchmark, run)
    print(f"\ncirculation workload success volume: {100 * metrics.success_volume:.1f}%")
    assert metrics.success_volume > 0.95


def test_prop1_dag_workload_starves(benchmark):
    """Dynamic converse: a DAG workload delivers at most the escrowed funds
    and then starves (its sustainable balanced rate is zero)."""
    topology = complete_topology(8)
    # Tight escrow: total funds (28 channels x 50) are well below the 1800
    # units of one-way demand, so starvation must show.
    capacity = 50.0

    def run():
        demands = dag_demand(range(8), 60.0, num_pairs=6, seed=3)
        records = records_from_demand(demands, duration=30.0, mean_size=5.0, seed=3)
        network = topology.build_network(default_capacity=capacity)
        runtime = Runtime(
            network,
            records,
            make_scheme("spider-waterfilling"),
            RuntimeConfig(end_time=45.0),
        )
        return runtime.run(), network

    metrics, network = run_once(benchmark, run)
    print(f"\nDAG workload success volume: {100 * metrics.success_volume:.1f}%")
    # Delivered value is bounded by the escrow that can drain one way:
    # every channel can contribute at most its full capacity.
    assert metrics.delivered_value <= network.total_funds()
    assert metrics.success_volume < 0.5
