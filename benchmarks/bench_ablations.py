"""Ablations over Spider's design choices (§4, §6.1, DESIGN.md).

Four axes the paper fixes by fiat, swept here:

* **MTU** — smaller transaction units pack capacity better at the cost of
  more events ("packet switching" granularity, §4);
* **scheduling policy** — the paper evaluates SRPT [8]; we compare FIFO,
  LIFO and EDF on the same trace;
* **path count k** — the paper restricts to 4 edge-disjoint paths (§6.1);
* **atomicity** — the same waterfilling allocator run atomically loses the
  partial-delivery volume that §4.1's non-atomic transport keeps.

Run with::

    pytest benchmarks/bench_ablations.py --benchmark-only -s
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import run_once
from repro.experiments import ExperimentConfig, parameter_sweep, run_experiment
from repro.metrics import format_table

BASE = dict(
    topology="isp",
    capacity=1_500.0,  # deliberately tight so the ablations separate
    num_transactions=1_200,
    arrival_rate=100.0,
    sizes="isp",
    seed=7,
)


def test_mtu_ablation(benchmark):
    """Smaller MTU improves packing (volume) until event overhead dominates."""
    mtus = [math.inf, 170.0, 50.0]

    results = run_once(
        benchmark,
        lambda: parameter_sweep(
            ExperimentConfig(**BASE), "mtu", mtus, ["spider-waterfilling"]
        ),
    )
    rows = [
        [
            ("inf" if math.isinf(m) else f"{m:g}"),
            f"{100 * results[('spider-waterfilling', m)].success_ratio:.1f}",
            f"{100 * results[('spider-waterfilling', m)].success_volume:.1f}",
            results[("spider-waterfilling", m)].units_settled,
        ]
        for m in mtus
    ]
    print()
    print(
        format_table(
            ["mtu", "ratio %", "volume %", "units settled"],
            rows,
            title="MTU ablation (spider-waterfilling, tight capacity)",
        )
    )
    # Finer units mean (weakly) more settled units and no volume loss.
    inf_volume = results[("spider-waterfilling", math.inf)].success_volume
    fine_volume = results[("spider-waterfilling", 50.0)].success_volume
    assert fine_volume >= inf_volume - 0.03
    assert (
        results[("spider-waterfilling", 50.0)].units_settled
        > results[("spider-waterfilling", math.inf)].units_settled
    )


def test_scheduling_policy_ablation(benchmark):
    """SRPT maximises completed payments among the polled policies (§4.2)."""
    policies = ["srpt", "fifo", "lifo", "edf", "largest-remaining"]

    results = run_once(
        benchmark,
        lambda: parameter_sweep(
            ExperimentConfig(**BASE),
            "scheduling_policy",
            policies,
            ["spider-waterfilling"],
        ),
    )
    rows = [
        [
            p,
            f"{100 * results[('spider-waterfilling', p)].success_ratio:.1f}",
            f"{100 * results[('spider-waterfilling', p)].success_volume:.1f}",
        ]
        for p in policies
    ]
    print()
    print(
        format_table(
            ["policy", "ratio %", "volume %"],
            rows,
            title="scheduling policy ablation",
        )
    )
    srpt = results[("spider-waterfilling", "srpt")].success_ratio
    anti = results[("spider-waterfilling", "largest-remaining")].success_ratio
    assert srpt >= anti - 0.01  # SRPT never loses to its inverse


def test_path_count_ablation(benchmark):
    """More edge-disjoint paths help until the topology runs out of
    disjoint short routes (the paper picks k=4)."""
    counts = [1, 2, 4, 8]

    def run():
        out = {}
        for k in counts:
            config = ExperimentConfig(
                **BASE, scheme="spider-waterfilling", scheme_params={"num_paths": k}
            )
            out[k] = run_experiment(config)
        return out

    results = run_once(benchmark, run)
    rows = [
        [k, f"{100 * results[k].success_ratio:.1f}", f"{100 * results[k].success_volume:.1f}"]
        for k in counts
    ]
    print()
    print(format_table(["k paths", "ratio %", "volume %"], rows, title="path count ablation"))
    assert results[4].success_volume >= results[1].success_volume - 0.02


def test_atomicity_ablation(benchmark):
    """Non-atomic delivery (Spider's transport, §4.1) vs the atomic
    baselines' all-or-nothing behaviour on the identical trace."""

    def run():
        non_atomic = run_experiment(
            ExperimentConfig(**BASE, scheme="spider-waterfilling")
        )
        atomic = run_experiment(ExperimentConfig(**BASE, scheme="silentwhispers"))
        return non_atomic, atomic

    non_atomic, atomic = run_once(benchmark, run)
    print(
        f"\nnon-atomic (waterfilling) volume {100 * non_atomic.success_volume:.1f}% "
        f"vs atomic (silentwhispers) {100 * atomic.success_volume:.1f}%"
    )
    assert non_atomic.success_volume > atomic.success_volume
