"""§5.2.3 — throughput with on-chain rebalancing: t(B) and the γ trade-off.

Paper claims reproduced:

* t(B) is non-decreasing and concave in the total rebalancing budget B;
* as γ (the cost of one unit of on-chain rebalancing rate) decreases, the
  optimal throughput rises from ν(C*) to the full demand;
* at large γ the solution is exactly the balanced optimum (B = 0).

Run with::

    pytest benchmarks/bench_rebalancing_curve.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.fluid import all_simple_paths, solve_rebalancing_lp, throughput_vs_rebalancing
from repro.metrics import format_table
from repro.topology import FIG4_DEMANDS, fig4_topology


@pytest.fixture(scope="module")
def fig4_paths():
    adjacency = fig4_topology().adjacency()
    return {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}


def test_t_of_b_curve(benchmark, fig4_paths):
    """The t(B) series on the Fig. 4 example: 8 at B=0 rising to 12."""
    budgets = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0]

    curve = run_once(
        benchmark,
        lambda: throughput_vs_rebalancing(FIG4_DEMANDS, fig4_paths, None, budgets),
    )
    print()
    print(
        format_table(
            ["B", "t(B)"],
            [[f"{b:g}", f"{t:.3f}"] for b, t in curve],
            title="t(B): throughput vs rebalancing budget (Fig. 4 example)",
        )
    )
    values = [t for _, t in curve]
    assert values[0] == pytest.approx(8.0, abs=1e-6)
    assert values[-1] == pytest.approx(12.0, abs=1e-6)
    # Non-decreasing.
    for a, b in zip(values, values[1:]):
        assert b >= a - 1e-9
    # Concave on the uniform budget prefix (spacing 0.5 for first 7 points).
    uniform = values[:7]
    for i in range(1, len(uniform) - 1):
        assert uniform[i + 1] - uniform[i] <= uniform[i] - uniform[i - 1] + 1e-9


def test_gamma_sweep(benchmark, fig4_paths):
    """Eqs. 6–11 across γ: throughput interpolates between 12 and nu = 8."""
    gammas = [0.01, 0.25, 0.75, 1.5, 3.0, 100.0]

    def run():
        return [
            (g, solve_rebalancing_lp(FIG4_DEMANDS, fig4_paths, None, gamma=g))
            for g in gammas
        ]

    results = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["gamma", "throughput", "total rebalancing", "objective"],
            [
                [f"{g:g}", f"{s.throughput:.3f}", f"{s.total_rebalancing:.3f}", f"{s.objective:.3f}"]
                for g, s in results
            ],
            title="rebalancing LP vs gamma (Fig. 4 example)",
        )
    )
    throughputs = [s.throughput for _, s in results]
    assert throughputs[0] == pytest.approx(12.0, abs=1e-5)
    assert throughputs[-1] == pytest.approx(8.0, abs=1e-5)
    for a, b in zip(throughputs, throughputs[1:]):
        assert b <= a + 1e-6


def test_online_rebalancing_in_simulation(benchmark):
    """Extension: on-chain deposits during the run let a one-way (DAG)
    demand keep flowing — the dynamic counterpart of §5.2.3."""
    from repro.core.runtime import Runtime, RuntimeConfig
    from repro.routing import make_scheme
    from repro.simulator.engine import RecurringTimer
    from repro.topology import line_topology
    from repro.workload import records_from_demand

    def run(deposit_rate):
        network = line_topology(3).build_network(default_capacity=100.0)
        records = records_from_demand({(0, 2): 20.0}, duration=30.0, mean_size=5.0, seed=1)
        runtime = Runtime(
            network,
            records,
            make_scheme("spider-waterfilling"),
            RuntimeConfig(end_time=40.0),
        )
        if deposit_rate > 0:
            def deposit():
                for channel in network.channels():
                    channel.deposit(channel.node_a, deposit_rate)

            RecurringTimer(runtime.sim, 1.0, deposit)
        return runtime.run()

    def both():
        return run(0.0), run(20.0)

    without, with_deposits = run_once(benchmark, both)
    print(
        f"\nDAG demand success volume: {100 * without.success_volume:.1f}% without "
        f"deposits, {100 * with_deposits.success_volume:.1f}% with on-chain deposits"
    )
    assert with_deposits.success_volume > without.success_volume + 0.2
