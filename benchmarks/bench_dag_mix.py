"""Throughput vs. circulation share of the demand (NSDI-version sweep).

Proposition 1 says balanced routing can deliver exactly the circulation
component ν(C*) of the demand.  The NSDI version of the paper turns this
into an experiment: generate demand that is x% circulation / (100−x)% DAG
and sweep x — every scheme's sustainable success volume should track the
circulation share, with the escrow buffering the DAG remainder for a
while.  This bench reproduces that sweep on the ISP topology for Spider
(waterfilling), the windowed Spider transport, and the LND baseline.

Run with::

    pytest benchmarks/bench_dag_mix.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.runner import build_runtime
from repro.fluid import PaymentGraph, decompose_payment_graph
from repro.metrics import format_table
from repro.routing import make_scheme
from repro.topology import isp_topology
from repro.workload import mixed_demand, records_from_demand

FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
SCHEMES = ["spider-waterfilling", "spider-window", "lnd"]

#: Keep channels tight relative to the offered load so the sweep measures
#: the *sustainable* rate, not the escrow transient (at 600/120 the escrow
#: absorbs the whole DAG demand and the sweep flattens).
CAPACITY = 300.0
DURATION = 60.0
TOTAL_RATE = 200.0


def _run_point(scheme_name: str, fraction: float, topology, seed: int = 7):
    demands = mixed_demand(
        list(topology.nodes), TOTAL_RATE, circulation_fraction=fraction, seed=seed
    )
    records = records_from_demand(demands, duration=DURATION, mean_size=15.0, seed=seed)
    network = topology.build_network(default_capacity=CAPACITY)
    scheme = make_scheme(scheme_name)
    from repro.core.runtime import RuntimeConfig

    runtime = build_runtime(
        network, records, scheme, RuntimeConfig(end_time=DURATION + 15.0)
    )
    metrics = runtime.run()
    nu = decompose_payment_graph(PaymentGraph(demands), method="lp").value
    realized_share = nu / max(sum(demands.values()), 1e-9)
    return metrics, realized_share


def test_dag_mix_sweep(benchmark):
    """Success volume rises with the circulation share for every scheme."""
    topology = isp_topology()

    def run():
        table = {}
        shares = {}
        for fraction in FRACTIONS:
            for scheme in SCHEMES:
                metrics, realized = _run_point(scheme, fraction, topology)
                table[(scheme, fraction)] = metrics
                shares[fraction] = realized
        return table, shares

    table, shares = run_once(benchmark, run)

    rows = []
    for scheme in SCHEMES:
        row = [scheme]
        for fraction in FRACTIONS:
            row.append(f"{100 * table[(scheme, fraction)].success_volume:.1f}")
        rows.append(row)
    header = ["scheme"] + [f"x={f:.2f}" for f in FRACTIONS]
    print()
    print(
        format_table(
            header,
            rows,
            title="success volume (%) vs circulation fraction of demand",
        )
    )
    print(
        "realized nu/demand per x: "
        + ", ".join(f"{f:.2f}->{shares[f]:.2f}" for f in FRACTIONS)
    )

    for scheme in SCHEMES:
        pure_dag = table[(scheme, 0.0)].success_volume
        pure_circ = table[(scheme, 1.0)].success_volume
        # The paper's reading of Prop. 1: circulation demand is sustainable,
        # DAG demand is escrow-bounded.  Expect a decisive gap.
        assert pure_circ > pure_dag + 0.15, (
            f"{scheme}: pure circulation {pure_circ:.2f} should clearly beat "
            f"pure DAG {pure_dag:.2f}"
        )
        # And the sweep should be broadly monotone in the circulation share.
        volumes = [table[(scheme, f)].success_volume for f in FRACTIONS]
        for lo, hi in zip(volumes, volumes[1:]):
            assert hi >= lo - 0.08, f"{scheme}: non-monotone sweep {volumes}"

    # Note: on this *sparse-pair* synthetic demand (a handful of heavy
    # flows), single-path LND can edge out multipath waterfilling —
    # spreading over k=4 paths burns more capacity per delivered unit when
    # capacity is this tight.  The many-pair Fig. 6 regime (see
    # bench_new_baselines.py) is where Spider's multipath wins; we assert
    # scheme ordering there, not here.


def test_circulation_share_is_monotone_in_fraction(benchmark):
    """The workload generator's realized nu(C*)/demand tracks the requested
    circulation fraction (weakly monotone; DAG edges may close cycles)."""

    def run():
        shares = []
        for fraction in FRACTIONS:
            demands = mixed_demand(
                range(24), 100.0, circulation_fraction=fraction, seed=11
            )
            nu = decompose_payment_graph(PaymentGraph(demands), method="lp").value
            shares.append(nu / sum(demands.values()))
        return shares

    shares = run_once(benchmark, run)
    print("\nrealized circulation shares:", [f"{s:.3f}" for s in shares])
    assert shares[0] <= shares[-1]
    assert shares[-1] == pytest.approx(1.0, abs=1e-6)
    for lo, hi in zip(shares, shares[1:]):
        assert hi >= lo - 0.1  # weakly increasing up to sampling noise
