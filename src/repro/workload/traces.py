"""Trace serialisation.

CSV-like text format, one transaction per line:
``txn_id,arrival_time,source,dest,amount[,deadline]``.
Lines starting with ``#`` are comments.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ConfigError
from repro.workload.generator import TransactionRecord

__all__ = ["dump_trace", "dumps_trace", "load_trace", "loads_trace"]


def dumps_trace(records: Sequence[TransactionRecord]) -> str:
    """Serialise a trace to text."""
    out = io.StringIO()
    out.write("# txn_id,arrival_time,source,dest,amount[,deadline]\n")
    for r in records:
        base = f"{r.txn_id},{r.arrival_time!r},{r.source},{r.dest},{r.amount!r}"
        if r.deadline is not None:
            base += f",{r.deadline!r}"
        out.write(base + "\n")
    return out.getvalue()


def dump_trace(records: Sequence[TransactionRecord], path: Union[str, Path]) -> None:
    """Write a trace to ``path``."""
    Path(path).write_text(dumps_trace(records))


def loads_trace(text: str) -> List[TransactionRecord]:
    """Parse a trace from text."""
    records: List[TransactionRecord] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) not in (5, 6):
            raise ConfigError(f"line {line_number}: expected 5 or 6 fields, got {len(parts)}")
        try:
            records.append(
                TransactionRecord(
                    txn_id=int(parts[0]),
                    arrival_time=float(parts[1]),
                    source=int(parts[2]),
                    dest=int(parts[3]),
                    amount=float(parts[4]),
                    deadline=float(parts[5]) if len(parts) == 6 else None,
                )
            )
        except ValueError as exc:
            raise ConfigError(f"line {line_number}: malformed trace line {raw!r}") from exc
    return records


def load_trace(path: Union[str, Path]) -> List[TransactionRecord]:
    """Read a trace from ``path``."""
    return loads_trace(Path(path).read_text())
