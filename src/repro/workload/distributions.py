"""Transaction size distributions.

The paper samples transaction sizes "from Ripple data after pruning out the
largest 10%"; the resulting ISP-experiment workload has mean 170 XRP and
maximum 1780 XRP, and the Ripple-experiment workload has mean 345 XRP and
maximum 2892 XRP (§6.1).  The raw trace is unavailable offline, so we model
sizes with a *truncated lognormal* — the canonical heavy-tailed model for
payment values — calibrated so the post-truncation mean and the maximum
match the paper's reported statistics exactly (DESIGN.md substitution #1).

For ablations and tests the module also ships constant, uniform, exponential
and empirical (table-driven) distributions behind the same interface.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol, Sequence

import numpy as np
from scipy.stats import norm

from repro.errors import ConfigError
from repro.simulator.rng import SeedLike, make_rng

__all__ = [
    "SizeDistribution",
    "ConstantSize",
    "UniformSize",
    "ExponentialSize",
    "TruncatedLognormalSize",
    "EmpiricalSize",
    "ripple_isp_sizes",
    "ripple_full_sizes",
]


class SizeDistribution(Protocol):
    """Anything that can draw positive transaction sizes."""

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` i.i.d. sizes."""
        ...

    @property
    def mean(self) -> float:
        """Expected transaction size."""
        ...


class ConstantSize:
    """Every transaction has the same size (useful for exact accounting)."""

    def __init__(self, value: float):
        if value <= 0:
            raise ConfigError(f"size must be positive, got {value!r}")
        self._value = float(value)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return np.full(n, self._value)

    @property
    def mean(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"ConstantSize({self._value:.6g})"


class UniformSize:
    """Sizes uniform on [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 < low <= high:
            raise ConfigError(f"need 0 < low <= high, got ({low!r}, {high!r})")
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.uniform(self._low, self._high, size=n)

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def __repr__(self) -> str:
        return f"UniformSize({self._low:.6g}, {self._high:.6g})"


class ExponentialSize:
    """Exponential sizes with the given mean, floored at ``minimum``."""

    def __init__(self, mean: float, minimum: float = 1e-6):
        if mean <= 0:
            raise ConfigError(f"mean must be positive, got {mean!r}")
        self._mean = float(mean)
        self._minimum = float(minimum)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return np.maximum(rng.exponential(self._mean, size=n), self._minimum)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialSize({self._mean:.6g})"


class TruncatedLognormalSize:
    """Lognormal conditioned on X ≤ max_value, calibrated to a target mean.

    Parameters
    ----------
    target_mean:
        Desired mean *after* truncation.
    max_value:
        Hard upper bound (rejection-free via inverse-CDF sampling).
    sigma:
        Log-scale shape; 1.0 gives the moderate heavy tail typical of
        payment datasets.

    The location parameter μ is found by bisection on the closed-form
    truncated-lognormal mean
    ``E[X | X ≤ T] = exp(μ + σ²/2) · Φ((lnT − μ − σ²)/σ) / Φ((lnT − μ)/σ)``.
    """

    def __init__(self, target_mean: float, max_value: float, sigma: float = 1.0):
        if target_mean <= 0 or max_value <= 0:
            raise ConfigError("target_mean and max_value must be positive")
        if target_mean >= max_value:
            raise ConfigError(
                f"target_mean={target_mean!r} must be below max_value={max_value!r}"
            )
        if sigma <= 0:
            raise ConfigError(f"sigma must be positive, got {sigma!r}")
        self._target_mean = float(target_mean)
        self._max_value = float(max_value)
        self._sigma = float(sigma)
        self._mu = self._calibrate_mu()

    def _truncated_mean(self, mu: float) -> float:
        sigma = self._sigma
        log_t = math.log(self._max_value)
        numerator = math.exp(mu + sigma * sigma / 2.0) * norm.cdf(
            (log_t - mu - sigma * sigma) / sigma
        )
        denominator = norm.cdf((log_t - mu) / sigma)
        if denominator <= 0:
            return float("inf")
        return numerator / denominator

    def _calibrate_mu(self) -> float:
        low = math.log(self._target_mean) - 10.0
        high = math.log(self._max_value) + 10.0
        for _ in range(200):
            mid = (low + high) / 2.0
            if self._truncated_mean(mid) < self._target_mean:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        # Inverse-CDF sampling restricted to the truncation region: draw
        # u ~ U(0, F(T)) and invert the untruncated lognormal CDF.
        sigma, mu = self._sigma, self._mu
        cap = norm.cdf((math.log(self._max_value) - mu) / sigma)
        u = rng.uniform(0.0, cap, size=n)
        z = norm.ppf(u)
        return np.exp(mu + sigma * z)

    @property
    def mean(self) -> float:
        return self._target_mean

    @property
    def max_value(self) -> float:
        """Truncation bound (no sample exceeds this)."""
        return self._max_value

    def __repr__(self) -> str:
        return (
            f"TruncatedLognormalSize(mean={self._target_mean:.6g}, "
            f"max={self._max_value:.6g}, sigma={self._sigma:.3g})"
        )


class EmpiricalSize:
    """Discrete empirical distribution over an explicit value table."""

    def __init__(self, values: Sequence[float], weights: Optional[Sequence[float]] = None):
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ConfigError("empirical distribution needs at least one value")
        if np.any(values <= 0):
            raise ConfigError("all sizes must be positive")
        if weights is None:
            weights = np.ones_like(values)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != values.shape or np.any(weights < 0) or weights.sum() <= 0:
            raise ConfigError("weights must be non-negative, same shape, not all zero")
        self._values = values
        self._probs = weights / weights.sum()

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.choice(self._values, size=n, p=self._probs)

    @property
    def mean(self) -> float:
        return float(np.dot(self._values, self._probs))

    def __repr__(self) -> str:
        return f"EmpiricalSize(n={self._values.size}, mean={self.mean:.6g})"


def ripple_isp_sizes() -> TruncatedLognormalSize:
    """Sizes for the ISP experiments: mean 170 XRP, max 1780 XRP (§6.1)."""
    return TruncatedLognormalSize(target_mean=170.0, max_value=1780.0)


def ripple_full_sizes() -> TruncatedLognormalSize:
    """Sizes for the Ripple experiments: mean 345 XRP, max 2892 XRP (§6.1)."""
    return TruncatedLognormalSize(target_mean=345.0, max_value=2892.0)
