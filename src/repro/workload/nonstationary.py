"""Controlled non-stationarity: same demand matrix, different temporal mix.

§6.2 attributes Spider (LP)'s poor Ripple result to traffic whose demands
"vary over time" while the LP is solved once against the long-term average.
To isolate that effect experimentally, this module rearranges *when*
transactions happen without changing *what* they are:

* :func:`stretch_records` dilates a trace in time (rate scaling);
* :func:`phase_interleave` takes two traces generated over [0, T/2] and
  produces either

  - a **stationary** mix — both patterns run concurrently at half rate over
    [0, T] — or
  - a **rotating** mix — pattern A occupies the even phase windows and
    pattern B the odd ones, each at full rate.

Both outputs contain exactly the same transactions, so their long-run
demand matrices are identical; only the instantaneous demand differs.  An
offline LP solved on the long-run matrix is correct for the stationary mix
and wrong at every instant for the rotating one.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ConfigError
from repro.workload.generator import TransactionRecord

__all__ = ["stretch_records", "phase_interleave"]


def _retime(record: TransactionRecord, txn_id: int, time: float) -> TransactionRecord:
    return TransactionRecord(
        txn_id=txn_id,
        arrival_time=time,
        source=record.source,
        dest=record.dest,
        amount=record.amount,
        deadline=record.deadline,
    )


def stretch_records(
    records: Sequence[TransactionRecord], factor: float
) -> List[TransactionRecord]:
    """Dilate arrival times by ``factor`` (> 1 slows the trace down)."""
    if factor <= 0:
        raise ConfigError(f"factor must be positive, got {factor!r}")
    return [
        _retime(r, i, r.arrival_time * factor)
        for i, r in enumerate(sorted(records, key=lambda r: r.arrival_time))
    ]


def phase_interleave(
    records_a: Sequence[TransactionRecord],
    records_b: Sequence[TransactionRecord],
    phase_length: float,
    rotate: bool,
) -> List[TransactionRecord]:
    """Combine two half-duration traces into one full-duration trace.

    Parameters
    ----------
    records_a, records_b:
        Traces generated over the *same* interval [0, T/2].
    phase_length:
        Rotation window L (seconds), used only when ``rotate`` is true.
    rotate:
        False — stationary mix: both traces stretched 2× so each runs at
        half rate over [0, T].
        True — rotating mix: trace A is cut into L-second slices placed in
        even windows of [0, T]; trace B's slices go in odd windows.

    Both modes emit exactly ``len(records_a) + len(records_b)``
    transactions with identical (source, dest, amount) multisets — the
    long-run demand matrices match by construction.
    """
    if phase_length <= 0:
        raise ConfigError(f"phase_length must be positive, got {phase_length!r}")

    combined: List[TransactionRecord] = []
    if not rotate:
        for record in records_a:
            combined.append(_retime(record, 0, record.arrival_time * 2.0))
        for record in records_b:
            combined.append(_retime(record, 0, record.arrival_time * 2.0))
    else:
        for offset, records in ((0, records_a), (1, records_b)):
            for record in records:
                window = int(record.arrival_time // phase_length)
                within = record.arrival_time - window * phase_length
                time = (2 * window + offset) * phase_length + within
                combined.append(_retime(record, 0, time))
    combined.sort(key=lambda r: r.arrival_time)
    return [_retime(r, i, r.arrival_time) for i, r in enumerate(combined)]
