"""Transaction trace generation.

Reproduces the paper's workload model (§6.1): Poisson transaction arrivals
where each transaction's *sender* is drawn from an exponential popularity
distribution over nodes, the *receiver* uniformly at random, and the size
from a Ripple-calibrated distribution.

The generator also supports the *demand rotation* extension used by the
Ripple experiments: the paper observes that Ripple's "traffic demands vary
over time", which is what defeats the one-shot Spider-LP scheme.  Setting
``rotation_interval`` re-draws the sender popularity weights every interval,
reproducing that non-stationarity synthetically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.simulator.rng import SeedLike, exponential_weights, make_rng
from repro.workload.distributions import SizeDistribution, ripple_isp_sizes

__all__ = ["TransactionRecord", "WorkloadConfig", "generate_workload"]


@dataclass(frozen=True)
class TransactionRecord:
    """One transaction in a trace: who pays whom, how much, and when.

    ``deadline`` is the absolute time by which the payment must complete;
    ``None`` means "by the end of the simulation" (the paper's setting).
    """

    txn_id: int
    arrival_time: float
    source: int
    dest: int
    amount: float
    deadline: Optional[float] = None


@dataclass
class WorkloadConfig:
    """Parameters of a synthetic workload.

    Attributes
    ----------
    num_transactions:
        Trace length.  The paper uses 200 000 transactions on the ISP
        topology and 75 000 on Ripple; the benchmarks scale these down.
    arrival_rate:
        Poisson arrival rate in transactions/second across the whole
        network.
    size_distribution:
        Sampler for transaction values; defaults to the ISP-calibrated
        truncated lognormal.
    sender_exponential_scale:
        Scale of the exponential node-popularity weights for senders.
    rotation_interval:
        If set, re-draw sender weights every ``rotation_interval`` seconds
        (synthetic non-stationarity; see module docstring).
    deadline:
        Optional relative deadline (seconds after arrival) applied to every
        payment.
    seed:
        RNG seed for full determinism.
    """

    num_transactions: int
    arrival_rate: float
    size_distribution: Optional[SizeDistribution] = None
    sender_exponential_scale: float = 1.0
    rotation_interval: Optional[float] = None
    deadline: Optional[float] = None
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.num_transactions <= 0:
            raise ConfigError(
                f"num_transactions must be positive, got {self.num_transactions!r}"
            )
        if self.arrival_rate <= 0:
            raise ConfigError(f"arrival_rate must be positive, got {self.arrival_rate!r}")
        if self.rotation_interval is not None and self.rotation_interval <= 0:
            raise ConfigError(
                f"rotation_interval must be positive, got {self.rotation_interval!r}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError(f"deadline must be positive, got {self.deadline!r}")


def generate_workload(
    nodes: Sequence[int],
    config: WorkloadConfig,
) -> List[TransactionRecord]:
    """Generate a deterministic transaction trace over ``nodes``.

    Senders follow exponential popularity weights; receivers are uniform
    over the remaining nodes; inter-arrival gaps are exponential with rate
    ``config.arrival_rate`` (a Poisson process).
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ConfigError("need at least two nodes to generate transactions")
    rng = make_rng(config.seed)
    sizes = config.size_distribution or ripple_isp_sizes()

    sender_probs = exponential_weights(len(nodes), config.sender_exponential_scale, rng)
    next_rotation = (
        config.rotation_interval if config.rotation_interval is not None else None
    )

    amounts = sizes.sample(rng, config.num_transactions)
    gaps = rng.exponential(1.0 / config.arrival_rate, size=config.num_transactions)

    records: List[TransactionRecord] = []
    now = 0.0
    for txn_id in range(config.num_transactions):
        now += float(gaps[txn_id])
        if next_rotation is not None and now >= next_rotation:
            sender_probs = exponential_weights(
                len(nodes), config.sender_exponential_scale, rng
            )
            next_rotation += config.rotation_interval
        source = nodes[int(rng.choice(len(nodes), p=sender_probs))]
        dest = source
        while dest == source:
            dest = nodes[int(rng.integers(len(nodes)))]
        deadline = None if config.deadline is None else now + config.deadline
        records.append(
            TransactionRecord(
                txn_id=txn_id,
                arrival_time=now,
                source=source,
                dest=dest,
                amount=float(amounts[txn_id]),
                deadline=deadline,
            )
        )
    return records
