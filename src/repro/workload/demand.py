"""Demand matrices: estimation from traces and synthetic construction.

Spider (LP) routes against an estimate of the long-term demand matrix
d_{i,j} (§6.1: *"Spider (LP) solves the LP in Eq. (1) once based on the
long-term payment demands"*).  This module estimates demand matrices from
traces and also constructs synthetic demands with a controlled
circulation/DAG mix, which the throughput-bound experiments use: by
Proposition 1, a pure-circulation demand is fully routable under perfect
balance while a DAG demand is not routable at all.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.fluid.circulation import PaymentGraph
from repro.simulator.rng import SeedLike, make_rng
from repro.workload.generator import TransactionRecord

__all__ = [
    "estimate_demand_matrix",
    "payment_graph_from_records",
    "circulation_demand",
    "dag_demand",
    "mixed_demand",
    "records_from_demand",
    "rotating_records_from_demand",
]

Pair = Tuple[int, int]


def estimate_demand_matrix(
    records: Sequence[TransactionRecord],
    duration: Optional[float] = None,
) -> Dict[Pair, float]:
    """Average payment *rate* (value/second) per source/destination pair.

    ``duration`` defaults to the last arrival time in the trace.
    """
    if not records:
        return {}
    if duration is None:
        duration = max(r.arrival_time for r in records)
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration!r}")
    totals: Dict[Pair, float] = defaultdict(float)
    for record in records:
        totals[(record.source, record.dest)] += record.amount
    return {pair: value / duration for pair, value in totals.items()}


def payment_graph_from_records(
    records: Sequence[TransactionRecord],
    duration: Optional[float] = None,
) -> PaymentGraph:
    """The trace's payment graph H (§5.2.2), weighted by average rate."""
    return PaymentGraph(estimate_demand_matrix(records, duration))


def circulation_demand(
    nodes: Sequence[int],
    total_rate: float,
    num_cycles: int = 5,
    cycle_length: Tuple[int, int] = (3, 5),
    seed: SeedLike = 0,
) -> Dict[Pair, float]:
    """A pure-circulation demand matrix (ν(C*) == total demand).

    Built as a sum of random simple cycles with equal per-cycle rates;
    cycles are sampled over the node set, not the channel topology — the
    payment graph never depends on the topology (§5.2.2).
    """
    nodes = list(nodes)
    if len(nodes) < 3:
        raise ConfigError("need at least 3 nodes for a circulation")
    if total_rate <= 0:
        raise ConfigError(f"total_rate must be positive, got {total_rate!r}")
    if num_cycles <= 0:
        raise ConfigError(f"num_cycles must be positive, got {num_cycles!r}")
    lo, hi = cycle_length
    if not 3 <= lo <= hi or hi > len(nodes):
        raise ConfigError(
            f"cycle_length {cycle_length!r} out of range for {len(nodes)} nodes"
        )
    rng = make_rng(seed)
    demands: Dict[Pair, float] = defaultdict(float)
    total_edges = 0
    cycles: List[List[int]] = []
    for _ in range(num_cycles):
        length = int(rng.integers(lo, hi + 1))
        cycle = list(rng.choice(nodes, size=length, replace=False))
        cycles.append(cycle)
        total_edges += length
    # Uniform per-edge rate so the aggregate hits total_rate exactly.
    per_edge = total_rate / total_edges
    for cycle in cycles:
        for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
            demands[(int(a), int(b))] += per_edge
    return dict(demands)


def dag_demand(
    nodes: Sequence[int],
    total_rate: float,
    num_pairs: int = 5,
    seed: SeedLike = 0,
) -> Dict[Pair, float]:
    """A pure-DAG demand matrix (ν(C*) == 0).

    Demand edges always point from lower to higher node rank under a random
    permutation, so no directed cycle can exist.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ConfigError("need at least 2 nodes for a DAG demand")
    if total_rate <= 0:
        raise ConfigError(f"total_rate must be positive, got {total_rate!r}")
    if num_pairs <= 0:
        raise ConfigError(f"num_pairs must be positive, got {num_pairs!r}")
    rng = make_rng(seed)
    order = list(rng.permutation(nodes))
    rank = {node: i for i, node in enumerate(order)}
    demands: Dict[Pair, float] = defaultdict(float)
    per_pair = total_rate / num_pairs
    for _ in range(num_pairs):
        a, b = rng.choice(nodes, size=2, replace=False)
        a, b = int(a), int(b)
        if rank[a] > rank[b]:
            a, b = b, a
        demands[(a, b)] += per_pair
    return dict(demands)


def mixed_demand(
    nodes: Sequence[int],
    total_rate: float,
    circulation_fraction: float,
    seed: SeedLike = 0,
) -> Dict[Pair, float]:
    """Demand with a controlled circulation share.

    ``circulation_fraction`` of the total rate forms cycles; the remainder
    forms a DAG.  Note the *realised* ν(C*)/total can exceed the requested
    fraction if DAG edges happen to complete cycles with circulation edges;
    the experiments use disjoint node subsets when exact control matters.
    """
    if not 0.0 <= circulation_fraction <= 1.0:
        raise ConfigError(
            f"circulation_fraction must lie in [0, 1], got {circulation_fraction!r}"
        )
    rng = make_rng(seed)
    demands: Dict[Pair, float] = defaultdict(float)
    circ_rate = total_rate * circulation_fraction
    dag_rate = total_rate - circ_rate
    if circ_rate > 0:
        for pair, rate in circulation_demand(nodes, circ_rate, seed=rng).items():
            demands[pair] += rate
    if dag_rate > 0:
        for pair, rate in dag_demand(nodes, dag_rate, seed=rng).items():
            demands[pair] += rate
    return dict(demands)


def records_from_demand(
    demands: Dict[Pair, float],
    duration: float,
    mean_size: float,
    seed: SeedLike = 0,
) -> List[TransactionRecord]:
    """Materialise a demand matrix into a Poisson transaction trace.

    Each pair (i, j) emits transactions of exponential size with the given
    mean, at Poisson rate ``d_ij / mean_size`` transactions per second, so
    the value rate matches the demand matrix in expectation.
    """
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration!r}")
    if mean_size <= 0:
        raise ConfigError(f"mean_size must be positive, got {mean_size!r}")
    rng = make_rng(seed)
    records: List[TransactionRecord] = []
    txn_id = 0
    for (source, dest), rate in sorted(demands.items()):
        if rate <= 0:
            continue
        txn_rate = rate / mean_size
        now = float(rng.exponential(1.0 / txn_rate))
        while now < duration:
            amount = float(rng.exponential(mean_size))
            records.append(
                TransactionRecord(
                    txn_id=txn_id,
                    arrival_time=now,
                    source=source,
                    dest=dest,
                    amount=max(amount, 1e-6),
                )
            )
            txn_id += 1
            now += float(rng.exponential(1.0 / txn_rate))
    records.sort(key=lambda r: r.arrival_time)
    # Re-number so ids follow arrival order.
    records = [
        TransactionRecord(
            txn_id=i,
            arrival_time=r.arrival_time,
            source=r.source,
            dest=r.dest,
            amount=r.amount,
            deadline=r.deadline,
        )
        for i, r in enumerate(records)
    ]
    return records


def rotating_records_from_demand(
    demands: Dict[Pair, float],
    duration: float,
    mean_size: float,
    num_phases: int,
    phase_length: float,
    seed: SeedLike = 0,
) -> List[TransactionRecord]:
    """Non-stationary trace whose *long-run* demand matrix equals ``demands``.

    The demand pairs are partitioned round-robin into ``num_phases`` groups;
    at any moment only one group is active (cycling every ``phase_length``
    seconds), sending at ``num_phases ×`` its average rate so the time
    average still matches ``demands`` exactly.

    This isolates the effect that degrades Spider (LP) on Ripple (§6.2):
    the long-term demand matrix — which the LP is solved against — is
    unchanged, but the *instantaneous* demands deviate from it, so the
    offline path weights are wrong at every point in time.
    """
    if num_phases <= 0:
        raise ConfigError(f"num_phases must be positive, got {num_phases!r}")
    if phase_length <= 0:
        raise ConfigError(f"phase_length must be positive, got {phase_length!r}")
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration!r}")
    if mean_size <= 0:
        raise ConfigError(f"mean_size must be positive, got {mean_size!r}")
    rng = make_rng(seed)
    pairs = sorted(demands)
    records: List[TransactionRecord] = []
    for pair_index, (source, dest) in enumerate(pairs):
        rate = demands[(source, dest)]
        if rate <= 0:
            continue
        group_index = pair_index % num_phases
        boosted_txn_rate = num_phases * rate / mean_size
        # Walk this pair's active windows and emit a Poisson stream inside
        # each one.
        window_start = group_index * phase_length
        while window_start < duration:
            now = window_start + float(rng.exponential(1.0 / boosted_txn_rate))
            window_end = min(window_start + phase_length, duration)
            while now < window_end:
                amount = max(float(rng.exponential(mean_size)), 1e-6)
                records.append(
                    TransactionRecord(
                        txn_id=0,
                        arrival_time=now,
                        source=source,
                        dest=dest,
                        amount=amount,
                    )
                )
                now += float(rng.exponential(1.0 / boosted_txn_rate))
            window_start += num_phases * phase_length
    records.sort(key=lambda r: r.arrival_time)
    return [
        TransactionRecord(
            txn_id=i,
            arrival_time=r.arrival_time,
            source=r.source,
            dest=r.dest,
            amount=r.amount,
        )
        for i, r in enumerate(records)
    ]
