"""Workload substrate: sizes, arrivals, demand matrices, trace files."""

from repro.workload.demand import (
    circulation_demand,
    dag_demand,
    estimate_demand_matrix,
    mixed_demand,
    payment_graph_from_records,
    records_from_demand,
    rotating_records_from_demand,
)
from repro.workload.distributions import (
    ConstantSize,
    EmpiricalSize,
    ExponentialSize,
    SizeDistribution,
    TruncatedLognormalSize,
    UniformSize,
    ripple_full_sizes,
    ripple_isp_sizes,
)
from repro.workload.generator import TransactionRecord, WorkloadConfig, generate_workload
from repro.workload.traces import dump_trace, dumps_trace, load_trace, loads_trace

__all__ = [
    "ConstantSize",
    "EmpiricalSize",
    "ExponentialSize",
    "SizeDistribution",
    "TransactionRecord",
    "TruncatedLognormalSize",
    "UniformSize",
    "WorkloadConfig",
    "circulation_demand",
    "dag_demand",
    "dump_trace",
    "dumps_trace",
    "estimate_demand_matrix",
    "generate_workload",
    "load_trace",
    "loads_trace",
    "mixed_demand",
    "payment_graph_from_records",
    "records_from_demand",
    "ripple_full_sizes",
    "ripple_isp_sizes",
    "rotating_records_from_demand",
]
