"""Exception hierarchy shared across the library.

All library-specific failures derive from :class:`ReproError` so callers can
distinguish domain failures (a path ran out of funds) from programming
errors (a malformed path).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TopologyError",
    "NoPathError",
    "InsufficientFundsError",
    "ChannelError",
    "PaymentError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """An experiment or component was configured inconsistently."""


class TopologyError(ReproError):
    """A topology request cannot be satisfied (bad size, missing node...)."""


class NoPathError(ReproError):
    """No usable path exists between a source and destination."""


class InsufficientFundsError(ReproError):
    """A channel lacks spendable balance for a requested lock."""


class ChannelError(ReproError):
    """A channel operation violated the channel state machine."""


class PaymentError(ReproError):
    """A payment-level operation was invalid (e.g. double completion)."""
