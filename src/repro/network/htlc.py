"""Hash time-locked contract (HTLC) mechanics.

In a payment channel network, an intermediate hop only gets paid if it learns
the preimage of a hash chosen by the payment's key generator (the sender, in
Spider's non-atomic design — §4.1 of the paper).  This module models both
layers:

* :class:`HashLock` — the cryptographic object (key, hash, verification),
  implemented with SHA-256.  Spider generates a fresh key per transaction
  unit so the sender can withhold keys for units that arrive past their
  deadline.
* :class:`Htlc` — the per-channel conditional transfer record with the
  ``PENDING → SETTLED | REFUNDED`` state machine that
  :class:`~repro.network.channel.PaymentChannel` enforces.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ChannelError

__all__ = ["HashLock", "Htlc", "HtlcState"]

_hash_lock_counter = itertools.count()


@dataclass(frozen=True)
class HashLock:
    """A hash lock: ``hash = SHA256(key)``.

    The sender keeps ``key`` secret until it decides the transfer should
    complete; every hop can verify a revealed key against ``hash_value``.
    """

    key: bytes
    hash_value: bytes

    @classmethod
    def generate(cls, payment_id: int, sequence: int, salt: int = 0) -> "HashLock":
        """Deterministically derive a fresh lock for a transaction unit.

        Real implementations draw the key from a CSPRNG; for reproducibility
        the simulator derives it from the (payment, unit) identity, which
        preserves the uniqueness property the protocol needs.
        """
        nonce = next(_hash_lock_counter)
        key = hashlib.sha256(
            f"spider-key:{payment_id}:{sequence}:{salt}:{nonce}".encode()
        ).digest()
        return cls(key=key, hash_value=hashlib.sha256(key).digest())

    def verify(self, key: bytes) -> bool:
        """Check whether ``key`` is the preimage of this lock's hash."""
        return hashlib.sha256(key).digest() == self.hash_value


class HtlcState(enum.Enum):
    """Lifecycle of a conditional transfer on one channel."""

    PENDING = "pending"
    SETTLED = "settled"
    REFUNDED = "refunded"


@dataclass
class Htlc:
    """One hop's conditional transfer.

    ``amount`` is deducted from ``sender``'s spendable balance when the HTLC
    is created (the funds become *in-flight*, Fig. 3 of the paper).  On
    settlement the counterparty is credited; on refund the sender is
    re-credited.  Terminal states are enforced here and double transitions
    raise :class:`~repro.errors.ChannelError`.
    """

    htlc_id: int
    sender: object
    receiver: object
    amount: float
    created_at: float
    lock: Optional[HashLock] = None
    state: HtlcState = field(default=HtlcState.PENDING)

    def mark_settled(self) -> None:
        """Transition ``PENDING → SETTLED``."""
        if self.state is not HtlcState.PENDING:
            raise ChannelError(
                f"HTLC {self.htlc_id} cannot settle from state {self.state.value}"
            )
        self.state = HtlcState.SETTLED

    def mark_refunded(self) -> None:
        """Transition ``PENDING → REFUNDED``."""
        if self.state is not HtlcState.PENDING:
            raise ChannelError(
                f"HTLC {self.htlc_id} cannot refund from state {self.state.value}"
            )
        self.state = HtlcState.REFUNDED

    @property
    def pending(self) -> bool:
        """Whether the transfer is still conditional."""
        return self.state is HtlcState.PENDING
