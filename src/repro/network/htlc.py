"""Hash time-locked contract (HTLC) mechanics.

In a payment channel network, an intermediate hop only gets paid if it learns
the preimage of a hash chosen by the payment's key generator (the sender, in
Spider's non-atomic design — §4.1 of the paper).  This module models both
layers:

* :class:`HashLock` — the cryptographic object (key, hash, verification),
  implemented with SHA-256.  Spider generates a fresh key per transaction
  unit so the sender can withhold keys for units that arrive past their
  deadline.
* :class:`Htlc` — the per-channel conditional transfer record with the
  ``PENDING → SETTLED | REFUNDED`` state machine that
  :class:`~repro.network.channel.PaymentChannel` enforces.

Lock generation is on the per-unit hot path (every transaction unit of
every scheme mints one), so :meth:`HashLock.generate` runs in counter
mode: keys are a seeded 24-byte stream prefix plus a 64-bit counter —
unique by construction with no per-unit hashing — and the SHA-256 hash
value is computed lazily, only when something actually inspects or
verifies the lock.  :func:`seed_hash_locks` re-seeds the stream (wired to
the experiment seed), keeping key material reproducible run to run.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ChannelError

__all__ = ["HashLock", "Htlc", "HtlcState", "seed_hash_locks"]

_hash_lock_counter = itertools.count()
_key_stream_prefix = hashlib.sha256(b"spider-keystream:0").digest()[:24]


def seed_hash_locks(seed: int = 0) -> None:
    """Re-seed the counter-mode key stream (and restart its counter).

    Called by the experiment construction path with a seed derived from
    the experiment's, so the exact key bytes are reproducible run to run.
    Simulation outcomes never depend on key material — locks are opaque
    tokens — but reproducible bytes keep traces comparable.
    """
    global _key_stream_prefix, _hash_lock_counter
    _key_stream_prefix = hashlib.sha256(
        f"spider-keystream:{seed}".encode()
    ).digest()[:24]
    _hash_lock_counter = itertools.count()


class HashLock:
    """A hash lock: ``hash = SHA256(key)`` (hash computed lazily).

    The sender keeps ``key`` secret until it decides the transfer should
    complete; every hop can verify a revealed key against ``hash_value``.
    """

    __slots__ = ("key", "_hash_value")

    def __init__(self, key: bytes, hash_value: Optional[bytes] = None):
        self.key = key
        self._hash_value = hash_value

    @property
    def hash_value(self) -> bytes:
        """SHA-256 of the key, computed on first access and cached."""
        if self._hash_value is None:
            self._hash_value = hashlib.sha256(self.key).digest()
        return self._hash_value

    @classmethod
    def generate(cls, payment_id: int, sequence: int, salt: int = 0) -> "HashLock":
        """Derive a fresh lock for a transaction unit, in counter mode.

        Real implementations draw the key from a CSPRNG; the simulator
        concatenates the seeded stream prefix with a monotone 64-bit
        counter, which preserves the uniqueness property the protocol
        needs at a fraction of the former two-SHA-256 cost.  The
        ``payment_id``/``sequence``/``salt`` identity is accepted for API
        compatibility; uniqueness comes from the counter alone (the old
        derivation already relied on it to disambiguate retries).
        """
        nonce = next(_hash_lock_counter)
        return cls(key=_key_stream_prefix + nonce.to_bytes(8, "big"))

    def verify(self, key: bytes) -> bool:
        """Check whether ``key`` is the preimage of this lock's hash."""
        return hashlib.sha256(key).digest() == self.hash_value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashLock) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashLock(key={self.key.hex()[:16]}…)"


class HtlcState(enum.Enum):
    """Lifecycle of a conditional transfer on one channel."""

    PENDING = "pending"
    SETTLED = "settled"
    REFUNDED = "refunded"


@dataclass
class Htlc:
    """One hop's conditional transfer.

    ``amount`` is deducted from ``sender``'s spendable balance when the HTLC
    is created (the funds become *in-flight*, Fig. 3 of the paper).  On
    settlement the counterparty is credited; on refund the sender is
    re-credited.  Terminal states are enforced here and double transitions
    raise :class:`~repro.errors.ChannelError`.
    """

    htlc_id: int
    sender: object
    receiver: object
    amount: float
    created_at: float
    lock: Optional[HashLock] = None
    state: HtlcState = field(default=HtlcState.PENDING)

    def mark_settled(self) -> None:
        """Transition ``PENDING → SETTLED``."""
        if self.state is not HtlcState.PENDING:
            raise ChannelError(
                f"HTLC {self.htlc_id} cannot settle from state {self.state.value}"
            )
        self.state = HtlcState.SETTLED

    def mark_refunded(self) -> None:
        """Transition ``PENDING → REFUNDED``."""
        if self.state is not HtlcState.PENDING:
            raise ChannelError(
                f"HTLC {self.htlc_id} cannot refund from state {self.state.value}"
            )
        self.state = HtlcState.REFUNDED

    @property
    def pending(self) -> bool:
        """Whether the transfer is still conditional."""
        return self.state is HtlcState.PENDING
