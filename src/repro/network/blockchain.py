"""The on-chain settlement layer underneath payment channels (§2).

Payment channel networks exist to *avoid* the blockchain, but their
security model depends on it: a channel is opened by an on-chain escrow
transaction, closed by publishing the latest co-signed balance, and
protected by the punishment rule — *"If one party tries to cheat by
publishing an earlier balance, the cheating party loses all the money they
escrowed"* (§2, Fig. 1).  §5.2.3's rebalancing rate b_(u,v) is likewise an
on-chain deposit.

This module implements that substrate:

* :class:`Blockchain` — an append-only ledger of blocks with a fixed
  per-transaction fee and confirmation latency (the reason on-chain
  rebalancing is expensive: "expensive ... in time (due to transaction
  confirmation delays) and in transaction fees");
* :class:`ChannelContract` — the on-chain lifecycle of one channel:
  OPEN → (balance updates happen off-chain, each with a monotonically
  increasing sequence number) → CLOSED, with cooperative close, unilateral
  close, and the cheat/punish path.

The simulator's :class:`~repro.network.channel.PaymentChannel` holds the
*off-chain* state; this module notarises its lifecycle.  Experiments use
it to account on-chain fees for the §5.2.3 rebalancing trade-off.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ChannelError, ConfigError, ReproError

__all__ = [
    "Blockchain",
    "BlockchainTransaction",
    "ChannelContract",
    "ContractState",
    "TxKind",
]


class TxKind(enum.Enum):
    """On-chain transaction types used by the channel lifecycle."""

    OPEN = "open"
    DEPOSIT = "deposit"
    COOPERATIVE_CLOSE = "cooperative-close"
    UNILATERAL_CLOSE = "unilateral-close"
    PUNISH = "punish"


@dataclass(frozen=True)
class BlockchainTransaction:
    """One confirmed on-chain transaction."""

    tx_id: int
    kind: TxKind
    parties: Tuple[object, ...]
    amounts: Dict[object, float]
    fee: float
    submitted_at: float
    confirmed_at: float
    memo: str = ""


class Blockchain:
    """A minimal fee-charging, latency-modelling ledger.

    Parameters
    ----------
    fee:
        Flat fee per transaction (the paper notes median Bitcoin fees
        regularly exceeded $1 and peaked at $34).
    confirmation_latency:
        Seconds from submission to confirmation (tens of minutes for
        Bitcoin; configurable here).
    """

    def __init__(self, fee: float = 1.0, confirmation_latency: float = 600.0):
        if fee < 0:
            raise ConfigError(f"fee must be non-negative, got {fee!r}")
        if confirmation_latency < 0:
            raise ConfigError(
                f"confirmation_latency must be non-negative, got {confirmation_latency!r}"
            )
        self.fee = fee
        self.confirmation_latency = confirmation_latency
        self._transactions: List[BlockchainTransaction] = []
        self._tx_ids = itertools.count(1)
        self.total_fees = 0.0

    def submit(
        self,
        kind: TxKind,
        parties: Tuple[object, ...],
        amounts: Dict[object, float],
        now: float,
        memo: str = "",
    ) -> BlockchainTransaction:
        """Record a transaction; returns it with its confirmation time."""
        tx = BlockchainTransaction(
            tx_id=next(self._tx_ids),
            kind=kind,
            parties=tuple(parties),
            amounts=dict(amounts),
            fee=self.fee,
            submitted_at=now,
            confirmed_at=now + self.confirmation_latency,
            memo=memo,
        )
        self._transactions.append(tx)
        self.total_fees += self.fee
        return tx

    @property
    def transactions(self) -> List[BlockchainTransaction]:
        """All confirmed transactions, oldest first."""
        return list(self._transactions)

    def transactions_of_kind(self, kind: TxKind) -> List[BlockchainTransaction]:
        """Filter the ledger by transaction type."""
        return [tx for tx in self._transactions if tx.kind is kind]

    def __len__(self) -> int:
        return len(self._transactions)


class ContractState(enum.Enum):
    """Lifecycle of a channel's on-chain contract."""

    OPEN = "open"
    CLOSED = "closed"


@dataclass
class _SignedState:
    """One co-signed off-chain balance statement (Fig. 1's messages)."""

    sequence: int
    balances: Dict[object, float]


class ChannelContract:
    """On-chain lifecycle of one payment channel.

    The parties exchange signed balance statements off-chain; only the
    latest one is safe to publish.  Publishing an older statement exposes
    the cheater to punishment: the counterparty claims the entire escrow
    (§2).
    """

    def __init__(
        self,
        chain: Blockchain,
        party_a: object,
        party_b: object,
        deposit_a: float,
        deposit_b: float,
        now: float = 0.0,
    ):
        if party_a == party_b:
            raise ChannelError("contract parties must differ")
        if deposit_a < 0 or deposit_b < 0 or deposit_a + deposit_b <= 0:
            raise ChannelError("deposits must be non-negative and not both zero")
        self.chain = chain
        self.party_a = party_a
        self.party_b = party_b
        self.state = ContractState.OPEN
        self._escrow = deposit_a + deposit_b
        self._states: List[_SignedState] = [
            _SignedState(0, {party_a: deposit_a, party_b: deposit_b})
        ]
        self.open_tx = chain.submit(
            TxKind.OPEN,
            (party_a, party_b),
            {party_a: deposit_a, party_b: deposit_b},
            now,
            memo="channel open",
        )
        self.close_tx: Optional[BlockchainTransaction] = None
        self.settlement: Optional[Dict[object, float]] = None

    # ------------------------------------------------------------------
    @property
    def escrow(self) -> float:
        """Total funds locked in the contract."""
        return self._escrow

    @property
    def latest_sequence(self) -> int:
        """Sequence number of the newest signed state."""
        return self._states[-1].sequence

    def latest_balances(self) -> Dict[object, float]:
        """The newest co-signed balance statement."""
        return dict(self._states[-1].balances)

    def signed_state(self, sequence: int) -> Dict[object, float]:
        """Look up an old signed state (what a cheater would publish)."""
        for state in self._states:
            if state.sequence == sequence:
                return dict(state.balances)
        raise ChannelError(f"no signed state with sequence {sequence}")

    # ------------------------------------------------------------------
    def update(self, balances: Dict[object, float]) -> int:
        """Record a new co-signed off-chain state; returns its sequence.

        Balances must cover both parties and conserve the escrow.
        """
        self._require_open()
        if set(balances) != {self.party_a, self.party_b}:
            raise ChannelError("balance statement must cover exactly both parties")
        if any(v < 0 for v in balances.values()):
            raise ChannelError("balances cannot be negative")
        total = sum(balances.values())
        if abs(total - self._escrow) > 1e-9:
            raise ChannelError(
                f"balance statement ({total:.6g}) does not conserve escrow "
                f"({self._escrow:.6g})"
            )
        sequence = self.latest_sequence + 1
        self._states.append(_SignedState(sequence, dict(balances)))
        return sequence

    def deposit(self, party: object, amount: float, now: float) -> None:
        """On-chain top-up (§5.2.3's b_(u,v) rebalancing deposit)."""
        self._require_open()
        if party not in (self.party_a, self.party_b):
            raise ChannelError(f"{party!r} is not a contract party")
        if amount <= 0:
            raise ChannelError(f"deposit must be positive, got {amount!r}")
        balances = self.latest_balances()
        balances[party] += amount
        self._escrow += amount
        self._states.append(_SignedState(self.latest_sequence + 1, balances))
        self.chain.submit(
            TxKind.DEPOSIT, (party,), {party: amount}, now, memo="rebalancing deposit"
        )

    # ------------------------------------------------------------------
    def cooperative_close(self, now: float) -> Dict[object, float]:
        """Both parties sign off; latest balances settle on-chain."""
        self._require_open()
        balances = self.latest_balances()
        self.close_tx = self.chain.submit(
            TxKind.COOPERATIVE_CLOSE,
            (self.party_a, self.party_b),
            balances,
            now,
            memo="cooperative close",
        )
        self.state = ContractState.CLOSED
        self.settlement = balances
        return dict(balances)

    def unilateral_close(
        self,
        closer: object,
        published_sequence: int,
        now: float,
        counterparty_watches: bool = True,
    ) -> Dict[object, float]:
        """``closer`` publishes a signed state; stale states get punished.

        If ``published_sequence`` is not the latest and the counterparty is
        watching (the normal case), the punishment path triggers and the
        *entire escrow* goes to the honest party (§2).
        """
        self._require_open()
        if closer not in (self.party_a, self.party_b):
            raise ChannelError(f"{closer!r} is not a contract party")
        published = self.signed_state(published_sequence)
        honest = self.party_b if closer == self.party_a else self.party_a
        if published_sequence < self.latest_sequence and counterparty_watches:
            settlement = {closer: 0.0, honest: self._escrow}
            self.close_tx = self.chain.submit(
                TxKind.PUNISH,
                (honest,),
                settlement,
                now,
                memo=f"punished stale state #{published_sequence}",
            )
        else:
            settlement = published
            self.close_tx = self.chain.submit(
                TxKind.UNILATERAL_CLOSE,
                (closer,),
                settlement,
                now,
                memo=f"unilateral close at state #{published_sequence}",
            )
        self.state = ContractState.CLOSED
        self.settlement = settlement
        return dict(settlement)

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self.state is not ContractState.OPEN:
            raise ChannelError("contract is closed")
