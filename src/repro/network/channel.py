"""Bidirectional payment channels.

A payment channel escrows a fixed total amount of funds between two parties
(§2 of the paper).  At any instant the escrow is partitioned into:

* ``balance(u)`` — funds party ``u`` can spend right now,
* ``inflight(u)`` — funds ``u`` has committed to pending HTLCs that have not
  yet settled or been refunded (Fig. 3: "pending funds").

The invariant ``balance(u) + balance(v) + inflight(u) + inflight(v) ==
capacity`` holds at all times and is checked by
:meth:`PaymentChannel.check_invariant`.

The channel also tracks cumulative flow in each direction, which the metrics
layer uses to report imbalance, and which Spider's price updates (§5.3) use
to estimate rate imbalance.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterator, Optional, Tuple

from repro.engine.store import ChannelStateStore
from repro.errors import ChannelError, InsufficientFundsError
from repro.network.htlc import HashLock, Htlc, HtlcState

__all__ = ["PaymentChannel"]

NodeId = Hashable


class PaymentChannel:
    """One bidirectional payment channel between ``node_a`` and ``node_b``.

    Parameters
    ----------
    node_a, node_b:
        Endpoint identifiers (any hashable; the topology layer uses ints).
    capacity:
        Total escrowed funds in the channel.
    balance_a:
        ``node_a``'s initial spendable balance.  Defaults to an even split,
        matching the paper's experiments ("equally split between the two
        parties", §6.2).
    store:
        The :class:`~repro.engine.store.ChannelStateStore` holding this
        channel's mutable state.  A network passes its shared store so all
        channels live in the same flat arrays; a standalone channel gets a
        private single-row store, so the view API is uniform either way.

    Notes
    -----
    The channel object itself is a *view*: balances, in-flight totals, flow
    counters and the frozen flag live in the store's NumPy arrays, indexed
    by ``channel_id``.  All mutating operations are mediated by HTLCs so
    that funds are held in-flight during the confirmation delay, exactly as
    in §4.2: *"Funds received on a payment channel remain in a pending
    state until the final receiver provides the key for the hash lock."*
    """

    _htlc_ids = itertools.count(1)

    __slots__ = (
        "node_a",
        "node_b",
        "base_fee",
        "fee_rate",
        "_store",
        "_cid",
        "_side",
        "_htlcs",
    )

    def __init__(
        self,
        node_a: NodeId,
        node_b: NodeId,
        capacity: float,
        balance_a: Optional[float] = None,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
        store: Optional[ChannelStateStore] = None,
    ):
        if node_a == node_b:
            raise ChannelError(f"channel endpoints must differ, got {node_a!r} twice")
        if capacity <= 0 or not math.isfinite(capacity):
            raise ChannelError(f"capacity must be positive and finite, got {capacity!r}")
        if balance_a is None:
            balance_a = capacity / 2.0
        if balance_a < 0 or balance_a > capacity:
            raise ChannelError(
                f"balance_a={balance_a!r} outside [0, capacity={capacity!r}]"
            )
        if base_fee < 0 or fee_rate < 0:
            raise ChannelError("fees must be non-negative")
        self.node_a = node_a
        self.node_b = node_b
        self.base_fee = float(base_fee)
        self.fee_rate = float(fee_rate)
        self._store = store if store is not None else ChannelStateStore(reserve=1)
        self._cid = self._store.allocate(float(capacity), float(balance_a))
        self._side: Dict[NodeId, int] = {node_a: 0, node_b: 1}
        self._htlcs: Dict[int, Htlc] = {}

    # ------------------------------------------------------------------
    # Store plumbing
    # ------------------------------------------------------------------
    @property
    def store(self) -> ChannelStateStore:
        """The state store backing this channel view."""
        return self._store

    @property
    def channel_id(self) -> int:
        """Row index of this channel in its store's arrays."""
        return self._cid

    def side(self, node: NodeId) -> int:
        """Store column (0 = ``node_a``, 1 = ``node_b``) for ``node``."""
        self._require_endpoint(node)
        return self._side[node]

    @property
    def capacity(self) -> float:
        """Total escrowed funds (grows when :meth:`deposit` adds collateral)."""
        return float(self._store.capacity[self._cid])

    @property
    def total_deposited(self) -> float:
        """Cumulative on-chain deposits made through :meth:`deposit`."""
        return float(self._store.total_deposited[self._cid])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def endpoints(self) -> Tuple[NodeId, NodeId]:
        """The channel's two endpoints as given at construction."""
        return (self.node_a, self.node_b)

    def other(self, node: NodeId) -> NodeId:
        """The counterparty of ``node`` on this channel."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ChannelError(f"{node!r} is not an endpoint of {self!r}")

    def balance(self, node: NodeId) -> float:
        """Spendable funds currently held by ``node``."""
        self._require_endpoint(node)
        return float(self._store.balance[self._cid, self._side[node]])

    def inflight(self, node: NodeId) -> float:
        """Funds ``node`` has locked in pending HTLCs."""
        self._require_endpoint(node)
        return float(self._store.inflight[self._cid, self._side[node]])

    def available(self, sender: NodeId) -> float:
        """Funds ``sender`` can commit to a new transfer right now.

        This is the quantity routing schemes probe when they measure "path
        capacity": in-flight funds are excluded because they are unusable
        until settlement (§6.1).  A frozen channel (closing, or an offline
        endpoint — see :mod:`repro.network.faults`) accepts nothing.
        """
        if self._store.frozen_count and self._store.frozen[self._cid]:
            return 0.0
        return self.balance(sender)

    @property
    def frozen(self) -> bool:
        """Whether the channel currently rejects new HTLCs.

        Pending HTLCs still resolve — a closing channel (or one with an
        offline endpoint) lets in-flight transfers finish or time out, it
        just accepts no new ones.  Freezing never moves funds, so all
        conservation invariants are unaffected.
        """
        return bool(self._store.frozen[self._cid])

    def freeze(self) -> None:
        """Stop accepting new HTLCs (channel closure / endpoint outage)."""
        self._store.set_frozen(self._cid, True)

    def unfreeze(self) -> None:
        """Resume normal operation (endpoint back online)."""
        self._store.set_frozen(self._cid, False)

    def settled_flow(self, sender: NodeId) -> float:
        """Cumulative value settled in the ``sender →`` direction."""
        self._require_endpoint(sender)
        return float(self._store.settled_flow[self._cid, self._side[sender]])

    def attempted_flow(self, sender: NodeId) -> float:
        """Cumulative value locked (settled or not) in the ``sender →`` direction."""
        self._require_endpoint(sender)
        return float(self._store.sent[self._cid, self._side[sender]])

    def imbalance(self) -> float:
        """Absolute difference between the two spendable balances."""
        row = self._store.balance[self._cid]
        return abs(float(row[0]) - float(row[1]))

    def flow_imbalance(self) -> float:
        """|settled flow a→b − settled flow b→a|, the paper's rate-imbalance notion."""
        row = self._store.settled_flow[self._cid]
        return abs(float(row[0]) - float(row[1]))

    def forwarding_fee(self, amount: float) -> float:
        """Fee a router charges to forward ``amount`` over this channel.

        §2: intermediate nodes receive a routing fee.  The standard PCN fee
        schedule is affine: ``base_fee + fee_rate × amount``; both default
        to 0 so fee-free experiments match the paper's evaluation.
        """
        if amount <= 0:
            return 0.0
        return self.base_fee + self.fee_rate * amount

    def pending_htlcs(self) -> Iterator[Htlc]:
        """Iterate over HTLCs still pending on this channel."""
        return (h for h in self._htlcs.values() if h.pending)

    @property
    def num_settled(self) -> int:
        """Count of HTLCs settled over the channel's lifetime."""
        return int(self._store.num_settled[self._cid])

    @property
    def num_refunded(self) -> int:
        """Count of HTLCs refunded over the channel's lifetime."""
        return int(self._store.num_refunded[self._cid])

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def lock(
        self,
        sender: NodeId,
        amount: float,
        now: float = 0.0,
        lock: Optional[HashLock] = None,
    ) -> Htlc:
        """Lock ``amount`` of ``sender``'s balance into a new pending HTLC.

        Raises
        ------
        InsufficientFundsError
            If ``sender``'s spendable balance is below ``amount``.
        """
        self._require_endpoint(sender)
        if amount <= 0 or not math.isfinite(amount):
            raise ChannelError(f"lock amount must be positive and finite, got {amount!r}")
        store, cid = self._store, self._cid
        if store.frozen_count and store.frozen[cid]:
            raise InsufficientFundsError(
                f"channel ({self.node_a!r}, {self.node_b!r}) is frozen "
                "(closing or endpoint offline)"
            )
        side = self._side[sender]
        balance = float(store.balance[cid, side])
        if amount > balance + 1e-9:
            raise InsufficientFundsError(
                f"{sender!r} has {balance:.6g} spendable on channel "
                f"({self.node_a!r}, {self.node_b!r}), cannot lock {amount:.6g}"
            )
        amount = min(amount, balance)
        htlc = Htlc(
            htlc_id=next(self._htlc_ids),
            sender=sender,
            receiver=self.other(sender),
            amount=amount,
            created_at=now,
            lock=lock,
        )
        store.balance[cid, side] = balance - amount
        store.inflight[cid, side] += amount
        store.sent[cid, side] += amount
        store.touch(cid)
        self._htlcs[htlc.htlc_id] = htlc
        return htlc

    def settle(self, htlc: Htlc) -> None:
        """Complete a pending HTLC: credit the receiver's spendable balance."""
        self._require_owned(htlc)
        htlc.mark_settled()
        self._store.apply_settle(self._cid, self._side[htlc.sender], htlc.amount)
        del self._htlcs[htlc.htlc_id]

    def refund(self, htlc: Htlc) -> None:
        """Cancel a pending HTLC: return the funds to the sender."""
        self._require_owned(htlc)
        htlc.mark_refunded()
        self._store.apply_refund(self._cid, self._side[htlc.sender], htlc.amount)
        del self._htlcs[htlc.htlc_id]

    def deposit(self, node: NodeId, amount: float) -> None:
        """Add fresh on-chain funds to ``node``'s side (§5.2.3 rebalancing).

        This models the ``b_(u,v)`` rebalancing rate: an on-chain transaction
        that increases both the node's balance and the channel capacity.
        """
        self._require_endpoint(node)
        if amount <= 0 or not math.isfinite(amount):
            raise ChannelError(f"deposit must be positive and finite, got {amount!r}")
        self._store.deposit(self._cid, self._side[node], amount)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariant(self, tolerance: float = 1e-6) -> None:
        """Assert conservation of escrowed funds; raises on violation."""
        store, cid = self._store, self._cid
        balances = store.balance[cid]
        inflight = store.inflight[cid]
        total = float(balances[0] + balances[1] + inflight[0] + inflight[1])
        if abs(total - self.capacity) > tolerance:
            raise ChannelError(
                f"conservation violated on ({self.node_a!r}, {self.node_b!r}): "
                f"parts sum to {total:.9g}, capacity is {self.capacity:.9g}"
            )
        for node in self.endpoints:
            side = self._side[node]
            if balances[side] < -tolerance or inflight[side] < -tolerance:
                raise ChannelError(
                    f"negative funds at {node!r}: balance={float(balances[side]):.9g}, "
                    f"inflight={float(inflight[side]):.9g}"
                )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_endpoint(self, node: NodeId) -> None:
        if node != self.node_a and node != self.node_b:
            raise ChannelError(
                f"{node!r} is not an endpoint of channel ({self.node_a!r}, {self.node_b!r})"
            )

    def _require_owned(self, htlc: Htlc) -> None:
        if self._htlcs.get(htlc.htlc_id) is not htlc:
            raise ChannelError(
                f"HTLC {htlc.htlc_id} is not pending on channel "
                f"({self.node_a!r}, {self.node_b!r})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        row = self._store.balance[self._cid]
        return (
            f"PaymentChannel({self.node_a!r}<->{self.node_b!r}, "
            f"cap={self.capacity:.6g}, "
            f"bal=({float(row[0]):.6g}, {float(row[1]):.6g}))"
        )
