"""Bidirectional payment channels.

A payment channel escrows a fixed total amount of funds between two parties
(§2 of the paper).  At any instant the escrow is partitioned into:

* ``balance(u)`` — funds party ``u`` can spend right now,
* ``inflight(u)`` — funds ``u`` has committed to pending HTLCs that have not
  yet settled or been refunded (Fig. 3: "pending funds").

The invariant ``balance(u) + balance(v) + inflight(u) + inflight(v) ==
capacity`` holds at all times and is checked by
:meth:`PaymentChannel.check_invariant`.

The channel also tracks cumulative flow in each direction, which the metrics
layer uses to report imbalance, and which Spider's price updates (§5.3) use
to estimate rate imbalance.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterator, Optional, Tuple

from repro.errors import ChannelError, InsufficientFundsError
from repro.network.htlc import HashLock, Htlc, HtlcState

__all__ = ["PaymentChannel"]

NodeId = Hashable


class PaymentChannel:
    """One bidirectional payment channel between ``node_a`` and ``node_b``.

    Parameters
    ----------
    node_a, node_b:
        Endpoint identifiers (any hashable; the topology layer uses ints).
    capacity:
        Total escrowed funds in the channel.
    balance_a:
        ``node_a``'s initial spendable balance.  Defaults to an even split,
        matching the paper's experiments ("equally split between the two
        parties", §6.2).

    Notes
    -----
    All mutating operations are mediated by HTLCs so that funds are held
    in-flight during the confirmation delay, exactly as in §4.2: *"Funds
    received on a payment channel remain in a pending state until the final
    receiver provides the key for the hash lock."*
    """

    _htlc_ids = itertools.count(1)

    __slots__ = (
        "node_a",
        "node_b",
        "capacity",
        "base_fee",
        "fee_rate",
        "_balances",
        "_inflight",
        "_htlcs",
        "_sent",
        "_settled_flow",
        "_num_settled",
        "_num_refunded",
        "total_deposited",
        "_frozen",
    )

    def __init__(
        self,
        node_a: NodeId,
        node_b: NodeId,
        capacity: float,
        balance_a: Optional[float] = None,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
    ):
        if node_a == node_b:
            raise ChannelError(f"channel endpoints must differ, got {node_a!r} twice")
        if capacity <= 0 or not math.isfinite(capacity):
            raise ChannelError(f"capacity must be positive and finite, got {capacity!r}")
        if balance_a is None:
            balance_a = capacity / 2.0
        if balance_a < 0 or balance_a > capacity:
            raise ChannelError(
                f"balance_a={balance_a!r} outside [0, capacity={capacity!r}]"
            )
        if base_fee < 0 or fee_rate < 0:
            raise ChannelError("fees must be non-negative")
        self.node_a = node_a
        self.node_b = node_b
        self.capacity = float(capacity)
        self.base_fee = float(base_fee)
        self.fee_rate = float(fee_rate)
        self._balances: Dict[NodeId, float] = {
            node_a: float(balance_a),
            node_b: float(capacity - balance_a),
        }
        self._inflight: Dict[NodeId, float] = {node_a: 0.0, node_b: 0.0}
        self._htlcs: Dict[int, Htlc] = {}
        # Cumulative value settled in each direction, keyed by sender.
        self._settled_flow: Dict[NodeId, float] = {node_a: 0.0, node_b: 0.0}
        self._sent: Dict[NodeId, float] = {node_a: 0.0, node_b: 0.0}
        self._num_settled = 0
        self._num_refunded = 0
        self.total_deposited = 0.0
        self._frozen = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def endpoints(self) -> Tuple[NodeId, NodeId]:
        """The channel's two endpoints as given at construction."""
        return (self.node_a, self.node_b)

    def other(self, node: NodeId) -> NodeId:
        """The counterparty of ``node`` on this channel."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ChannelError(f"{node!r} is not an endpoint of {self!r}")

    def balance(self, node: NodeId) -> float:
        """Spendable funds currently held by ``node``."""
        self._require_endpoint(node)
        return self._balances[node]

    def inflight(self, node: NodeId) -> float:
        """Funds ``node`` has locked in pending HTLCs."""
        self._require_endpoint(node)
        return self._inflight[node]

    def available(self, sender: NodeId) -> float:
        """Funds ``sender`` can commit to a new transfer right now.

        This is the quantity routing schemes probe when they measure "path
        capacity": in-flight funds are excluded because they are unusable
        until settlement (§6.1).  A frozen channel (closing, or an offline
        endpoint — see :mod:`repro.network.faults`) accepts nothing.
        """
        if self._frozen:
            return 0.0
        return self.balance(sender)

    @property
    def frozen(self) -> bool:
        """Whether the channel currently rejects new HTLCs.

        Pending HTLCs still resolve — a closing channel (or one with an
        offline endpoint) lets in-flight transfers finish or time out, it
        just accepts no new ones.  Freezing never moves funds, so all
        conservation invariants are unaffected.
        """
        return self._frozen

    def freeze(self) -> None:
        """Stop accepting new HTLCs (channel closure / endpoint outage)."""
        self._frozen = True

    def unfreeze(self) -> None:
        """Resume normal operation (endpoint back online)."""
        self._frozen = False

    def settled_flow(self, sender: NodeId) -> float:
        """Cumulative value settled in the ``sender →`` direction."""
        self._require_endpoint(sender)
        return self._settled_flow[sender]

    def attempted_flow(self, sender: NodeId) -> float:
        """Cumulative value locked (settled or not) in the ``sender →`` direction."""
        self._require_endpoint(sender)
        return self._sent[sender]

    def imbalance(self) -> float:
        """Absolute difference between the two spendable balances."""
        return abs(self._balances[self.node_a] - self._balances[self.node_b])

    def flow_imbalance(self) -> float:
        """|settled flow a→b − settled flow b→a|, the paper's rate-imbalance notion."""
        return abs(self._settled_flow[self.node_a] - self._settled_flow[self.node_b])

    def forwarding_fee(self, amount: float) -> float:
        """Fee a router charges to forward ``amount`` over this channel.

        §2: intermediate nodes receive a routing fee.  The standard PCN fee
        schedule is affine: ``base_fee + fee_rate × amount``; both default
        to 0 so fee-free experiments match the paper's evaluation.
        """
        if amount <= 0:
            return 0.0
        return self.base_fee + self.fee_rate * amount

    def pending_htlcs(self) -> Iterator[Htlc]:
        """Iterate over HTLCs still pending on this channel."""
        return (h for h in self._htlcs.values() if h.pending)

    @property
    def num_settled(self) -> int:
        """Count of HTLCs settled over the channel's lifetime."""
        return self._num_settled

    @property
    def num_refunded(self) -> int:
        """Count of HTLCs refunded over the channel's lifetime."""
        return self._num_refunded

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def lock(
        self,
        sender: NodeId,
        amount: float,
        now: float = 0.0,
        lock: Optional[HashLock] = None,
    ) -> Htlc:
        """Lock ``amount`` of ``sender``'s balance into a new pending HTLC.

        Raises
        ------
        InsufficientFundsError
            If ``sender``'s spendable balance is below ``amount``.
        """
        self._require_endpoint(sender)
        if amount <= 0 or not math.isfinite(amount):
            raise ChannelError(f"lock amount must be positive and finite, got {amount!r}")
        if self._frozen:
            raise InsufficientFundsError(
                f"channel ({self.node_a!r}, {self.node_b!r}) is frozen "
                "(closing or endpoint offline)"
            )
        balance = self._balances[sender]
        if amount > balance + 1e-9:
            raise InsufficientFundsError(
                f"{sender!r} has {balance:.6g} spendable on channel "
                f"({self.node_a!r}, {self.node_b!r}), cannot lock {amount:.6g}"
            )
        amount = min(amount, balance)
        htlc = Htlc(
            htlc_id=next(self._htlc_ids),
            sender=sender,
            receiver=self.other(sender),
            amount=amount,
            created_at=now,
            lock=lock,
        )
        self._balances[sender] -= amount
        self._inflight[sender] += amount
        self._sent[sender] += amount
        self._htlcs[htlc.htlc_id] = htlc
        return htlc

    def settle(self, htlc: Htlc) -> None:
        """Complete a pending HTLC: credit the receiver's spendable balance."""
        self._require_owned(htlc)
        htlc.mark_settled()
        self._inflight[htlc.sender] -= htlc.amount
        self._balances[htlc.receiver] += htlc.amount
        self._settled_flow[htlc.sender] += htlc.amount
        self._num_settled += 1
        del self._htlcs[htlc.htlc_id]

    def refund(self, htlc: Htlc) -> None:
        """Cancel a pending HTLC: return the funds to the sender."""
        self._require_owned(htlc)
        htlc.mark_refunded()
        self._inflight[htlc.sender] -= htlc.amount
        self._balances[htlc.sender] += htlc.amount
        self._num_refunded += 1
        del self._htlcs[htlc.htlc_id]

    def deposit(self, node: NodeId, amount: float) -> None:
        """Add fresh on-chain funds to ``node``'s side (§5.2.3 rebalancing).

        This models the ``b_(u,v)`` rebalancing rate: an on-chain transaction
        that increases both the node's balance and the channel capacity.
        """
        self._require_endpoint(node)
        if amount <= 0 or not math.isfinite(amount):
            raise ChannelError(f"deposit must be positive and finite, got {amount!r}")
        self._balances[node] += amount
        self.capacity += amount
        self.total_deposited += amount

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariant(self, tolerance: float = 1e-6) -> None:
        """Assert conservation of escrowed funds; raises on violation."""
        total = (
            self._balances[self.node_a]
            + self._balances[self.node_b]
            + self._inflight[self.node_a]
            + self._inflight[self.node_b]
        )
        if abs(total - self.capacity) > tolerance:
            raise ChannelError(
                f"conservation violated on ({self.node_a!r}, {self.node_b!r}): "
                f"parts sum to {total:.9g}, capacity is {self.capacity:.9g}"
            )
        for node in self.endpoints:
            if self._balances[node] < -tolerance or self._inflight[node] < -tolerance:
                raise ChannelError(
                    f"negative funds at {node!r}: balance={self._balances[node]:.9g}, "
                    f"inflight={self._inflight[node]:.9g}"
                )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_endpoint(self, node: NodeId) -> None:
        if node != self.node_a and node != self.node_b:
            raise ChannelError(
                f"{node!r} is not an endpoint of channel ({self.node_a!r}, {self.node_b!r})"
            )

    def _require_owned(self, htlc: Htlc) -> None:
        if self._htlcs.get(htlc.htlc_id) is not htlc:
            raise ChannelError(
                f"HTLC {htlc.htlc_id} is not pending on channel "
                f"({self.node_a!r}, {self.node_b!r})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaymentChannel({self.node_a!r}<->{self.node_b!r}, "
            f"cap={self.capacity:.6g}, "
            f"bal=({self._balances[self.node_a]:.6g}, {self._balances[self.node_b]:.6g}))"
        )
