"""Payment-channel network substrate: channels, HTLCs, nodes, network,
on-chain settlement, onion routing."""

from repro.network.blockchain import (
    Blockchain,
    BlockchainTransaction,
    ChannelContract,
    ContractState,
    TxKind,
)
from repro.network.channel import PaymentChannel
from repro.network.faults import (
    ChannelClosure,
    FaultSchedule,
    NodeOutage,
    random_churn_schedule,
)
from repro.network.htlc import HashLock, Htlc, HtlcState, seed_hash_locks
from repro.network.network import PaymentNetwork, canonical_edge
from repro.network.node import Node, NodeRole
from repro.network.onion import (
    MAX_HOPS,
    OnionError,
    OnionPacket,
    build_onion,
    hop_key,
    peel_onion,
)

__all__ = [
    "Blockchain",
    "BlockchainTransaction",
    "ChannelClosure",
    "ChannelContract",
    "ContractState",
    "FaultSchedule",
    "HashLock",
    "Htlc",
    "HtlcState",
    "seed_hash_locks",
    "MAX_HOPS",
    "Node",
    "NodeOutage",
    "NodeRole",
    "OnionError",
    "OnionPacket",
    "PaymentChannel",
    "PaymentNetwork",
    "TxKind",
    "build_onion",
    "canonical_edge",
    "hop_key",
    "peel_onion",
    "random_churn_schedule",
]
