"""Fault injection: channel closures and node churn during a run.

The paper's evaluation assumes a static topology, but §7 flags robustness
("adversarial routers", channel lifecycle) as open questions and every
deployed PCN loses channels and nodes mid-operation.  This module injects
faults into a running simulation:

* **channel closure** — a channel freezes at a given time: it accepts no
  new HTLCs, while pending HTLCs still settle or time out (the
  cooperative-close semantics of §2; no funds ever vanish);
* **node outage** — every channel adjacent to a node freezes for an
  interval, then thaws (a router going offline and returning);
* **random churn** — a seeded Poisson process of node outages, the
  standard robustness workload.

Faults are pure substrate events: schemes see them only through the
signals they already use (``available`` drops to zero, locks raise
``InsufficientFundsError``), so every scheme's published failure-handling
path — LND's pruning retries, waterfilling's re-probing, backpressure's
gradients — is exercised unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.network.network import canonical_edge
from repro.simulator.rng import SeedLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Runtime
    from repro.network.network import PaymentNetwork

__all__ = [
    "ChannelClosure",
    "NodeOutage",
    "FaultSchedule",
    "random_churn_schedule",
]


@dataclass(frozen=True)
class ChannelClosure:
    """Channel (u, v) permanently freezes at ``time``."""

    time: float
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"closure time must be non-negative, got {self.time!r}")


@dataclass(frozen=True)
class NodeOutage:
    """Node ``node`` is offline during [start, end)."""

    start: float
    end: float
    node: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(
                f"outage interval [{self.start!r}, {self.end!r}) is invalid"
            )


class FaultSchedule:
    """An ordered collection of faults installable into a runtime.

    Node outages may overlap (a channel stays frozen until *every* reason
    for freezing it has lapsed — the schedule reference-counts freezes).
    """

    def __init__(self, events: Iterable[object] = ()):
        self.closures: List[ChannelClosure] = []
        self.outages: List[NodeOutage] = []
        for event in events:
            self.add(event)
        #: (u, v) canonical -> number of active freeze reasons.
        self._freeze_counts: Dict[Tuple[int, int], int] = {}
        self.closures_applied = 0
        self.outages_applied = 0

    def add(self, event: object) -> None:
        """Append one fault event."""
        if isinstance(event, ChannelClosure):
            self.closures.append(event)
        elif isinstance(event, NodeOutage):
            self.outages.append(event)
        else:
            raise ConfigError(f"unknown fault event {event!r}")

    def __len__(self) -> int:
        return len(self.closures) + len(self.outages)

    # ------------------------------------------------------------------
    def install(self, runtime: "Runtime") -> None:
        """Schedule every fault on the runtime's simulator clock.

        Call after constructing the runtime and before ``run()``.
        """
        for closure in self.closures:
            runtime.sim.call_at(closure.time, self._close_channel, runtime.network,
                                closure)
        for outage in self.outages:
            runtime.sim.call_at(outage.start, self._node_down, runtime.network,
                                outage.node)
            runtime.sim.call_at(outage.end, self._node_up, runtime.network,
                                outage.node)

    def _freeze(self, network: "PaymentNetwork", u: int, v: int) -> None:
        key = canonical_edge(u, v)
        self._freeze_counts[key] = self._freeze_counts.get(key, 0) + 1
        network.channel(u, v).freeze()

    def _thaw(self, network: "PaymentNetwork", u: int, v: int) -> None:
        key = canonical_edge(u, v)
        count = self._freeze_counts.get(key, 0) - 1
        if count <= 0:
            self._freeze_counts.pop(key, None)
            network.channel(u, v).unfreeze()
        else:
            self._freeze_counts[key] = count

    def _close_channel(self, network: "PaymentNetwork", closure: ChannelClosure) -> None:
        if network.has_channel(closure.u, closure.v):
            self._freeze(network, closure.u, closure.v)
            self.closures_applied += 1

    def _node_down(self, network: "PaymentNetwork", node: int) -> None:
        if not network.has_node(node):
            return
        for neighbor in list(network.neighbors(node)):
            self._freeze(network, node, neighbor)
        self.outages_applied += 1

    def _node_up(self, network: "PaymentNetwork", node: int) -> None:
        if not network.has_node(node):
            return
        for neighbor in list(network.neighbors(node)):
            self._thaw(network, node, neighbor)


def random_churn_schedule(
    nodes: Sequence[int],
    duration: float,
    churn_rate: float,
    outage_duration: float,
    seed: SeedLike = 0,
) -> FaultSchedule:
    """A Poisson node-churn schedule.

    Parameters
    ----------
    nodes:
        Candidate nodes (outage victims are drawn uniformly).
    duration:
        Horizon over which outages start.
    churn_rate:
        Expected outages per second across the whole network.
    outage_duration:
        Length of each outage.
    """
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration!r}")
    if churn_rate < 0:
        raise ConfigError(f"churn_rate must be non-negative, got {churn_rate!r}")
    if outage_duration <= 0:
        raise ConfigError(
            f"outage_duration must be positive, got {outage_duration!r}"
        )
    nodes = list(nodes)
    if not nodes:
        raise ConfigError("need at least one node for a churn schedule")
    rng = make_rng(seed)
    schedule = FaultSchedule()
    if churn_rate == 0:
        return schedule
    now = float(rng.exponential(1.0 / churn_rate))
    while now < duration:
        victim = int(rng.choice(nodes))
        schedule.add(NodeOutage(start=now, end=now + outage_duration, node=victim))
        now += float(rng.exponential(1.0 / churn_rate))
    return schedule
