"""The payment channel network state machine.

:class:`PaymentNetwork` owns the node set, the channels, and the only
operations the routing layer may use to move money:

* :meth:`lock_path` — atomically lock an amount along a path (every hop or
  none: partial locks are rolled back),
* :meth:`settle_path` / :meth:`refund_path` — resolve a previously locked
  transfer.

This mirrors how the paper's simulator treats in-flight funds (§6.1): a
routed unit holds funds on every hop for the confirmation delay, then either
settles (each hop credits downstream) or is cancelled (each hop refunds
upstream).

The class deliberately contains no routing policy; schemes live in
:mod:`repro.routing` and :mod:`repro.core`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.pathtable import PathLock, PathTable
from repro.engine.signals import ControlPlane
from repro.engine.store import ChannelStateStore
from repro.errors import ChannelError, InsufficientFundsError, TopologyError
from repro.network.channel import PaymentChannel
from repro.network.htlc import HashLock, Htlc
from repro.network.node import Node, NodeRole

__all__ = ["PaymentNetwork", "canonical_edge"]

NodeId = Hashable
Path = Sequence[NodeId]


def canonical_edge(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Order-independent key for the channel between ``u`` and ``v``.

    Uses the natural ordering when the ids are comparable (ints, strings),
    falling back to ``repr`` ordering for mixed types.
    """
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class PaymentNetwork:
    """A collection of nodes joined by bidirectional payment channels.

    The network exposes a graph view (``neighbors``, ``edges``) for routing
    algorithms and a funds view (``available``, ``lock_path``...) for the
    execution layer.

    Notes
    -----
    Channels are undirected objects addressed by unordered node pairs, but
    *funds* are directional: ``available(u, v)`` is what ``u`` can push
    toward ``v`` right now.
    """

    #: Class-wide default for new networks: route the path operations
    #: (``bottleneck`` / ``hop_amounts`` / ``lock_path`` / ``settle_path``
    #: / ``refund_path``) through the vectorised
    #: :class:`~repro.engine.pathtable.PathTable`.  The scalar per-hop
    #: implementations remain behind ``use_path_table = False`` — they are
    #: the parity baseline the vectorised kernels are tested against.
    vectorized_path_ops: bool = True

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, Node] = {}
        self._channels: Dict[Tuple[NodeId, NodeId], PaymentChannel] = {}
        self._adjacency: Dict[NodeId, set] = {}
        # All channel state lives in one flat array store; channels are views.
        self._store = ChannelStateStore()
        # (u, v) -> (channel, store row, u's store column), both directions.
        self._directions: Dict[Tuple[NodeId, NodeId], Tuple[PaymentChannel, int, int]] = {}
        self._path_table: Optional[PathTable] = None
        self._control_plane: Optional[ControlPlane] = None
        self._path_service = None
        self.use_path_table = type(self).vectorized_path_ops

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, role: NodeRole = NodeRole.HYBRID) -> Node:
        """Add a node; returns the existing node if already present."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        node = Node(node_id=node_id, role=role)
        self._nodes[node_id] = node
        self._adjacency[node_id] = set()
        return node

    def add_channel(
        self,
        u: NodeId,
        v: NodeId,
        capacity: float,
        balance_u: Optional[float] = None,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
    ) -> PaymentChannel:
        """Open a channel between ``u`` and ``v`` with total ``capacity`` funds.

        ``balance_u`` defaults to an even split (the paper's setting);
        ``base_fee``/``fee_rate`` set the affine forwarding-fee schedule
        (§2), defaulting to fee-free.  Endpoints are created implicitly.
        Parallel channels between the same pair are not modelled (the
        paper's topologies have none).
        """
        key = canonical_edge(u, v)
        if key in self._channels:
            raise TopologyError(f"channel between {u!r} and {v!r} already exists")
        self.add_node(u)
        self.add_node(v)
        channel = PaymentChannel(
            u,
            v,
            capacity,
            balance_a=balance_u,
            base_fee=base_fee,
            fee_rate=fee_rate,
            store=self._store,
        )
        self._channels[key] = channel
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        cid = channel.channel_id
        self._directions[(u, v)] = (channel, cid, 0)
        self._directions[(v, u)] = (channel, cid, 1)
        return channel

    # ------------------------------------------------------------------
    # Graph view
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_channels(self) -> int:
        """Number of channels (undirected edges)."""
        return len(self._channels)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers."""
        return iter(self._nodes)

    def node(self, node_id: NodeId) -> Node:
        """Look up the :class:`Node` record for ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is part of the network."""
        return node_id in self._nodes

    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Nodes sharing a channel with ``node_id``."""
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def degree(self, node_id: NodeId) -> int:
        """Number of channels incident to ``node_id``."""
        return len(self._adjacency.get(node_id, ()))

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate over channels as canonical (u, v) pairs."""
        return iter(self._channels)

    def channels(self) -> Iterator[PaymentChannel]:
        """Iterate over channel objects."""
        return iter(self._channels.values())

    def has_channel(self, u: NodeId, v: NodeId) -> bool:
        """Whether a channel exists between ``u`` and ``v``."""
        return canonical_edge(u, v) in self._channels

    def channel(self, u: NodeId, v: NodeId) -> PaymentChannel:
        """Return the channel joining ``u`` and ``v``."""
        try:
            return self._channels[canonical_edge(u, v)]
        except KeyError:
            raise TopologyError(f"no channel between {u!r} and {v!r}") from None

    # ------------------------------------------------------------------
    # Funds view
    # ------------------------------------------------------------------
    @property
    def state_store(self) -> ChannelStateStore:
        """The flat array store every channel of this network is a view of.

        Routing schemes, fluid solvers and metrics collectors can read
        (vectorised) channel state here without copying; row indices come
        from :meth:`channel_id` / :attr:`PaymentChannel.channel_id`.
        """
        return self._store

    def channel_id(self, u: NodeId, v: NodeId) -> Tuple[int, int]:
        """``(store row, u's store column)`` for the ``u → v`` direction."""
        try:
            _, cid, side = self._directions[(u, v)]
        except KeyError:
            raise TopologyError(f"no channel between {u!r} and {v!r}") from None
        return cid, side

    def available(self, u: NodeId, v: NodeId) -> float:
        """Spendable funds in the ``u → v`` direction."""
        cid, side = self.channel_id(u, v)
        store = self._store
        if store.frozen_count and store.frozen[cid]:
            return 0.0
        return float(store.balance[cid, side])

    @property
    def path_table(self) -> PathTable:
        """The network's compiled-path operation table (created lazily).

        Compiles each distinct path once into flat ``(cid, side)`` index
        arrays over the store, then serves bottleneck probes, fee passes
        and lock/settle/refund as vectorised kernels — see
        :mod:`repro.engine.pathtable`.
        """
        if self._path_table is None:
            self._path_table = PathTable(self)
        return self._path_table

    def peek_path_table(self) -> Optional[PathTable]:
        """The path table if one was created this run, else ``None``.

        The sharding driver uses this to invalidate probe caches at epoch
        barriers without forcing a table onto scalar-path-ops runs.
        """
        return self._path_table

    @property
    def path_service(self):
        """The network's path-discovery service (created lazily).

        One :class:`~repro.engine.pathservice.PathService` per network —
        the only way the system discovers paths: every routing scheme,
        the fluid path-set builders and the CLI resolve pair path sets
        through it, so the sorted adjacency and the pair sets are built
        once and shared instead of once per scheme.
        """
        if self._path_service is None:
            # Imported lazily: pathservice pulls in the fluid package,
            # which this module must not depend on at import time.
            from repro.engine.pathservice import PathService

            self._path_service = PathService.from_network(self)
        return self._path_service

    @property
    def control_plane(self) -> ControlPlane:
        """The network's congestion control plane (created lazily).

        Flat per-``(cid, side)`` congestion signals — queue-delay marks,
        channel prices, queue gradients, imbalance — derived from the
        state store; see :mod:`repro.engine.signals`.  Shared by the hop
        transport, the windowed/backpressure schemes, the price table and
        the metrics summary, and ticked once per poll by the session.
        """
        if self._control_plane is None:
            self._control_plane = ControlPlane(self)
        return self._control_plane

    def peek_control_plane(self) -> Optional[ControlPlane]:
        """The control plane if one was created this run, else ``None``.

        The session uses this to tick and summarise congestion state
        without forcing planes onto runs whose schemes never signal.
        """
        return self._control_plane

    def bottleneck(self, path: Path) -> float:
        """Minimum directional availability along ``path``.

        This is the quantity waterfilling and the baselines probe as "path
        capacity".  Returns ``inf`` for degenerate single-node paths.
        """
        if self.use_path_table:
            return self.path_table.bottleneck(path)
        self._validate_path(path)
        if len(path) < 2:
            return math.inf
        return min(self.available(a, b) for a, b in zip(path, path[1:]))

    def bottleneck_many(self, paths: Sequence[Path]) -> List[float]:
        """Bottlenecks of a whole path set in one batched probe.

        The vectorised path memoises per path set and refreshes only the
        paths whose channels changed since the last probe (see
        :meth:`~repro.engine.pathtable.PathTable.bottleneck_many`); the
        scalar fallback is the plain per-path loop.  Either way the result
        is a list of Python floats, element-for-element identical.
        """
        if not paths:
            return []
        if self.use_path_table:
            return self.path_table.bottleneck_many(paths)
        return [self.bottleneck(p) for p in paths]

    def hop_amounts(self, path: Path, amount: float) -> List[float]:
        """Per-hop lock amounts delivering ``amount``, fees included.

        Intermediate node ``path[j]`` charges its downstream channel's
        forwarding fee (§2), so upstream hops must carry the delivered value
        plus all downstream fees: working backward from the destination,
        ``amounts[i] = amounts[i+1] + fee(channel_{i+1}, amounts[i+1])``.
        With fee-free channels every entry equals ``amount``.
        """
        if self.use_path_table:
            return self.path_table.hop_amounts(path, amount)
        self._validate_path(path)
        hops = list(zip(path, path[1:]))
        if not hops:
            return []
        amounts = [0.0] * len(hops)
        amounts[-1] = amount
        for i in range(len(hops) - 2, -1, -1):
            downstream = self.channel(*hops[i + 1])
            amounts[i] = amounts[i + 1] + downstream.forwarding_fee(amounts[i + 1])
        return amounts

    def lock_path(
        self,
        path: Path,
        amount: float,
        now: float = 0.0,
        lock: Optional[HashLock] = None,
        amounts: Optional[Sequence[float]] = None,
    ) -> Sequence:
        """Atomically lock funds on every hop of ``path``.

        By default every hop locks ``amount``; passing ``amounts`` locks a
        different value per hop (how routing fees are carried — see
        :meth:`hop_amounts`).  Either all hops lock or none do: if an
        intermediate hop lacks funds, the already-locked hops are refunded
        and :class:`~repro.errors.InsufficientFundsError` propagates.

        Returns the per-hop lock sequence, ordered from source to
        destination: a :class:`~repro.engine.pathtable.PathLock` (one
        vectorised record for the whole path) on the default table-backed
        path, or the legacy per-hop :class:`~repro.network.htlc.Htlc` list
        with ``use_path_table = False``.  Both support ``len()`` and
        ``[j].amount`` and both resolve through :meth:`settle_path` /
        :meth:`refund_path`.
        """
        if self.use_path_table:
            if len(path) < 2:
                self.path_table.compile(path)  # raise the validation error
                raise ChannelError(
                    "cannot lock funds on a path with fewer than 2 nodes"
                )
            if amounts is None:
                amounts = [amount] * (len(path) - 1)
            return self.path_table.lock_path(path, amounts)
        self._validate_path(path)
        if len(path) < 2:
            raise ChannelError("cannot lock funds on a path with fewer than 2 nodes")
        hops = list(zip(path, path[1:]))
        if amounts is None:
            amounts = [amount] * len(hops)
        elif len(amounts) != len(hops):
            raise ChannelError(
                f"path has {len(hops)} hops but {len(amounts)} amounts were supplied"
            )
        htlcs: List[Htlc] = []
        try:
            for (a, b), hop_amount in zip(hops, amounts):
                htlcs.append(
                    self.channel(a, b).lock(a, hop_amount, now=now, lock=lock)
                )
        except InsufficientFundsError:
            for htlc, (a, b) in zip(htlcs, hops):
                self.channel(a, b).refund(htlc)
            raise
        return htlcs

    def settle_path(self, path: Path, htlcs: Sequence) -> None:
        """Settle every hop of a previously locked transfer."""
        self._resolve_path(path, htlcs, settle=True)

    def refund_path(self, path: Path, htlcs: Sequence) -> None:
        """Refund every hop of a previously locked transfer."""
        self._resolve_path(path, htlcs, settle=False)

    def _resolve_path(self, path: Path, htlcs: Sequence, settle: bool) -> None:
        if len(path) - 1 != len(htlcs):
            raise ChannelError(
                f"path has {max(len(path) - 1, 0)} hops but {len(htlcs)} "
                "HTLCs were supplied"
            )
        if isinstance(htlcs, PathLock):
            if settle:
                self.path_table.settle(htlcs)
            else:
                self.path_table.refund(htlcs)
            return
        for htlc, (a, b) in zip(htlcs, zip(path, path[1:])):
            channel = self.channel(a, b)
            if settle:
                channel.settle(htlc)
            else:
                channel.refund(htlc)

    # ------------------------------------------------------------------
    # Aggregates & invariants
    # ------------------------------------------------------------------
    def total_funds(self) -> float:
        """Sum of all channel capacities (escrowed collateral)."""
        return self._store.total_funds()

    def total_inflight(self) -> float:
        """Funds currently locked in pending HTLCs across the network."""
        return self._store.total_inflight()

    def check_invariants(self) -> None:
        """Check fund conservation on every channel; raises on violation.

        The happy path is one vectorised pass over the store; only on
        violation does the per-channel check re-run to produce the precise
        error message.
        """
        if self._store.check_conservation() is None:
            return
        for channel in self._channels.values():
            channel.check_invariant()

    def balance_snapshot(self) -> Dict[Tuple[NodeId, NodeId], Tuple[float, float]]:
        """Capture ``(balance_a, balance_b)`` per channel, keyed canonically.

        Intended for tests and what-if analyses; restoring is only valid when
        no HTLCs are pending.
        """
        return {
            key: (c.balance(c.node_a), c.balance(c.node_b))
            for key, c in self._channels.items()
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _validate_path(self, path: Path) -> None:
        if not path:
            raise ChannelError("empty path")
        seen = set()
        for node in path:
            if node not in self._nodes:
                raise TopologyError(f"path mentions unknown node {node!r}")
            if node in seen:
                raise ChannelError(f"path revisits node {node!r} (paths must be trails)")
            seen.add(node)
        for a, b in zip(path, path[1:]):
            if canonical_edge(a, b) not in self._channels:
                raise TopologyError(f"path uses missing channel ({a!r}, {b!r})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaymentNetwork(nodes={self.num_nodes}, channels={self.num_channels})"
