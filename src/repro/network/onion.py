"""Onion routing for transaction units (§4.2).

*"Existing designs like the Lightning Network use Onion routing [12] to
ensure privacy of user payments.  Spider routers can use similar mechanisms
for each transaction unit to provide privacy [4]."*

This module implements a simplified Sphinx-style telescoping construction
sufficient for the simulator's threat model: every relay learns only its
predecessor, its successor, and (at the destination) the payload — never
the full route, the source, or its position on the path, and **onions are
length-invariant**, so a relay cannot infer its distance from the
destination.

Construction
------------
The packet is a fixed-size buffer of ``MAX_HOPS`` hop regions.  Building
proceeds from the destination outward; for each hop the sender prepends an
authenticated fixed-size header (next-hop id, or the payload at the
destination), truncates the buffer back to the fixed size, and encrypts the
whole buffer with the hop's key (SHA-256 keystream XOR).  Peeling reverses
one layer: decrypt, verify the header MAC, slide the buffer left one hop
region and re-pad — the onion handed to the next hop has the same length
and is indistinguishable from fresh.

Keys: each hop shares a symmetric key with the sender, derived from a
per-unit ``session_secret`` (standing in for the ECDH handshake of the real
protocol).  Headers are authenticated with HMAC-SHA256; the body has no
separate MAC (a real Sphinx uses wide-block techniques; header integrity is
what the routing semantics need here).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "OnionError",
    "OnionPacket",
    "build_onion",
    "peel_onion",
    "hop_key",
    "MAX_HOPS",
]

#: Maximum path length (relays + destination) an onion can address.
MAX_HOPS = 10
_HOP_REGION = 256
_MAC_SIZE = 32
_HEADER_SIZE = _HOP_REGION  # mac-inclusive
_PACKET_SIZE = _HOP_REGION * MAX_HOPS


class OnionError(ReproError):
    """Raised on malformed, truncated or tampered onions."""


def hop_key(session_secret: bytes, node_id: object) -> bytes:
    """Derive the symmetric key the sender shares with ``node_id``.

    Stands in for the ECDH handshake of the real protocol; distinct per
    (session, node).
    """
    return hashlib.sha256(
        b"spider-onion-key:" + session_secret + repr(node_id).encode()
    ).digest()


def _keystream(key: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while len(blocks) * 32 < length:
        blocks.append(hashlib.sha256(key + counter.to_bytes(8, "big")).digest())
        counter += 1
    return b"".join(blocks)[:length]


def _xor(key: bytes, data: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, _keystream(key, len(data))))


def _make_header(key: bytes, record: Dict[str, object]) -> bytes:
    body = json.dumps(record).encode()
    if len(body) > _HEADER_SIZE - _MAC_SIZE:
        raise OnionError(
            f"header record too large ({len(body)} > {_HEADER_SIZE - _MAC_SIZE} bytes)"
        )
    body = body.ljust(_HEADER_SIZE - _MAC_SIZE, b" ")
    mac = hmac.new(key, body, hashlib.sha256).digest()
    return body + mac


def _read_header(key: bytes, header: bytes) -> Dict[str, object]:
    body, mac = header[: -_MAC_SIZE], header[-_MAC_SIZE:]
    expected = hmac.new(key, body, hashlib.sha256).digest()
    if not hmac.compare_digest(mac, expected):
        raise OnionError("onion MAC verification failed (wrong key or tampering)")
    try:
        return json.loads(body.rstrip(b" "))
    except json.JSONDecodeError as exc:  # pragma: no cover - MAC passed
        raise OnionError("corrupt onion header") from exc


@dataclass(frozen=True)
class OnionPacket:
    """A layered onion as carried on the wire between two hops."""

    blob: bytes

    def __post_init__(self) -> None:
        if len(self.blob) != _PACKET_SIZE:
            raise OnionError(
                f"onion packets are {_PACKET_SIZE} bytes, got {len(self.blob)}"
            )

    def __len__(self) -> int:
        return len(self.blob)


def build_onion(
    session_secret: bytes,
    path: Sequence[object],
    payload: Dict[str, object],
) -> OnionPacket:
    """Wrap ``payload`` for delivery along ``path`` (excluding the sender).

    ``path`` lists the relays in forwarding order, ending at the
    destination.  Each relay's layer names only the next hop; the
    destination's layer carries the payload.
    """
    if not path:
        raise OnionError("path must contain at least the destination")
    if len(path) > MAX_HOPS:
        raise OnionError(f"path length {len(path)} exceeds MAX_HOPS={MAX_HOPS}")
    buffer = os.urandom(_PACKET_SIZE)
    for index in range(len(path) - 1, -1, -1):
        node = path[index]
        key = hop_key(session_secret, node)
        if index == len(path) - 1:
            record: Dict[str, object] = {"payload": payload}
        else:
            record = {"next": repr(path[index + 1])}
        header = _make_header(key, record)
        buffer = _xor(key, header + buffer[: _PACKET_SIZE - _HEADER_SIZE])
    return OnionPacket(buffer)


def peel_onion(
    session_secret: bytes,
    node_id: object,
    packet: OnionPacket,
) -> Tuple[Optional[str], Optional[Dict[str, object]], Optional[OnionPacket]]:
    """Peel one layer as ``node_id``.

    Returns ``(next_hop_repr, payload, inner_packet)``:

    * a relay gets ``(repr(next_hop), None, inner_packet)`` — the inner
      packet is the same fixed size, ready to forward;
    * the destination gets ``(None, payload, None)``.

    Raises :class:`OnionError` when this node is not the outer layer's
    intended recipient (wrong key ⇒ MAC failure) or the onion was tampered
    with.
    """
    key = hop_key(session_secret, node_id)
    plaintext = _xor(key, packet.blob)
    record = _read_header(key, plaintext[:_HEADER_SIZE])
    if "payload" in record:
        return None, record["payload"], None
    # Slide one hop region off the front; re-pad to the invariant size.
    inner = plaintext[_HEADER_SIZE:] + os.urandom(_HEADER_SIZE)
    return record["next"], None, OnionPacket(inner)
