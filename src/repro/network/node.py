"""Network nodes.

In Spider's architecture (§4) there are two roles: *hosts* (end points that
originate and terminate payments, running the transport layer) and *routers*
(intermediate nodes that forward transaction units and maintain queues and
prices).  The simulator is centralized — schemes read network state directly,
as the paper's simulator does — so :class:`Node` mostly carries identity,
role, and per-node counters used by the metrics layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["Node", "NodeRole"]


class NodeRole(enum.Enum):
    """Whether a node terminates payments, forwards them, or both."""

    HOST = "host"
    ROUTER = "router"
    HYBRID = "hybrid"


@dataclass
class Node:
    """A participant in the payment channel network.

    Attributes
    ----------
    node_id:
        Unique hashable identifier.
    role:
        Host/router/hybrid.  Every topology in the paper's evaluation uses
        hybrid nodes (all nodes both transact and forward).
    payments_sent, payments_received:
        Counters of *completed* payments, maintained by the runtime.
    value_sent, value_received:
        Total settled value originated / terminated at this node.
    """

    node_id: Hashable
    role: NodeRole = NodeRole.HYBRID
    payments_sent: int = 0
    payments_received: int = 0
    value_sent: float = 0.0
    value_received: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def can_originate(self) -> bool:
        """Whether this node may be a payment source or destination."""
        return self.role in (NodeRole.HOST, NodeRole.HYBRID)

    @property
    def can_forward(self) -> bool:
        """Whether this node may relay transaction units."""
        return self.role in (NodeRole.ROUTER, NodeRole.HYBRID)
