"""Topology serialisation.

A tiny line-oriented text format so experiments can be saved, shared, and
re-run: comments start with ``#``, the header line is ``topology <name>``,
node lines are ``node <id>`` and edge lines are ``edge <u> <v> [capacity]``.
Node ids are integers.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

from repro.errors import TopologyError
from repro.topology.base import Topology

__all__ = ["dump_topology", "dumps_topology", "load_topology", "loads_topology"]


def dumps_topology(topology: Topology) -> str:
    """Serialise a topology to the text format."""
    out = io.StringIO()
    out.write(f"topology {topology.name}\n")
    for node in topology.nodes:
        out.write(f"node {node}\n")
    for u, v in topology.edges:
        capacity = topology.capacities.get((u, v))
        if capacity is None:
            out.write(f"edge {u} {v}\n")
        else:
            out.write(f"edge {u} {v} {capacity!r}\n")
    return out.getvalue()


def dump_topology(topology: Topology, path: Union[str, Path]) -> None:
    """Write a topology to ``path``."""
    Path(path).write_text(dumps_topology(topology))


def loads_topology(text: str) -> Topology:
    """Parse a topology from the text format."""
    name = "unnamed"
    nodes = []
    edges = []
    capacities = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0]
        try:
            if kind == "topology":
                name = parts[1] if len(parts) > 1 else "unnamed"
            elif kind == "node":
                nodes.append(int(parts[1]))
            elif kind == "edge":
                u, v = int(parts[1]), int(parts[2])
                edges.append((u, v))
                if len(parts) > 3:
                    capacities[(u, v)] = float(parts[3])
            else:
                raise TopologyError(
                    f"line {line_number}: unknown directive {kind!r}"
                )
        except (IndexError, ValueError) as exc:
            raise TopologyError(f"line {line_number}: malformed line {raw!r}") from exc
    return Topology(name, nodes, edges, capacities)


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology from ``path``."""
    return loads_topology(Path(path).read_text())
