"""Topology datatype.

A :class:`Topology` is an undirected multigraph-free graph description —
node list, edge list, optional per-edge capacities — decoupled from the
stateful :class:`~repro.network.network.PaymentNetwork` so that a single
topology can be instantiated many times with different capacities (the
paper's Fig. 7 capacity sweep does exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TopologyError
from repro.network.network import PaymentNetwork, canonical_edge

__all__ = ["Topology"]

Edge = Tuple[int, int]


@dataclass
class Topology:
    """An immutable-by-convention graph description.

    Attributes
    ----------
    name:
        Human-readable identifier used in reports ("isp", "ripple-small"...).
    nodes:
        Node identifiers (ints throughout the built-in generators).
    edges:
        Undirected edges as (u, v) pairs; stored canonically and deduplicated.
    capacities:
        Optional per-edge total channel funds.  Edges absent from the map use
        the ``default_capacity`` passed to :meth:`build_network`.
    """

    name: str
    nodes: List[int]
    edges: List[Edge]
    capacities: Dict[Edge, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise TopologyError(f"topology {self.name!r} has duplicate nodes")
        seen: set = set()
        clean: List[Edge] = []
        for u, v in self.edges:
            if u == v:
                raise TopologyError(f"topology {self.name!r} has self-loop at {u!r}")
            if u not in node_set or v not in node_set:
                raise TopologyError(
                    f"topology {self.name!r} edge ({u!r}, {v!r}) uses unknown node"
                )
            key = canonical_edge(u, v)
            if key in seen:
                continue
            seen.add(key)
            clean.append(key)
        self.edges = clean
        self.capacities = {canonical_edge(u, v): c for (u, v), c in self.capacities.items()}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    def degree_sequence(self) -> List[int]:
        """Sorted (descending) degree sequence."""
        degree: Dict[int, int] = {n: 0 for n in self.nodes}
        for u, v in self.edges:
            degree[u] += 1
            degree[v] += 1
        return sorted(degree.values(), reverse=True)

    def adjacency(self) -> Dict[int, List[int]]:
        """Adjacency lists with deterministically sorted neighbours."""
        adj: Dict[int, List[int]] = {n: [] for n in self.nodes}
        for u, v in self.edges:
            adj[u].append(v)
            adj[v].append(u)
        for neighbours in adj.values():
            neighbours.sort()
        return adj

    def is_connected(self) -> bool:
        """Breadth-first connectivity check."""
        if not self.nodes:
            return True
        adj = self.adjacency()
        root = self.nodes[0]
        seen = {root}
        frontier = [root]
        while frontier:
            nxt = []
            for node in frontier:
                for neighbour in adj[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        nxt.append(neighbour)
            frontier = nxt
        return len(seen) == len(self.nodes)

    # ------------------------------------------------------------------
    def build_network(
        self,
        default_capacity: float,
        balance_fraction: float = 0.5,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
    ) -> PaymentNetwork:
        """Instantiate a :class:`PaymentNetwork` from this topology.

        Parameters
        ----------
        default_capacity:
            Total funds per channel for edges without an explicit capacity.
            The paper's experiments set a uniform capacity per link
            (10 000–100 000 XRP) split evenly.
        balance_fraction:
            Fraction of each channel's funds initially held by the
            canonically-first endpoint.  0.5 reproduces the paper's even
            split.
        base_fee, fee_rate:
            Uniform forwarding-fee schedule applied to every channel (§2);
            fee-free by default, matching the paper's evaluation.
        """
        if default_capacity <= 0:
            raise TopologyError(f"default_capacity must be positive, got {default_capacity!r}")
        if not 0.0 <= balance_fraction <= 1.0:
            raise TopologyError(
                f"balance_fraction must lie in [0, 1], got {balance_fraction!r}"
            )
        network = PaymentNetwork()
        for node in self.nodes:
            network.add_node(node)
        for u, v in self.edges:
            capacity = self.capacities.get((u, v), default_capacity)
            network.add_channel(
                u,
                v,
                capacity,
                balance_u=capacity * balance_fraction,
                base_fee=base_fee,
                fee_rate=fee_rate,
            )
        return network

    def with_capacity(self, capacity: float) -> "Topology":
        """Copy of this topology with every edge set to ``capacity``."""
        return Topology(
            name=self.name,
            nodes=list(self.nodes),
            edges=list(self.edges),
            capacities={e: capacity for e in self.edges},
        )

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (for analysis/interop only)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        for u, v in self.edges:
            graph.add_edge(u, v, capacity=self.capacities.get((u, v)))
        return graph
