"""Canonical and random topology generators.

Everything here is implemented from scratch (no networkx dependency) so the
substrate is self-contained; :meth:`Topology.to_networkx` exists purely for
downstream analysis.

The random generators take seeds/Generators through
:func:`repro.simulator.rng.make_rng` and are fully deterministic for a fixed
seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.simulator.rng import SeedLike, make_rng
from repro.topology.base import Topology

__all__ = [
    "line_topology",
    "star_topology",
    "cycle_topology",
    "complete_topology",
    "grid_topology",
    "balanced_tree_topology",
    "erdos_renyi_topology",
    "small_world_topology",
    "scale_free_topology",
]


def _require_positive(n: int, what: str) -> None:
    if n <= 0:
        raise TopologyError(f"{what} must be positive, got {n}")


def line_topology(n: int) -> Topology:
    """Path graph 0–1–2–…–(n−1)."""
    _require_positive(n, "n")
    return Topology("line", list(range(n)), [(i, i + 1) for i in range(n - 1)])


def star_topology(n_leaves: int) -> Topology:
    """Hub node 0 connected to ``n_leaves`` leaves."""
    _require_positive(n_leaves, "n_leaves")
    return Topology(
        "star", list(range(n_leaves + 1)), [(0, i) for i in range(1, n_leaves + 1)]
    )


def cycle_topology(n: int) -> Topology:
    """Ring on ``n >= 3`` nodes."""
    if n < 3:
        raise TopologyError(f"a cycle needs at least 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology("cycle", list(range(n)), edges)


def complete_topology(n: int) -> Topology:
    """Complete graph K_n."""
    _require_positive(n, "n")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Topology("complete", list(range(n)), edges)


def grid_topology(rows: int, cols: int) -> Topology:
    """rows × cols lattice with 4-neighbour connectivity."""
    _require_positive(rows, "rows")
    _require_positive(cols, "cols")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Topology("grid", list(range(rows * cols)), edges)


def balanced_tree_topology(branching: int, depth: int) -> Topology:
    """Rooted balanced tree: ``branching`` children per node, ``depth`` levels."""
    _require_positive(branching, "branching")
    if depth < 0:
        raise TopologyError(f"depth must be non-negative, got {depth}")
    nodes = [0]
    edges: List[Tuple[int, int]] = []
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                nodes.append(next_id)
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return Topology("tree", nodes, edges)


def erdos_renyi_topology(
    n: int,
    p: float,
    seed: SeedLike = None,
    ensure_connected: bool = True,
    max_attempts: int = 100,
) -> Topology:
    """G(n, p) random graph.

    With ``ensure_connected`` (default) the generator redraws until the graph
    is connected, raising after ``max_attempts`` failures — payment networks
    are useless disconnected.
    """
    _require_positive(n, "n")
    if not 0.0 <= p <= 1.0:
        raise TopologyError(f"p must lie in [0, 1], got {p!r}")
    rng = make_rng(seed)
    for _ in range(max_attempts):
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < p
        ]
        topo = Topology("erdos-renyi", list(range(n)), edges)
        if not ensure_connected or topo.is_connected():
            return topo
    raise TopologyError(
        f"could not draw a connected G({n}, {p}) in {max_attempts} attempts"
    )


def small_world_topology(
    n: int,
    k: int,
    beta: float,
    seed: SeedLike = None,
) -> Topology:
    """Watts–Strogatz small-world graph.

    Starts from a ring lattice where every node connects to its ``k`` nearest
    neighbours (``k`` even) and rewires each edge's far endpoint with
    probability ``beta``.
    """
    _require_positive(n, "n")
    if k % 2 != 0 or k <= 0:
        raise TopologyError(f"k must be positive and even, got {k}")
    if k >= n:
        raise TopologyError(f"k={k} must be smaller than n={n}")
    if not 0.0 <= beta <= 1.0:
        raise TopologyError(f"beta must lie in [0, 1], got {beta!r}")
    rng = make_rng(seed)
    edge_set = set()
    for i in range(n):
        for offset in range(1, k // 2 + 1):
            j = (i + offset) % n
            edge_set.add((min(i, j), max(i, j)))
    edges = sorted(edge_set)
    rewired = set(edges)
    for u, v in edges:
        if rng.random() >= beta:
            continue
        rewired.discard((u, v))
        candidates = [
            w
            for w in range(n)
            if w != u and (min(u, w), max(u, w)) not in rewired
        ]
        if not candidates:
            rewired.add((u, v))
            continue
        w = int(rng.choice(candidates))
        rewired.add((min(u, w), max(u, w)))
    return Topology("small-world", list(range(n)), sorted(rewired))


def scale_free_topology(
    n: int,
    m: int,
    seed: SeedLike = None,
    m0: Optional[int] = None,
) -> Topology:
    """Barabási–Albert preferential attachment graph.

    Each new node attaches to ``m`` distinct existing nodes chosen with
    probability proportional to degree.  This produces the heavy-tailed
    degree distribution characteristic of the Ripple/Lightning graphs the
    paper evaluates on.

    Parameters
    ----------
    n:
        Total node count.
    m:
        Edges added per new node.
    m0:
        Size of the initial clique (defaults to ``m + 1``).
    """
    _require_positive(n, "n")
    _require_positive(m, "m")
    if m0 is None:
        m0 = m + 1
    if m0 > n:
        raise TopologyError(f"m0={m0} cannot exceed n={n}")
    if m > m0:
        raise TopologyError(f"m={m} cannot exceed the seed clique size m0={m0}")
    rng = make_rng(seed)
    edges: List[Tuple[int, int]] = [
        (i, j) for i in range(m0) for j in range(i + 1, m0)
    ]
    # Repeated-node list for preferential attachment: each node appears once
    # per unit of degree.
    attachment: List[int] = []
    for u, v in edges:
        attachment.append(u)
        attachment.append(v)
    if not attachment:  # m0 == 1: bootstrap so node 0 is attachable
        attachment = [0]
    for new_node in range(m0, n):
        targets: set = set()
        while len(targets) < m:
            pick = attachment[int(rng.integers(len(attachment)))]
            targets.add(pick)
        for target in sorted(targets):
            edges.append((target, new_node))
            attachment.append(target)
            attachment.append(new_node)
    return Topology("scale-free", list(range(n)), edges)
