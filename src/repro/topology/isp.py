"""The ISP-like evaluation topology.

The paper evaluates on "an ISP-topology [Topology Zoo] ... a graph with 32
nodes and 152 edges" (§6.1).  The Topology Zoo dataset is not available
offline, so we build a deterministic synthetic graph with *exactly* 32 nodes
and 152 edges and the two-level structure typical of the Topology Zoo ISP
maps: a densely meshed core and a ring-connected edge/aggregation layer
multi-homed into the core.

Construction (all deterministic, no randomness):

* nodes 0–7 form the core, fully meshed                     → 28 edges
* nodes 8–31 are edge nodes; edge node ``i`` homes into cores
  ``i mod 8``, ``(i+1) mod 8`` and ``(i+3) mod 8``          → 72 edges
* a ring over the 24 edge nodes (offset +1)                 → 24 edges
* a second ring at offset +2                                → 24 edges
* four long chords at offset +12                            →  4 edges

Total: 28 + 72 + 24 + 24 + 4 = **152 edges** over **32 nodes**.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import Topology

__all__ = ["isp_topology", "ISP_NUM_NODES", "ISP_NUM_EDGES"]

ISP_NUM_NODES = 32
ISP_NUM_EDGES = 152

_NUM_CORE = 8
_NUM_EDGE = 24


def isp_topology() -> Topology:
    """Build the deterministic 32-node / 152-edge ISP-like topology."""
    edges: List[Tuple[int, int]] = []

    # Full mesh over the core.
    for i in range(_NUM_CORE):
        for j in range(i + 1, _NUM_CORE):
            edges.append((i, j))

    # Each edge node multi-homes into three cores.
    for k in range(_NUM_EDGE):
        node = _NUM_CORE + k
        for offset in (0, 1, 3):
            edges.append(((k + offset) % _NUM_CORE, node))

    # Two rings over the edge nodes.
    for offset in (1, 2):
        for k in range(_NUM_EDGE):
            a = _NUM_CORE + k
            b = _NUM_CORE + (k + offset) % _NUM_EDGE
            edges.append((min(a, b), max(a, b)))

    # Four long chords.
    for k in (0, 3, 6, 9):
        a = _NUM_CORE + k
        b = _NUM_CORE + (k + 12) % _NUM_EDGE
        edges.append((min(a, b), max(a, b)))

    topo = Topology("isp", list(range(ISP_NUM_NODES)), edges)
    assert topo.num_nodes == ISP_NUM_NODES
    assert topo.num_edges == ISP_NUM_EDGES, topo.num_edges
    return topo
