"""Ripple-like evaluation topology.

The paper uses the largest component of the pruned January-2013 Ripple trace:
3774 nodes and 12512 edges (§6.1).  The trace itself is unavailable offline
(see DESIGN.md, substitution #1), so we synthesise graphs with the same
structural signature: scale-free degree distribution (credit networks grow by
preferential attachment) at the same edge/node ratio (12512/3774 ≈ 3.32).

Presets scale the node count so the benchmark suite can run at CI speed
while keeping the full-scale option available:

=========  ======  ================================
preset     nodes   edges (target ≈ 3.32 × nodes)
=========  ======  ================================
``tiny``       60   ≈ 199
``small``     200   ≈ 663
``medium``    800   ≈ 2 653
``full``     3774   12 512 (paper scale, exact)
``huge``    10000   ≈ 33 157 (the scale smoke test's target)
=========  ======  ================================
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import TopologyError
from repro.simulator.rng import SeedLike, make_rng
from repro.topology.base import Topology
from repro.topology.generators import scale_free_topology

__all__ = ["ripple_topology", "RIPPLE_PRESETS", "RIPPLE_EDGE_NODE_RATIO"]

#: Edge/node ratio of the paper's pruned Ripple subgraph (12512 / 3774).
RIPPLE_EDGE_NODE_RATIO = 12512 / 3774

#: preset name -> (num_nodes, exact_num_edges or None to use the ratio)
RIPPLE_PRESETS: Dict[str, Tuple[int, Optional[int]]] = {
    "tiny": (60, None),
    "small": (200, None),
    "medium": (800, None),
    "full": (3774, 12512),
    "huge": (10000, None),
}


def ripple_topology(scale: str = "small", seed: SeedLike = 0) -> Topology:
    """Build a Ripple-like scale-free topology at the requested scale.

    The generator starts from Barabási–Albert preferential attachment with
    m = 3 and then adds extra preferential edges until the target edge count
    is met exactly, so the degree distribution stays heavy-tailed while the
    edge/node ratio matches the paper's subgraph.
    """
    if scale not in RIPPLE_PRESETS:
        raise TopologyError(
            f"unknown ripple preset {scale!r}; choose from {sorted(RIPPLE_PRESETS)}"
        )
    num_nodes, exact_edges = RIPPLE_PRESETS[scale]
    target_edges = exact_edges if exact_edges is not None else round(
        num_nodes * RIPPLE_EDGE_NODE_RATIO
    )
    rng = make_rng(seed)
    base = scale_free_topology(num_nodes, m=3, seed=rng)
    edges = set(base.edges)
    if len(edges) > target_edges:
        raise TopologyError(
            f"base graph has {len(edges)} edges, above target {target_edges}"
        )

    # Degree-proportional endpoint sampling for the densification edges.
    degree = {n: 0 for n in base.nodes}
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    attachment = [n for n in base.nodes for _ in range(degree[n])]

    attempts = 0
    max_attempts = 200 * target_edges
    while len(edges) < target_edges:
        attempts += 1
        if attempts > max_attempts:  # pragma: no cover - defensive
            raise TopologyError("densification failed to reach the edge target")
        u = attachment[int(rng.integers(len(attachment)))]
        v = attachment[int(rng.integers(len(attachment)))]
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edges:
            continue
        edges.add(key)
        attachment.append(u)
        attachment.append(v)
    topo = Topology(f"ripple-{scale}", list(base.nodes), sorted(edges))
    assert topo.num_edges == target_edges
    return topo
