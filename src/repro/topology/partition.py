"""Deterministic graph partitioning for spatial sharding.

The sharding layer (:mod:`repro.engine.sharding`) splits one huge payment
network into *segments* — contiguous node regions — and runs each
segment's traffic in its own worker process over a shared-memory channel
store, exchanging only boundary-channel traffic at epoch barriers.  The
partition is the contract between the two layers: which nodes belong to
which segment, and which channels are *cut* (cross-segment) and therefore
boundary traffic.

:func:`partition_adjacency` grows ``num_segments`` regions by seeded
farthest-point sampling + round-robin breadth-first expansion.  The
algorithm is a plain deterministic function of the adjacency, the segment
count and the seed — no RNG state, no hash-order iteration — so every
process (and every re-run) derives byte-identical partitions, which the
sharding determinism contract depends on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import PaymentNetwork
    from repro.topology.base import Topology

__all__ = [
    "GraphPartition",
    "partition_adjacency",
    "partition_network",
    "partition_topology",
]

Node = int
Edge = Tuple[int, int]


@dataclass(frozen=True)
class GraphPartition:
    """An assignment of every node to one of ``num_segments`` segments.

    Attributes
    ----------
    segments:
        Per-segment sorted node tuples; every node appears exactly once.
    cut_edges:
        Sorted ``(u, v)`` pairs (``u < v``) whose endpoints lie in
        different segments — the boundary channels shards exchange over.
    seed:
        The seed the regions were grown from (recorded for artifacts).
    """

    segments: Tuple[Tuple[Node, ...], ...]
    cut_edges: Tuple[Edge, ...]
    seed: int = 0
    _node_segment: Dict[Node, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        lookup = self._node_segment
        for index, nodes in enumerate(self.segments):
            for node in nodes:
                lookup[node] = index

    @property
    def num_segments(self) -> int:
        """Number of segments (some may be empty on tiny graphs)."""
        return len(self.segments)

    def segment_of(self, node: Node) -> int:
        """The segment index owning ``node``."""
        return self._node_segment[node]

    def sizes(self) -> List[int]:
        """Per-segment node counts."""
        return [len(nodes) for nodes in self.segments]

    def is_internal(self, nodes: Sequence[Node]) -> bool:
        """Whether every node of ``nodes`` lies in one segment."""
        lookup = self._node_segment
        if not nodes:
            return True
        first = lookup[nodes[0]]
        return all(lookup[node] == first for node in nodes[1:])

    def cut_edges_between(self, a: int, b: int) -> List[Edge]:
        """Cut edges joining segments ``a`` and ``b``, sorted."""
        lookup = self._node_segment
        want = {a, b}
        return [
            (u, v)
            for u, v in self.cut_edges
            if {lookup[u], lookup[v]} == want
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphPartition(segments={self.sizes()}, "
            f"cut_edges={len(self.cut_edges)})"
        )


def _bfs_distances(
    adjacency: Mapping[Node, Sequence[Node]], sources: Sequence[Node]
) -> Dict[Node, int]:
    """Multi-source BFS hop distances (unreached nodes are absent)."""
    distances: Dict[Node, int] = {node: 0 for node in sources}
    frontier = deque(sources)
    while frontier:
        node = frontier.popleft()
        depth = distances[node] + 1
        for neighbour in adjacency[node]:
            if neighbour not in distances:
                distances[neighbour] = depth
                frontier.append(neighbour)
    return distances


def _select_seeds(
    adjacency: Mapping[Node, Sequence[Node]],
    nodes: Sequence[Node],
    num_segments: int,
    seed: int,
) -> List[Node]:
    """Farthest-point seed nodes: spread regions across the graph.

    The first seed is picked by rotating the sorted node list by ``seed``;
    each further seed maximises the BFS hop distance to all seeds chosen
    so far (ties broken by node id), falling back to the first unreached
    node for disconnected graphs.
    """
    seeds = [nodes[seed % len(nodes)]]
    while len(seeds) < num_segments:
        distances = _bfs_distances(adjacency, seeds)
        chosen = set(seeds)
        best: Tuple[int, Node] | None = None
        for node in nodes:
            if node in chosen:
                continue
            depth = distances.get(node)
            if depth is None:  # disconnected: farthest by definition
                best = (len(adjacency) + 1, node)
                break
            if best is None or depth > best[0]:
                best = (depth, node)
        if best is None:  # fewer nodes than segments
            break
        seeds.append(best[1])
    return seeds


def partition_adjacency(
    adjacency: Mapping[Node, Sequence[Node]],
    num_segments: int,
    seed: int = 0,
) -> GraphPartition:
    """Partition an adjacency mapping into contiguous balanced segments.

    Seeds are spread by farthest-point sampling, then regions grow one
    node per round-robin turn through per-region FIFO frontiers (each
    region's expansion is a breadth-first wave, so segments stay
    contiguous wherever the graph allows).  Nodes unreached by any region
    (disconnected components) are appended, in node order, to whichever
    region is currently smallest.  Deterministic: iteration follows the
    sorted node list and each node's given neighbour order.
    """
    if num_segments <= 0:
        raise ValueError(f"num_segments must be positive, got {num_segments}")
    nodes = sorted(adjacency)
    if not nodes:
        return GraphPartition(
            segments=tuple(() for _ in range(num_segments)),
            cut_edges=(),
            seed=seed,
        )
    num_segments = min(num_segments, len(nodes))
    seeds = _select_seeds(adjacency, nodes, num_segments, seed)
    owner: Dict[Node, int] = {}
    frontiers: List[deque] = [deque() for _ in seeds]
    for index, seed_node in enumerate(seeds):
        owner[seed_node] = index
        frontiers[index].append(seed_node)
    members: List[List[Node]] = [[seed_node] for seed_node in seeds]
    # Round-robin BFS: each region claims one node per turn, so region
    # sizes stay within one node of each other while the frontiers last.
    live = True
    while live:
        live = False
        for index, frontier in enumerate(frontiers):
            while frontier:
                node = frontier.popleft()
                claimed = None
                for neighbour in adjacency[node]:
                    if neighbour not in owner:
                        owner[neighbour] = index
                        members[index].append(neighbour)
                        frontier.append(neighbour)
                        claimed = neighbour
                        break
                if claimed is not None:
                    # The node may have more unclaimed neighbours: revisit
                    # it after the other regions take their turn.
                    frontier.appendleft(node)
                    live = True
                    break
    for node in nodes:  # disconnected leftovers -> smallest region
        if node not in owner:
            index = min(range(len(members)), key=lambda i: (len(members[i]), i))
            owner[node] = index
            members[index].append(node)
    segments = tuple(tuple(sorted(nodes)) for nodes in members)
    cut: List[Edge] = []
    for u in nodes:
        seg_u = owner[u]
        for v in adjacency[u]:
            if u < v and owner[v] != seg_u:
                cut.append((u, v))
    partition = GraphPartition(
        segments=segments, cut_edges=tuple(sorted(cut)), seed=seed
    )
    return partition


def partition_network(
    network: "PaymentNetwork", num_segments: int, seed: int = 0
) -> GraphPartition:
    """Partition a payment network's channel graph."""
    return partition_adjacency(
        network.path_service.sorted_adjacency(), num_segments, seed=seed
    )


def partition_topology(
    topology: "Topology", num_segments: int, seed: int = 0
) -> GraphPartition:
    """Partition a static topology's edge graph."""
    return partition_adjacency(topology.adjacency(), num_segments, seed=seed)
