"""The paper's worked example (Figs. 4 and 5) as verified constants.

The arXiv text under-specifies the exact figure (edge weights are given only
as an unordered multiset), so the instance below was recovered by exhaustive
search over all assignments consistent with every stated fact, then verified
with two independent ν(C*) computations and the fluid LPs:

* total demand = 12, with four weight-1 and four weight-2 demands;
* d(1,2) = 1 and d(1,5) = 1  ("node 1 wishes to send at rate 1 to 2 and 5");
* d(2,4) = 2                 ("node 2 wishes to send at rate 2 to node 4");
* d(4,1) ≥ 1                 (Fig. 4b routes 4 → 2 → 1 at rate 1);
* d(3,2) ≥ 1 and d(4,3) ≥ 1  (Fig. 4c: "nodes 3 and 4 also send 1 unit of
  flow to nodes 2 and 3 respectively");
* maximum circulation ν(C*) = 8 with edge weights {2,1,1,1,1,1,1} (Fig. 5b)
  and a DAG remainder of four weight-1 edges (Fig. 5c); the circulation
  fraction is 8/12 ≈ 66.7% (the paper's "8/12 = 75%" in §5.2.2 is an
  arithmetic slip — both the 8 and the 12 are as stated);
* balanced routing restricted to shortest paths achieves throughput 5
  (Fig. 4b) while optimal balanced routing achieves 8 (Fig. 4c).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.fluid.circulation import PaymentGraph
from repro.topology.base import Topology

__all__ = [
    "FIG4_EDGES",
    "FIG4_DEMANDS",
    "FIG4_TOTAL_DEMAND",
    "FIG4_MAX_CIRCULATION",
    "FIG4_SHORTEST_PATH_THROUGHPUT",
    "FIG4_OPTIMAL_THROUGHPUT",
    "fig4_topology",
    "fig4_payment_graph",
]

#: Channels of the 5-node example network (Fig. 4b/4c).
FIG4_EDGES: Tuple[Tuple[int, int], ...] = (
    (1, 2),
    (2, 3),
    (2, 4),
    (3, 4),
    (4, 5),
    (1, 5),
)

#: Demand rates d_{i,j} of the payment graph (Fig. 4a / Fig. 5a).
FIG4_DEMANDS: Dict[Tuple[int, int], float] = {
    (1, 2): 1.0,
    (1, 5): 1.0,
    (2, 4): 2.0,
    (4, 1): 1.0,
    (3, 2): 2.0,
    (4, 3): 2.0,
    (5, 1): 2.0,
    (5, 2): 1.0,
}

#: Σ d_{i,j} for the example.
FIG4_TOTAL_DEMAND: float = 12.0

#: ν(C*): the balanced-throughput bound of Proposition 1 (Fig. 5b).
FIG4_MAX_CIRCULATION: float = 8.0

#: Maximum balanced throughput when every pair uses only its shortest path
#: (Fig. 4b).
FIG4_SHORTEST_PATH_THROUGHPUT: float = 5.0

#: Maximum balanced throughput with unrestricted paths (Fig. 4c); equals
#: ν(C*) per Proposition 1.
FIG4_OPTIMAL_THROUGHPUT: float = 8.0


def fig4_topology() -> Topology:
    """The 5-node example topology of Fig. 4."""
    return Topology("fig4", [1, 2, 3, 4, 5], list(FIG4_EDGES))


def fig4_payment_graph() -> PaymentGraph:
    """The example's payment graph (Fig. 4a)."""
    return PaymentGraph(FIG4_DEMANDS)
