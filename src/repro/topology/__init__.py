"""Topology generators: evaluation graphs, canonical graphs, serialisation."""

from repro.topology.base import Topology
from repro.topology.examples import (
    FIG4_DEMANDS,
    FIG4_EDGES,
    FIG4_MAX_CIRCULATION,
    FIG4_OPTIMAL_THROUGHPUT,
    FIG4_SHORTEST_PATH_THROUGHPUT,
    FIG4_TOTAL_DEMAND,
    fig4_payment_graph,
    fig4_topology,
)
from repro.topology.generators import (
    balanced_tree_topology,
    complete_topology,
    cycle_topology,
    erdos_renyi_topology,
    grid_topology,
    line_topology,
    scale_free_topology,
    small_world_topology,
    star_topology,
)
from repro.topology.io import (
    dump_topology,
    dumps_topology,
    load_topology,
    loads_topology,
)
from repro.topology.isp import ISP_NUM_EDGES, ISP_NUM_NODES, isp_topology
from repro.topology.partition import (
    GraphPartition,
    partition_adjacency,
    partition_network,
    partition_topology,
)
from repro.topology.ripple import (
    RIPPLE_EDGE_NODE_RATIO,
    RIPPLE_PRESETS,
    ripple_topology,
)

__all__ = [
    "FIG4_DEMANDS",
    "FIG4_EDGES",
    "FIG4_MAX_CIRCULATION",
    "FIG4_OPTIMAL_THROUGHPUT",
    "FIG4_SHORTEST_PATH_THROUGHPUT",
    "FIG4_TOTAL_DEMAND",
    "ISP_NUM_EDGES",
    "ISP_NUM_NODES",
    "RIPPLE_EDGE_NODE_RATIO",
    "RIPPLE_PRESETS",
    "GraphPartition",
    "Topology",
    "balanced_tree_topology",
    "complete_topology",
    "cycle_topology",
    "dump_topology",
    "dumps_topology",
    "erdos_renyi_topology",
    "fig4_payment_graph",
    "fig4_topology",
    "grid_topology",
    "isp_topology",
    "line_topology",
    "load_topology",
    "loads_topology",
    "partition_adjacency",
    "partition_network",
    "partition_topology",
    "ripple_topology",
    "scale_free_topology",
    "small_world_topology",
    "star_topology",
]
