"""SpeedyMurmurs-style embedding-based routing baseline.

SpeedyMurmurs [25] assigns every node a *prefix coordinate* in each of T
spanning trees (a child's coordinate extends its parent's with a random
label).  Tree distance between coordinates is computable locally::

    dist(a, b) = |a| + |b| - 2 * common_prefix(a, b)

A payment is split into one share per tree; each share is forwarded
greedily — at node u, choose the neighbour (over *all* channels, not just
tree edges; this is SpeedyMurmurs' improvement over pure tree routing)
that is strictly closer to the destination's coordinate and has enough
balance.  If any share dead-ends, the whole payment fails (atomic).

Faithful simplifications (see DESIGN.md): coordinates are assigned once at
setup (the paper's graphs are static during a run), and shares are equal
value, with capacity-aware fallback ordering at each hop.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.routing.base import RoutingScheme
from repro.simulator.rng import SeedLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime
    from repro.network.network import PaymentNetwork

__all__ = ["SpeedyMurmursScheme", "PrefixEmbedding", "tree_distance"]

Coordinate = Tuple[int, ...]
Path = Tuple[int, ...]
_EPS = 1e-9


def tree_distance(a: Coordinate, b: Coordinate) -> int:
    """Hop distance between two prefix coordinates in their tree."""
    common = 0
    for x, y in zip(a, b):
        if x != y:
            break
        common += 1
    return len(a) + len(b) - 2 * common


class PrefixEmbedding:
    """Prefix coordinates for one spanning tree (one SpeedyMurmurs 'dimension')."""

    def __init__(self, adjacency: Dict[int, List[int]], root: int, seed: SeedLike = 0):
        self._root = root
        self._coordinates: Dict[int, Coordinate] = {}
        rng = make_rng(seed)
        self._coordinates[root] = ()
        queue = deque([root])
        visited = {root}
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                label = int(rng.integers(0, 2**31 - 1))
                self._coordinates[neighbour] = self._coordinates[node] + (label,)
                queue.append(neighbour)

    @property
    def root(self) -> int:
        """The tree's root node."""
        return self._root

    def coordinate(self, node: int) -> Coordinate:
        """The node's coordinate (raises KeyError for unreachable nodes)."""
        return self._coordinates[node]

    def distance(self, a: int, b: int) -> int:
        """Tree distance between two nodes."""
        return tree_distance(self._coordinates[a], self._coordinates[b])


class SpeedyMurmursScheme(RoutingScheme):
    """Embedding-based greedy routing with T spanning trees (atomic)."""

    name = "speedymurmurs"
    atomic = True

    def __init__(self, num_trees: int = 3, seed: SeedLike = 0, max_hops: int = 64):
        if num_trees <= 0:
            raise ValueError(f"num_trees must be positive, got {num_trees}")
        if max_hops <= 1:
            raise ValueError(f"max_hops must exceed 1, got {max_hops}")
        self.num_trees = num_trees
        self.seed = seed
        self.max_hops = max_hops
        self._embeddings: List[PrefixEmbedding] = []
        self._adjacency: Dict[int, List[int]] = {}

    def prepare(self, runtime: "Runtime") -> None:
        # Shared sorted adjacency from the network's PathService (one
        # construction per network; treated as read-only here).
        self._adjacency = runtime.network.path_service.sorted_adjacency()
        rng = make_rng(self.seed)
        by_degree = sorted(
            self._adjacency, key=lambda n: (-len(self._adjacency[n]), n)
        )
        self._embeddings = []
        for t in range(self.num_trees):
            # Roots are the highest-degree nodes (deterministic, distinct
            # when possible), labels are randomised per tree.
            root = by_degree[t % len(by_degree)]
            self._embeddings.append(
                PrefixEmbedding(self._adjacency, root, seed=rng)
            )

    # ------------------------------------------------------------------
    def _greedy_route(
        self,
        embedding: PrefixEmbedding,
        network: "PaymentNetwork",
        source: int,
        dest: int,
        amount: float,
        reserved: Dict[Tuple[int, int], float],
    ) -> Optional[Path]:
        """Greedy balance-aware descent toward the destination coordinate.

        ``reserved`` tracks balance already promised to other shares of the
        same payment so the shares don't double-spend a channel.
        """
        path = [source]
        node = source
        for _ in range(self.max_hops):
            if node == dest:
                return tuple(path)
            here = embedding.distance(node, dest)
            candidates: List[Tuple[int, float, int]] = []
            for neighbour in self._adjacency[node]:
                if neighbour in path:
                    continue
                distance = embedding.distance(neighbour, dest)
                if distance >= here:
                    continue
                available = network.available(node, neighbour) - reserved.get(
                    (node, neighbour), 0.0
                )
                if available + _EPS < amount:
                    continue
                candidates.append((distance, -available, neighbour))
            if not candidates:
                return None
            candidates.sort()
            node = candidates[0][2]
            path.append(node)
        return None

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        shares = self._split_amount(payment.amount)
        allocations: List[Tuple[Path, float]] = []
        reserved: Dict[Tuple[int, int], float] = {}
        for embedding, share in zip(self._embeddings, shares):
            if share <= _EPS:
                continue
            path = self._greedy_route(
                embedding,
                runtime.network,
                payment.source,
                payment.dest,
                share,
                reserved,
            )
            if path is None:
                runtime.fail_payment(payment)
                return
            for a, b in zip(path, path[1:]):
                reserved[(a, b)] = reserved.get((a, b), 0.0) + share
            allocations.append((path, share))
        if not allocations or not runtime.send_atomic(payment, allocations):
            runtime.fail_payment(payment)

    def _split_amount(self, amount: float) -> List[float]:
        """Equal split across trees (last share absorbs rounding)."""
        base = amount / self.num_trees
        shares = [base] * self.num_trees
        shares[-1] = amount - base * (self.num_trees - 1)
        return shares
