"""Routing scheme interface.

A scheme is pure policy: it decides *which paths and how much*, and uses the
runtime's two primitives (``send_unit`` / ``send_atomic``) to move money.
The runtime calls :meth:`RoutingScheme.attempt`:

* once at arrival for **atomic** schemes (``atomic = True``) — if the
  attempt locks nothing, the runtime fails the payment (the paper's
  baselines try exactly once);
* at arrival and at every poll for **non-atomic** schemes, while the
  payment has remaining value and has not expired.

Path discovery goes through the network's shared
:class:`~repro.engine.pathservice.PathService`: the default
:meth:`RoutingScheme.prepare` hands schemes a
:class:`~repro.engine.pathservice.PairPathView` as ``self.path_cache`` —
the same ``paths`` / ``shortest`` / ``k`` surface :class:`PathCache`
exposed, but served from one per-network service (CSR array BFS,
process-wide memoisation, optional disk artifacts) instead of a private
per-scheme cache.  :class:`PathCache` itself remains as the standalone
scalar reference implementation.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.fluid.paths import k_edge_disjoint_paths, k_shortest_paths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["RoutingScheme", "PathCache"]

Path = Tuple[int, ...]


class PathCache:
    """Lazily computed, memoised path sets over a static topology.

    Parameters
    ----------
    adjacency:
        ``{node: [neighbours]}`` of the channel graph.
    k:
        Paths per pair (the paper uses 4).
    method:
        ``"edge-disjoint"`` (default, the paper's choice) or ``"yen"``.
    """

    def __init__(self, adjacency: Dict[int, List[int]], k: int = 4, method: str = "edge-disjoint"):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if method not in ("edge-disjoint", "yen"):
            raise ValueError(f"unknown path method {method!r}")
        self._adjacency = adjacency
        self._k = k
        self._method = method
        self._cache: Dict[Tuple[int, int], List[Path]] = {}

    @classmethod
    def from_network(cls, network, k: int = 4, method: str = "edge-disjoint") -> "PathCache":
        """Build from a :class:`~repro.network.network.PaymentNetwork`."""
        adjacency = {
            node: sorted(network.neighbors(node)) for node in network.nodes()
        }
        return cls(adjacency, k=k, method=method)

    @property
    def k(self) -> int:
        """Paths requested per pair."""
        return self._k

    def paths(self, source: int, dest: int) -> List[Path]:
        """The pair's path set (possibly fewer than k paths; empty if
        disconnected)."""
        key = (source, dest)
        if key not in self._cache:
            if self._method == "edge-disjoint":
                found = k_edge_disjoint_paths(self._adjacency, source, dest, self._k)
            else:
                found = k_shortest_paths(self._adjacency, source, dest, self._k)
            self._cache[key] = found
        return self._cache[key]

    def shortest(self, source: int, dest: int) -> Optional[Path]:
        """The pair's shortest path, or ``None`` if disconnected."""
        paths = self.paths(source, dest)
        return paths[0] if paths else None


class RoutingScheme(abc.ABC):
    """Base class for all routing schemes."""

    #: Human-readable name used in reports.
    name: str = "base"
    #: Whether payments are delivered all-or-nothing with a single attempt.
    atomic: bool = False
    #: Native session transport the scheme needs: ``None`` (source-routed),
    #: ``"hop"`` (§4.2 in-network queues / windowed transport) or
    #: ``"backpressure"`` — see :mod:`repro.engine.transport`.  Precedence
    #: against ``runtime_class`` is per class, most-derived first: a
    #: subclass pinning its own ``runtime_class`` (without redeclaring
    #: ``transport``) keeps the legacy delegate it asks for.
    transport: Optional[str] = None
    #: Name of the vectorised cohort decision rule the session's
    #: :class:`~repro.engine.dispatch.DispatchPlan` may use in place of
    #: per-payment :meth:`attempt` calls when draining a same-tick cohort
    #: (``"waterfilling"``, ``"shortest-path"``, ``"lnd"`` or
    #: ``"spider-window"``).  ``None`` means the dispatch layer drives
    #: :meth:`attempt` sequentially — still batched at the event level,
    #: with bit-identical results.  Declaring a rule is a promise that the
    #: batched replay reproduces :meth:`attempt`'s decisions byte for
    #: byte — fees, shared channels, frozen hops and all; the parity
    #: suite in ``tests/engine/test_dispatch.py`` enforces it.
    cohort_rule: Optional[str] = None

    def prepare(self, runtime: "Runtime") -> None:
        """One-time setup before the trace starts (path/LP precomputation).

        The default implementation binds the network's shared
        :class:`~repro.engine.pathservice.PathService` view as
        ``self.path_cache`` if the subclass declared a ``num_paths``
        attribute — repeated runs and multi-scheme comparisons over the
        same topology share one set of pair computations.
        """
        num_paths = getattr(self, "num_paths", None)
        if num_paths is not None:
            self.path_cache = runtime.network.path_service.view(k=num_paths)

    @abc.abstractmethod
    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        """Try to make progress on ``payment`` given current balances."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
