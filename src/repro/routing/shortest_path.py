"""Shortest-path packet-switched baseline.

The paper's own baseline for its packet-switched architecture (§6.1):
*"We implemented shortest-path routing with non-atomic payments as another
baseline for our packet-switched network."*

Every payment uses the single BFS shortest path for its pair; MTU-bounded
units are sent whenever the path has capacity, and the remainder waits in
the global queue for the next poll.  The only difference from Spider
(Waterfilling) is the absence of multipath and imbalance awareness — which
is exactly the gap Figs. 6 and 7 measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["ShortestPathScheme"]


class ShortestPathScheme(RoutingScheme):
    """Single-shortest-path, non-atomic, queue-and-retry routing.

    Declares ``cohort_rule = "shortest-path"``: the decision sequence is
    ``send_on_path`` over one static path — a bottleneck re-probe before
    every unit — which the session's
    :class:`~repro.engine.dispatch.DispatchPlan` replays against its
    residual-capacity overlay for whole same-tick cohorts (one grouped
    probe, one scatter-add lock), byte-identical to this method.
    """

    name = "shortest-path"
    atomic = False
    num_paths = 1
    cohort_rule = "shortest-path"

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        path = self.path_cache.shortest(payment.source, payment.dest)
        if path is None:
            runtime.fail_payment(payment)
            return
        runtime.send_on_path(payment, path)
