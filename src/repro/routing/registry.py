"""Scheme registry: build any routing scheme by name.

The experiment harness and CLI construct schemes from configuration
strings; third-party schemes can be added with :func:`register_scheme`.

Built-in factories are stored as dotted paths and resolved lazily — the
Spider schemes live in :mod:`repro.core`, which itself imports routing
infrastructure, so eager imports here would be circular.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Union

from repro.errors import ConfigError
from repro.routing.base import RoutingScheme

__all__ = ["SCHEME_FACTORIES", "make_scheme", "register_scheme", "available_schemes"]

SchemeFactory = Callable[..., RoutingScheme]

#: name -> factory callable, or "module:attribute" dotted path resolved lazily.
SCHEME_FACTORIES: Dict[str, Union[str, SchemeFactory]] = {
    "shortest-path": "repro.routing.shortest_path:ShortestPathScheme",
    "max-flow": "repro.routing.max_flow:MaxFlowScheme",
    "lnd": "repro.routing.lnd:LndScheme",
    "celer": "repro.routing.backpressure:CelerScheme",
    "segment-routing": "repro.routing.segment:SegmentRoutingScheme",
    "silentwhispers": "repro.routing.landmark:LandmarkScheme",
    "speedymurmurs": "repro.routing.embedding:SpeedyMurmursScheme",
    "spider-waterfilling": "repro.core.waterfilling:WaterfillingScheme",
    "spider-lp": "repro.core.lp_routing:SpiderLPScheme",
    "spider-primal-dual": "repro.core.primal_dual_routing:SpiderPrimalDualScheme",
    "spider-amp": "repro.core.amp:AmpWaterfillingScheme",
    "spider-queueing": "repro.core.queueing:SpiderQueueingScheme",
    "spider-queueing-qgrad": "repro.core.queueing:QueueGradientWaterfillingScheme",
    "spider-window": "repro.core.window_control:WindowedSpiderScheme",
    "spider-window-imbalance": "repro.core.window_control:ImbalanceAwareWindowScheme",
    "spider-admission": "repro.core.admission:AdmissionControlScheme",
}


def register_scheme(
    name: str, factory: Union[str, SchemeFactory], overwrite: bool = False
) -> None:
    """Add a scheme factory (callable or ``"module:attr"`` path)."""
    if name in SCHEME_FACTORIES and not overwrite:
        raise ConfigError(f"scheme {name!r} is already registered")
    SCHEME_FACTORIES[name] = factory


def available_schemes() -> List[str]:
    """Sorted scheme names."""
    return sorted(SCHEME_FACTORIES)


def _resolve(entry: Union[str, SchemeFactory]) -> SchemeFactory:
    if callable(entry):
        return entry
    module_name, _, attribute = entry.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def make_scheme(name: str, **kwargs) -> RoutingScheme:
    """Instantiate the named scheme with constructor keyword arguments."""
    try:
        entry = SCHEME_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None
    return _resolve(entry)(**kwargs)
