"""Celer-style backpressure routing: per-destination queue gradients.

Celer's cRoute (the other contemporaneous "route payments like packets"
proposal, and a comparison point of the NSDI version of the paper) is a
*backpressure* algorithm: transaction units are not source-routed at all.
Every router keeps one queue per destination; periodically, each channel
direction forwards units of the destination with the largest *queue
gradient* — the backlog difference between the two endpoints — so units
drift down the congestion gradient until they reach their destination.
Backpressure is throughput-optimal in the fluid limit but pays for it with
queueing delay, which is exactly the trade-off the comparison probes.

Model
-----
* Arriving payments are chopped into MTU-bounded units and injected into
  the source router's queue for the payment's destination.
* A service epoch runs every ``service_interval`` seconds.  For each
  channel direction ``u→v`` it repeatedly picks the destination ``d``
  maximising ``backlog_u(d) − backlog_v(d) + beta·(dist(u,d) − dist(v,d))``
  and forwards the oldest eligible unit of ``d`` while the direction has
  spendable funds and the weight stays positive.  ``beta`` is the standard
  shortest-path bias that keeps pure backpressure from random-walking at
  low load.
* Each forwarded hop locks an HTLC; a unit that reaches its destination
  settles every hop after ``settle_delay`` (the end-to-end confirmation of
  §4.2), a unit that exceeds its step budget or outlives its payment
  refunds every hop.
* Units never *re-lock* a node: pressing forward is restricted to
  unvisited nodes, and a unit that has sat in one queue for
  ``stuck_after`` seconds **backtracks** — it pops its last hop and that
  hop's HTLC is refunded.  This mirrors how true backpressure drains
  misrouted backlog (reverse pressure builds up over time), while keeping
  every *settled* trail a simple path as the paper requires.

:class:`CelerScheme` injects payment value; :class:`BackpressureRuntime`
owns queues, gradients, forwarding, settlement and refunds.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.core.payments import Payment, TransactionUnit
from repro.core.runtime import Runtime, RuntimeConfig
from repro.errors import InsufficientFundsError
from repro.fluid.paths import bfs_distances
from repro.network.htlc import HashLock, Htlc
from repro.routing.base import RoutingScheme
from repro.simulator.engine import RecurringTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collectors import MetricsCollector
    from repro.network.network import PaymentNetwork

__all__ = ["BackpressureUnit", "BackpressureRuntime", "CelerScheme"]

_EPS = 1e-9


class BackpressureUnit:
    """One transaction unit drifting through the queue network."""

    __slots__ = (
        "payment",
        "amount",
        "dest",
        "node",
        "visited",
        "hops",
        "htlcs",
        "lock",
        "created_at",
        "parked_at",
        "steps",
        "done",
    )

    def __init__(self, payment: Payment, amount: float, now: float):
        self.payment = payment
        self.amount = amount
        self.dest = payment.dest
        self.node = payment.source
        self.visited: Set[int] = {payment.source}
        self.hops: List[Tuple[int, int]] = []
        self.htlcs: List[Htlc] = []
        self.lock = HashLock.generate(payment.payment_id, payment.units_sent)
        self.created_at = now
        self.parked_at = now
        self.steps = 0
        self.done = False

    @property
    def backtrack_target(self) -> Optional[int]:
        """The node a pop would return to, or ``None`` at the source."""
        return self.hops[-1][0] if self.hops else None


class BackpressureRuntime(Runtime):
    """Runtime that forwards units by per-destination queue gradients.

    Extra parameters (on top of :class:`~repro.core.runtime.RuntimeConfig`):

    service_interval:
        Period of the gradient/forwarding epoch.
    beta:
        Weight of the shortest-path bias term.  ``0`` is pure backpressure;
        large values degenerate to shortest-path forwarding.
    max_hops:
        Hard cap on hops per unit; exceeding it refunds the unit (its value
        returns to the payment for reinjection at the next poll).
    stuck_after:
        How long a unit may sit in one queue before it becomes eligible to
        backtrack (reverse pressure takes time to build).
    settle_delay:
        Destination-to-everyone settlement latency (defaults to the
        configured confirmation delay).
    """

    def __init__(
        self,
        network: "PaymentNetwork",
        records,
        scheme: RoutingScheme,
        config: Optional[RuntimeConfig] = None,
        collector: Optional["MetricsCollector"] = None,
        service_interval: float = 0.1,
        beta: float = 1.0,
        max_hops: int = 10,
        stuck_after: float = 1.0,
        settle_delay: Optional[float] = None,
    ):
        super().__init__(network, records, scheme, config, collector)
        if service_interval <= 0:
            raise ValueError(f"service_interval must be positive, got {service_interval}")
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        if max_hops <= 0:
            raise ValueError(f"max_hops must be positive, got {max_hops}")
        if stuck_after <= 0:
            raise ValueError(f"stuck_after must be positive, got {stuck_after}")
        self.service_interval = service_interval
        self.beta = beta
        self.max_hops = max_hops
        self.stuck_after = stuck_after
        self.settle_delay = (
            settle_delay if settle_delay is not None else self.config.confirmation_delay
        )
        #: node -> destination -> FIFO of parked units.
        self._queues: Dict[int, Dict[int, Deque[BackpressureUnit]]] = {}
        #: node -> destination -> queued value (the gradient signal).
        self._backlog: Dict[int, Dict[int, float]] = {}
        self._distance_cache: Dict[int, Dict[int, int]] = {}
        self._adjacency = {
            node: sorted(network.neighbors(node)) for node in network.nodes()
        }
        self._service_timer: Optional[RecurringTimer] = None
        self.units_injected = 0
        self.units_expired = 0
        self.total_hops = 0
        self.total_pops = 0

    # ------------------------------------------------------------------
    # Scheme-facing primitive
    # ------------------------------------------------------------------
    def inject(self, payment: Payment, amount: float) -> bool:
        """Park one unit of ``amount`` in the source's queue for routing.

        Returns ``False`` for sub-``min_unit_value`` amounts or unreachable
        destinations.  Injected value counts as in-flight: backpressure
        owns it until settlement or expiry.
        """
        amount = min(amount, payment.remaining, self.config.mtu)
        if amount < self.config.min_unit_value:
            return False
        if self._distance(payment.dest).get(payment.source) is None:
            return False
        unit = BackpressureUnit(payment, amount, self.now)
        payment.register_inflight(amount)
        self.units_injected += 1
        self._park(unit)
        return True

    def backlog(self, node: int, dest: int) -> float:
        """Queued value at ``node`` destined for ``dest``."""
        return self._backlog.get(node, {}).get(dest, 0.0)

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def _park(self, unit: BackpressureUnit) -> None:
        node_queues = self._queues.setdefault(unit.node, {})
        queue = node_queues.setdefault(unit.dest, deque())
        queue.append(unit)
        unit.parked_at = self.now
        backlog = self._backlog.setdefault(unit.node, {})
        backlog[unit.dest] = backlog.get(unit.dest, 0.0) + unit.amount
        self.collector.on_unit_queued(len(queue))

    def _unpark(self, unit: BackpressureUnit) -> None:
        self._queues[unit.node][unit.dest].remove(unit)
        backlog = self._backlog[unit.node]
        backlog[unit.dest] = max(0.0, backlog[unit.dest] - unit.amount)

    def _distance(self, dest: int) -> Dict[int, int]:
        if dest not in self._distance_cache:
            self._distance_cache[dest] = bfs_distances(self._adjacency, dest)
        return self._distance_cache[dest]

    # ------------------------------------------------------------------
    # The service epoch
    # ------------------------------------------------------------------
    def run(self):
        self._service_timer = RecurringTimer(
            self.sim, self.service_interval, self._service_epoch
        )
        try:
            return super().run()
        finally:
            if self._service_timer is not None:
                self._service_timer.stop()

    def _service_epoch(self) -> None:
        for u, v in list(self.network.edges()):
            self._service_direction(u, v)
            self._service_direction(v, u)

    def _service_direction(self, u: int, v: int) -> None:
        """Forward queued units across ``u→v`` down the steepest gradient."""
        node_queues = self._queues.get(u)
        if not node_queues:
            return
        while True:
            available = self.network.available(u, v)
            if available < self.config.min_unit_value:
                return
            candidates = [
                (self._weight(u, v, dest), dest)
                for dest, queue in node_queues.items()
                if queue
            ]
            candidates = [(w, d) for w, d in candidates if w > _EPS]
            candidates.sort(reverse=True)
            unit = None
            for _, dest in candidates:
                unit = self._eligible_unit(node_queues[dest], v, available)
                if unit is not None:
                    break
            if unit is None:
                # Every positive-gradient unit either already visited v or
                # exceeds the direction's spendable funds.
                return
            self._forward(unit, v)

    def _weight(self, u: int, v: int, dest: int) -> float:
        gradient = self.backlog(u, dest) - self.backlog(v, dest)
        distances = self._distance(dest)
        du = distances.get(u)
        dv = distances.get(v)
        if du is None or dv is None:
            return 0.0
        return gradient + self.beta * (du - dv)

    def _eligible_unit(
        self, queue: Deque[BackpressureUnit], v: int, available: float
    ) -> Optional[BackpressureUnit]:
        for unit in queue:
            if v not in unit.visited and unit.amount <= available + _EPS:
                return unit
            if (
                v == unit.backtrack_target
                and self.now - unit.parked_at >= self.stuck_after
            ):
                return unit  # stuck: pop backward (refunds, needs no funds)
        return None

    def _forward(self, unit: BackpressureUnit, v: int) -> None:
        self._unpark(unit)
        unit.steps += 1
        if v in unit.visited:
            self._pop_hop(unit, v)
        elif not self._push_hop(unit, v):
            self._park(unit)  # the lock raced away; retry next epoch
            return
        if unit.done:
            return  # reached the destination; settlement is scheduled
        if (
            len(unit.hops) >= self.max_hops
            or unit.steps >= 3 * self.max_hops
            or unit.payment.expired(self.now)
        ):
            self._expire_unit(unit)
        else:
            self._park(unit)

    def _push_hop(self, unit: BackpressureUnit, v: int) -> bool:
        u = unit.node
        channel = self.network.channel(u, v)
        try:
            htlc = channel.lock(u, unit.amount, now=self.now, lock=unit.lock)
        except InsufficientFundsError:  # pragma: no cover - availability checked
            return False
        unit.htlcs.append(htlc)
        unit.hops.append((u, v))
        unit.node = v
        unit.visited.add(v)
        self.total_hops += 1
        if v == unit.dest:
            unit.done = True
            self.sim.call_after(self.settle_delay, self._settle_unit, unit)
        return True

    def _pop_hop(self, unit: BackpressureUnit, v: int) -> None:
        """Backtrack: undo the last hop, refunding its HTLC."""
        if unit.backtrack_target != v:
            raise AssertionError(
                f"pop to {v} but the unit came from {unit.backtrack_target}"
            )
        a, b = unit.hops.pop()
        htlc = unit.htlcs.pop()
        self.network.channel(a, b).refund(htlc)
        unit.node = v
        self.total_pops += 1

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _settle_unit(self, unit: BackpressureUnit) -> None:
        payment = unit.payment
        withhold = payment.expired(self.now) and not payment.is_complete
        for htlc, (a, b) in zip(unit.htlcs, unit.hops):
            channel = self.network.channel(a, b)
            if withhold:
                channel.refund(htlc)
            else:
                channel.settle(htlc)
        record = TransactionUnit.create(
            payment=payment,
            amount=unit.amount,
            path=self._trail(unit),
            htlcs=unit.htlcs,
            lock=unit.lock,
            sent_at=unit.created_at,
        )
        if withhold:
            payment.register_cancelled(unit.amount)
            record.mark_cancelled()
            self.collector.on_unit_cancelled(record, self.now)
        else:
            was_complete = payment.is_complete
            payment.register_settled(unit.amount, self.now)
            record.mark_settled()
            self.collector.on_unit_settled(record, self.now)
            if payment.is_complete and not was_complete:
                self._pending.discard(payment.payment_id)
                self.collector.on_payment_completed(payment, self.now)
        if self.config.check_invariants:
            self.network.check_invariants()

    def _expire_unit(self, unit: BackpressureUnit) -> None:
        """TTL hit or payment dead: unwind every locked hop."""
        unit.done = True
        self.units_expired += 1
        for htlc, (a, b) in zip(unit.htlcs, unit.hops):
            self.network.channel(a, b).refund(htlc)
        unit.payment.register_cancelled(unit.amount)
        if self.config.check_invariants:
            self.network.check_invariants()

    @staticmethod
    def _trail(unit: BackpressureUnit) -> Tuple[int, ...]:
        if not unit.hops:
            return (unit.payment.source,)
        return tuple([unit.hops[0][0]] + [hop[1] for hop in unit.hops])

    def _finish(self) -> None:
        """Refund every still-parked unit, then fail incomplete payments."""
        for node_queues in self._queues.values():
            for queue in node_queues.values():
                while queue:
                    self._expire_unit(queue.popleft())
        self._backlog.clear()
        super()._finish()


class CelerScheme(RoutingScheme):
    """Backpressure (Celer cRoute-style) packet-switched routing.

    Parameters
    ----------
    unit_cap:
        Optional per-unit value cap below the runtime MTU (finer queue
        granularity at the cost of more units).
    service_interval, beta, max_hops:
        Forwarded to :class:`BackpressureRuntime`; the experiment runner
        instantiates that runtime via the ``runtime_class`` attribute and
        passes :meth:`runtime_kwargs` through.
    """

    name = "celer"
    atomic = False
    runtime_class = BackpressureRuntime  # engine="legacy" pairing
    transport = "backpressure"  # native tick-engine transport

    def __init__(
        self,
        unit_cap: Optional[float] = None,
        service_interval: float = 0.1,
        beta: float = 1.0,
        max_hops: int = 10,
        stuck_after: float = 1.0,
    ):
        if unit_cap is not None and unit_cap <= 0:
            raise ValueError(f"unit_cap must be positive, got {unit_cap}")
        self.unit_cap = unit_cap
        self.service_interval = service_interval
        self.beta = beta
        self.max_hops = max_hops
        self.stuck_after = stuck_after

    def runtime_kwargs(self) -> Dict[str, object]:
        """Extra constructor arguments for the paired runtime."""
        return {
            "service_interval": self.service_interval,
            "beta": self.beta,
            "max_hops": self.max_hops,
            "stuck_after": self.stuck_after,
        }

    def attempt(self, payment: Payment, runtime: Runtime) -> None:
        executor = getattr(runtime, "transport", runtime)
        if not hasattr(executor, "inject"):
            raise TypeError(
                "CelerScheme requires a backpressure transport "
                "(BackpressureRuntime or a session with "
                "transport='backpressure'); see repro.routing.backpressure"
            )
        injected_any = False
        while payment.remaining >= runtime.config.min_unit_value:
            chunk = payment.remaining
            if self.unit_cap is not None:
                chunk = min(chunk, self.unit_cap)
            if not runtime.inject(payment, chunk):
                break
            injected_any = True
        if not injected_any and payment.units_sent == 0:
            # Destination unreachable from the source: terminal.
            runtime.fail_payment(payment)
