"""Celer-style backpressure routing: per-destination queue gradients.

Celer's cRoute (the other contemporaneous "route payments like packets"
proposal, and a comparison point of the NSDI version of the paper) is a
*backpressure* algorithm: transaction units are not source-routed at all.
Every router keeps one queue per destination; periodically, each channel
direction forwards units of the destination with the largest *queue
gradient* — the backlog difference between the two endpoints — so units
drift down the congestion gradient until they reach their destination.
Backpressure is throughput-optimal in the fluid limit but pays for it with
queueing delay, which is exactly the trade-off the comparison probes.

Model
-----
* Arriving payments are chopped into MTU-bounded units and injected into
  the source router's queue for the payment's destination.
* A service epoch runs every ``service_interval`` seconds.  For each
  channel direction ``u→v`` it repeatedly picks the destination ``d``
  maximising ``backlog_u(d) − backlog_v(d) + beta·(dist(u,d) − dist(v,d))``
  and forwards the oldest eligible unit of ``d`` while the direction has
  spendable funds and the weight stays positive.  ``beta`` is the standard
  shortest-path bias that keeps pure backpressure from random-walking at
  low load.
* Each forwarded hop locks an HTLC; a unit that reaches its destination
  settles every hop after ``settle_delay`` (the end-to-end confirmation of
  §4.2), a unit that exceeds its step budget or outlives its payment
  refunds every hop.
* Units never *re-lock* a node: pressing forward is restricted to
  unvisited nodes, and a unit that has sat in one queue for
  ``stuck_after`` seconds **backtracks** — it pops its last hop and that
  hop's HTLC is refunded.  This mirrors how true backpressure drains
  misrouted backlog (reverse pressure builds up over time), while keeping
  every *settled* trail a simple path as the paper requires.

:class:`CelerScheme` injects payment value; the queues, gradients,
forwarding, settlement and refunds live in
:class:`repro.engine.transport.BackpressureTransport` (this module's
original float-time runtime was retired to the thin
:class:`BackpressureRuntime` shim once the native transport's parity was
pinned).  The service epoch's gradient weights compute through the
network :class:`~repro.engine.signals.ControlPlane` — one vectorised
expression per candidate batch rather than per-destination Python calls,
with the per-destination loop preserved behind
``ControlPlane.vectorized_signals = False`` as the parity baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.payments import Payment
from repro.core.runtime import Runtime, RuntimeConfig
from repro.network.htlc import HashLock, Htlc
from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collectors import MetricsCollector
    from repro.network.network import PaymentNetwork

__all__ = ["BackpressureUnit", "BackpressureRuntime", "CelerScheme"]



class BackpressureUnit:
    """One transaction unit drifting through the queue network."""

    __slots__ = (
        "payment",
        "amount",
        "dest",
        "node",
        "visited",
        "hops",
        "htlcs",
        "lock",
        "created_at",
        "parked_at",
        "steps",
        "done",
    )

    def __init__(self, payment: Payment, amount: float, now: float):
        self.payment = payment
        self.amount = amount
        self.dest = payment.dest
        self.node = payment.source
        self.visited: Set[int] = {payment.source}
        self.hops: List[Tuple[int, int]] = []
        self.htlcs: List[Htlc] = []
        self.lock = HashLock.generate(payment.payment_id, payment.units_sent)
        self.created_at = now
        self.parked_at = now
        self.steps = 0
        self.done = False

    @property
    def backtrack_target(self) -> Optional[int]:
        """The node a pop would return to, or ``None`` at the source."""
        return self.hops[-1][0] if self.hops else None


class BackpressureRuntime(Runtime):
    """Thin shim: gradient forwarding on the native session transport.

    .. deprecated::
        The queue-gradient machinery this class used to implement lives in
        :class:`repro.engine.transport.BackpressureTransport` and runs on
        the tick engine; the parity suite pinned the two implementations
        against each other for a release cycle before this body was
        retired.  The class remains as the ``engine="legacy"`` /
        ``runtime_class`` construction surface: it validates the same
        parameters, then delegates the entire run to a
        :class:`~repro.engine.session.SimulationSession` with a forced
        ``("backpressure", ...)`` transport and mirrors the transport's
        statistics and primitives (``inject``, ``backlog``,
        ``units_injected``, ``total_pops``, ...).

    Parameters on top of :class:`~repro.core.runtime.RuntimeConfig`:
    ``service_interval``, ``beta``, ``max_hops``, ``stuck_after``,
    ``settle_delay`` — see
    :class:`~repro.engine.transport.BackpressureTransport`.
    """

    def __init__(
        self,
        network: "PaymentNetwork",
        records,
        scheme: RoutingScheme,
        config: Optional[RuntimeConfig] = None,
        collector: Optional["MetricsCollector"] = None,
        **transport_kwargs,
    ):
        from repro.engine.session import SimulationSession

        super().__init__(network, records, scheme, config, collector)
        self._session = SimulationSession(
            network,
            records,
            scheme,
            self.config,
            collector=self.collector,
            transport_spec=("backpressure", transport_kwargs),
        )
        # Built eagerly: parameters validate at construction and the
        # direct-drive tests can inject units before run().
        self._transport = self._session._ensure_transport()
        # Alias the session's engine and payment registry so the inherited
        # Runtime surface (``now``, ``sim.events_processed``,
        # ``payments[id]``) reads the state the session actually mutates.
        self.sim = self._session.sim
        self.payments = self._session.payments

    # -- delegation -----------------------------------------------------
    def run(self):
        """Run the trace on the session engine; returns the metrics."""
        return self._session.run()

    def inject(self, payment: Payment, amount: float) -> bool:
        """Park one unit of ``amount`` in the source's queue for routing."""
        return self._transport.inject(payment, amount)

    def backlog(self, node: int, dest: int) -> float:
        """Queued value at ``node`` destined for ``dest``."""
        return self._transport.backlog(node, dest)

    def _pop_hop(self, unit: BackpressureUnit, v: int) -> None:
        """Backtrack: undo the unit's last hop (transport-delegated)."""
        self._transport._pop_hop(unit, v)

    # -- mirrored transport statistics ---------------------------------
    @property
    def units_injected(self) -> int:
        return self._transport.units_injected

    @property
    def units_expired(self) -> int:
        return self._transport.units_expired

    @property
    def total_hops(self) -> int:
        return self._transport.total_hops

    @property
    def total_pops(self) -> int:
        return self._transport.total_pops


class CelerScheme(RoutingScheme):
    """Backpressure (Celer cRoute-style) packet-switched routing.

    Parameters
    ----------
    unit_cap:
        Optional per-unit value cap below the runtime MTU (finer queue
        granularity at the cost of more units).
    service_interval, beta, max_hops:
        Forwarded to :class:`BackpressureRuntime`; the experiment runner
        instantiates that runtime via the ``runtime_class`` attribute and
        passes :meth:`runtime_kwargs` through.
    """

    name = "celer"
    atomic = False
    runtime_class = BackpressureRuntime  # engine="legacy" pairing
    transport = "backpressure"  # native tick-engine transport

    def __init__(
        self,
        unit_cap: Optional[float] = None,
        service_interval: float = 0.1,
        beta: float = 1.0,
        max_hops: int = 10,
        stuck_after: float = 1.0,
    ):
        if unit_cap is not None and unit_cap <= 0:
            raise ValueError(f"unit_cap must be positive, got {unit_cap}")
        self.unit_cap = unit_cap
        self.service_interval = service_interval
        self.beta = beta
        self.max_hops = max_hops
        self.stuck_after = stuck_after

    def runtime_kwargs(self) -> Dict[str, object]:
        """Extra constructor arguments for the paired runtime."""
        return {
            "service_interval": self.service_interval,
            "beta": self.beta,
            "max_hops": self.max_hops,
            "stuck_after": self.stuck_after,
        }

    def attempt(self, payment: Payment, runtime: Runtime) -> None:
        executor = getattr(runtime, "transport", runtime)
        if not hasattr(executor, "inject"):
            raise TypeError(
                "CelerScheme requires a backpressure transport "
                "(BackpressureRuntime or a session with "
                "transport='backpressure'); see repro.routing.backpressure"
            )
        injected_any = False
        while payment.remaining >= runtime.config.min_unit_value:
            chunk = payment.remaining
            if self.unit_cap is not None:
                chunk = min(chunk, self.unit_cap)
            if not runtime.inject(payment, chunk):
                break
            injected_any = True
        if not injected_any and payment.units_sent == 0:
            # Destination unreachable from the source: terminal.
            runtime.fail_payment(payment)
