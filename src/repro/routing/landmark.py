"""SilentWhispers-style landmark routing baseline.

SilentWhispers [18] routes every payment through a small set of well-known
*landmarks*: the sender routes to a landmark, the landmark routes to the
receiver, and the payment value is split into one share per landmark
(multi-path but atomic — if the shares cannot jointly cover the value, the
payment fails).

Faithful simplifications (documented in DESIGN.md):

* landmarks are the ``num_landmarks`` highest-degree nodes, the standard
  proxy for the "known, central" landmark set;
* the share split is proportional to each landmark path's probed capacity
  (as in the SpeedyMurmurs paper's evaluation of SilentWhispers), instead
  of cryptographic random shares — routing behaviour is identical, privacy
  machinery is out of scope;
* paths are concatenations shortest(s→l) ⧺ shortest(l→d) with any loops
  contracted, matching the landmark-tree construction on a static topology.

Discovery runs through the network's shared
:class:`~repro.engine.pathservice.PathService`: a
:class:`~repro.engine.pathservice.LandmarkProvider` assembles both legs
from memoised BFS trees (one per landmark plus one per distinct source)
instead of two fresh per-pair searches, with identical tie-breaks —
a BFS parent chain is the same whether or not the search stopped early.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.engine.pathservice import LandmarkProvider, contract_loops
from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["LandmarkScheme", "contract_loops"]

Path = Tuple[int, ...]
_EPS = 1e-9


class LandmarkScheme(RoutingScheme):
    """Landmark (SilentWhispers) routing: atomic, multi-share."""

    name = "silentwhispers"
    atomic = True

    def __init__(self, num_landmarks: int = 3):
        if num_landmarks <= 0:
            raise ValueError(f"num_landmarks must be positive, got {num_landmarks}")
        self.num_landmarks = num_landmarks
        self._landmarks: List[int] = []
        self._provider: Optional[LandmarkProvider] = None

    def prepare(self, runtime: "Runtime") -> None:
        provider = runtime.network.path_service.landmark_provider(
            self.num_landmarks
        )
        self._provider = provider
        self._landmarks = provider.landmarks

    def landmark_paths(self, source: int, dest: int) -> List[Path]:
        """One loop-free path per landmark (deduplicated, memoised)."""
        return self._provider.paths(source, dest)

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        paths = self.landmark_paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        # Batched probe: the landmark path set is fixed per pair, so
        # repeat attempts refresh only the paths whose channels changed.
        capacities = runtime.network.bottleneck_many(paths)
        total = sum(capacities)
        if total < payment.amount - 1e-6:
            runtime.fail_payment(payment)
            return
        # Allocate proportionally to capacity, then fix rounding greedily so
        # no share exceeds its path capacity and the shares sum to amount.
        allocations: List[Tuple[Path, float]] = []
        remaining = payment.amount
        order = sorted(range(len(paths)), key=lambda i: -capacities[i])
        for rank, i in enumerate(order):
            if remaining <= _EPS:
                break
            if rank == len(order) - 1:
                share = remaining
            else:
                share = min(payment.amount * capacities[i] / total, capacities[i])
            share = min(share, remaining, capacities[i])
            if share > _EPS:
                allocations.append((paths[i], share))
                remaining -= share
        # Any residue (rounding) goes to paths with leftover capacity.
        if remaining > _EPS:
            for i in order:
                used = sum(a for p, a in allocations if p == paths[i])
                slack = capacities[i] - used
                if slack > _EPS:
                    take = min(slack, remaining)
                    allocations.append((paths[i], take))
                    remaining -= take
                    if remaining <= _EPS:
                        break
        if remaining > 1e-6 or not runtime.send_atomic(payment, allocations):
            runtime.fail_payment(payment)
