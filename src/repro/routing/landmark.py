"""SilentWhispers-style landmark routing baseline.

SilentWhispers [18] routes every payment through a small set of well-known
*landmarks*: the sender routes to a landmark, the landmark routes to the
receiver, and the payment value is split into one share per landmark
(multi-path but atomic — if the shares cannot jointly cover the value, the
payment fails).

Faithful simplifications (documented in DESIGN.md):

* landmarks are the ``num_landmarks`` highest-degree nodes, the standard
  proxy for the "known, central" landmark set;
* the share split is proportional to each landmark path's probed capacity
  (as in the SpeedyMurmurs paper's evaluation of SilentWhispers), instead
  of cryptographic random shares — routing behaviour is identical, privacy
  machinery is out of scope;
* paths are concatenations shortest(s→l) ⧺ shortest(l→d) with any loops
  contracted, matching the landmark-tree construction on a static topology.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.fluid.paths import bfs_shortest_path
from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["LandmarkScheme", "contract_loops"]

Path = Tuple[int, ...]
_EPS = 1e-9


def contract_loops(path: Sequence[int]) -> Path:
    """Remove loops from a node sequence, keeping first occurrences.

    ``(s, a, b, a, d)`` contracts to ``(s, a, d)``: when a node re-appears,
    everything since its first visit is dropped.  The result is a simple
    path usable for HTLC locking.
    """
    out: List[int] = []
    seen: Dict[int, int] = {}
    for node in path:
        if node in seen:
            del out[seen[node] + 1 :]
            for removed in list(seen):
                if seen[removed] > seen[node]:
                    del seen[removed]
            continue
        seen[node] = len(out)
        out.append(node)
    return tuple(out)


class LandmarkScheme(RoutingScheme):
    """Landmark (SilentWhispers) routing: atomic, multi-share."""

    name = "silentwhispers"
    atomic = True

    def __init__(self, num_landmarks: int = 3):
        if num_landmarks <= 0:
            raise ValueError(f"num_landmarks must be positive, got {num_landmarks}")
        self.num_landmarks = num_landmarks
        self._landmarks: List[int] = []
        self._adjacency: Dict[int, List[int]] = {}
        self._path_cache: Dict[Tuple[int, int], List[Path]] = {}

    def prepare(self, runtime: "Runtime") -> None:
        network = runtime.network
        self._adjacency = {n: sorted(network.neighbors(n)) for n in network.nodes()}
        by_degree = sorted(
            self._adjacency, key=lambda n: (-len(self._adjacency[n]), n)
        )
        self._landmarks = by_degree[: self.num_landmarks]
        self._path_cache = {}

    def landmark_paths(self, source: int, dest: int) -> List[Path]:
        """One loop-free path per landmark (deduplicated)."""
        key = (source, dest)
        if key in self._path_cache:
            return self._path_cache[key]
        paths: List[Path] = []
        seen = set()
        for landmark in self._landmarks:
            first = bfs_shortest_path(self._adjacency, source, landmark)
            second = bfs_shortest_path(self._adjacency, landmark, dest)
            if first is None or second is None:
                continue
            merged = contract_loops(tuple(first) + tuple(second[1:]))
            if len(merged) < 2 or merged[0] != source or merged[-1] != dest:
                continue
            if merged not in seen:
                seen.add(merged)
                paths.append(merged)
        self._path_cache[key] = paths
        return paths

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        paths = self.landmark_paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        # Batched probe: the landmark path set is fixed per pair, so
        # repeat attempts refresh only the paths whose channels changed.
        capacities = runtime.network.bottleneck_many(paths)
        total = sum(capacities)
        if total < payment.amount - 1e-6:
            runtime.fail_payment(payment)
            return
        # Allocate proportionally to capacity, then fix rounding greedily so
        # no share exceeds its path capacity and the shares sum to amount.
        allocations: List[Tuple[Path, float]] = []
        remaining = payment.amount
        order = sorted(range(len(paths)), key=lambda i: -capacities[i])
        for rank, i in enumerate(order):
            if remaining <= _EPS:
                break
            if rank == len(order) - 1:
                share = remaining
            else:
                share = min(payment.amount * capacities[i] / total, capacities[i])
            share = min(share, remaining, capacities[i])
            if share > _EPS:
                allocations.append((paths[i], share))
                remaining -= share
        # Any residue (rounding) goes to paths with leftover capacity.
        if remaining > _EPS:
            for i in order:
                used = sum(a for p, a in allocations if p == paths[i])
                slack = capacities[i] - used
                if slack > _EPS:
                    take = min(slack, remaining)
                    allocations.append((paths[i], take))
                    remaining -= take
                    if remaining <= _EPS:
                        break
        if remaining > 1e-6 or not runtime.send_atomic(payment, allocations):
            runtime.fail_payment(payment)
