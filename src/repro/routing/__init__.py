"""Routing schemes: the paper's baselines plus shared infrastructure."""

from repro.routing.backpressure import BackpressureRuntime, CelerScheme
from repro.routing.base import PathCache, RoutingScheme
from repro.routing.embedding import PrefixEmbedding, SpeedyMurmursScheme, tree_distance
from repro.routing.landmark import LandmarkScheme, contract_loops
from repro.routing.lnd import LndScheme
from repro.routing.max_flow import MaxFlowScheme, decompose_flow, edmonds_karp
from repro.routing.registry import (
    SCHEME_FACTORIES,
    available_schemes,
    make_scheme,
    register_scheme,
)
from repro.routing.shortest_path import ShortestPathScheme

__all__ = [
    "BackpressureRuntime",
    "CelerScheme",
    "LandmarkScheme",
    "LndScheme",
    "MaxFlowScheme",
    "PathCache",
    "PrefixEmbedding",
    "RoutingScheme",
    "SCHEME_FACTORIES",
    "ShortestPathScheme",
    "SpeedyMurmursScheme",
    "available_schemes",
    "contract_loops",
    "decompose_flow",
    "edmonds_karp",
    "make_scheme",
    "register_scheme",
    "tree_distance",
]
