"""LND-style baseline: single cheapest path, atomic, retry with pruning.

The Lightning Network Daemon (the dominant deployed implementation, [22])
source-routes each payment over one path found by a fee-aware Dijkstra
search.  The sender knows channel *capacities* from gossip but not the
balance split, so a chosen hop can turn out to be unfunded; the error is
reported back, the sender prunes the failing channel from its local view
("mission control") and retries, up to a retry budget.  The NSDI version
of the paper uses exactly this scheme as its deployed-system baseline; the
provided text's Lightning discussion (§1-§3) describes the same behaviour.

Model
-----
* Path search runs *backwards* from the destination accumulating the fees
  each intermediary charges (matching
  :meth:`repro.network.network.PaymentNetwork.hop_amounts`), so the cost of
  a candidate path is its true total fee plus ``hop_penalty`` per hop —
  with fee-free channels the search degenerates to hop-count shortest
  path, as in the paper's fee-free evaluation.
* The sender sees its own outgoing balances exactly, and every other
  channel only up to total capacity — the information asymmetry that makes
  LND retry.
* Failures are remembered for ``forget_time`` simulated seconds and the
  failing direction is avoided while fresh (LND's mission control).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime
    from repro.network.network import PaymentNetwork

__all__ = ["LndScheme"]

Path = Tuple[int, ...]
_EPS = 1e-9


class LndScheme(RoutingScheme):
    """Lightning-daemon routing: cheapest single path with pruning retries.

    Parameters
    ----------
    max_attempts:
        Path attempts per payment before giving up (LND defaults to a
        handful; the paper's baseline uses single-digit retry budgets).
    hop_penalty:
        Cost added per hop so that, under equal fees, shorter paths win.
        Plays the role of LND's time-lock-delta risk factor.
    forget_time:
        How long (simulated seconds) a reported failure keeps its channel
        direction out of consideration for *subsequent* payments.  ``0``
        disables cross-payment memory.
    """

    name = "lnd"
    atomic = True
    #: The retry loop (Dijkstra probe, unfunded-hop scan, atomic send) is
    #: replayed batched by the session's DispatchPlan, which passes its
    #: residual-aware availability view through ``_find_path``'s ``avail``
    #: hook and defers mission-control updates to commit time.
    cohort_rule = "lnd"

    def __init__(
        self,
        max_attempts: int = 5,
        hop_penalty: float = 1.0,
        forget_time: float = 5.0,
    ):
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        if hop_penalty < 0:
            raise ValueError(f"hop_penalty must be non-negative, got {hop_penalty}")
        if forget_time < 0:
            raise ValueError(f"forget_time must be non-negative, got {forget_time}")
        self.max_attempts = max_attempts
        self.hop_penalty = hop_penalty
        self.forget_time = forget_time
        #: directed channel -> simulated time of the last reported failure.
        self._mission_control: Dict[Tuple[int, int], float] = {}
        self.attempts_used = 0
        self.failures_reported = 0

    # ------------------------------------------------------------------
    def prepare(self, runtime: "Runtime") -> None:
        """Snapshot the gossip view: adjacency with per-channel capacity.

        The sorted adjacency comes from the network's shared
        :class:`~repro.engine.pathservice.PathService` — one construction
        per network instead of one per scheme (read-only)."""
        self._adjacency: Dict[int, List[int]] = (
            runtime.network.path_service.sorted_adjacency()
        )

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        pruned: set = set()
        now = runtime.now
        for _ in range(self.max_attempts):
            self.attempts_used += 1
            path = self._find_path(
                runtime.network, payment.source, payment.dest, payment.amount,
                pruned, now,
            )
            if path is None:
                runtime.fail_payment(payment)
                return
            failing_hop = self._first_unfunded_hop(runtime.network, path, payment.amount)
            if failing_hop is None:
                if runtime.send_atomic(payment, [(path, payment.amount)]):
                    return
                # A fee-budget rejection cannot be fixed by pruning a hop.
                runtime.fail_payment(payment)
                return
            self.failures_reported += 1
            pruned.add(failing_hop)
            if self.forget_time > 0:
                self._mission_control[failing_hop] = now
        runtime.fail_payment(payment)

    # ------------------------------------------------------------------
    # Sender-side path finding
    # ------------------------------------------------------------------
    def _excluded(self, hop: Tuple[int, int], pruned: set, now: float) -> bool:
        if hop in pruned:
            return True
        if self.forget_time > 0:
            last_failure = self._mission_control.get(hop)
            if last_failure is not None and now - last_failure < self.forget_time:
                return True
        return False

    def _find_path(
        self,
        network: "PaymentNetwork",
        source: int,
        dest: int,
        amount: float,
        pruned: set,
        now: float,
        avail: Optional[Callable[[int, int], float]] = None,
    ) -> Optional[Path]:
        """Cheapest viable path in the sender's gossip view, or ``None``.

        Runs Dijkstra backwards from ``dest``.  The label of node ``v`` is
        ``(cost, lock)`` where ``lock`` is the value the hop *entering*
        ``v`` must carry (delivered amount plus every downstream fee) and
        ``cost = (lock - amount) + hop_penalty × hops`` — total fees plus
        the hop penalty.  Fees are affine and non-negative, so labels are
        monotone and plain Dijkstra is exact.

        ``avail`` overrides the sender's own-balance check (defaults to
        ``network.available``); the batched dispatch replay passes its
        residual-capacity view here so cohort staging stays byte-identical
        to the sequential loop.
        """
        if avail is None:
            avail = network.available
        if source == dest or source not in self._adjacency:
            return None
        # lock[v]: value carried by the hop entering v on the best suffix.
        best_cost: Dict[int, float] = {dest: 0.0}
        lock: Dict[int, float] = {dest: amount}
        successor: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, dest)]
        visited: set = set()
        while heap:
            cost, v = heapq.heappop(heap)
            if v in visited:
                continue
            visited.add(v)
            if v == source:
                break
            carried = lock[v]
            for u in self._adjacency.get(v, ()):
                if u in visited or self._excluded((u, v), pruned, now):
                    continue
                channel = network.channel(u, v)
                if channel.capacity + _EPS < carried:
                    continue  # gossip says this channel can never carry it
                if u == source:
                    if avail(u, v) + _EPS < carried:
                        continue  # the sender knows its own balances
                    candidate_lock = carried
                    fee_step = 0.0  # the sender pays no fee on its own hop
                else:
                    fee_step = channel.forwarding_fee(carried)
                    candidate_lock = carried + fee_step
                candidate_cost = cost + fee_step + self.hop_penalty
                if candidate_cost + _EPS < best_cost.get(u, float("inf")):
                    best_cost[u] = candidate_cost
                    lock[u] = candidate_lock
                    successor[u] = v
                    heapq.heappush(heap, (candidate_cost, u))
        if source not in successor:
            return None
        path = [source]
        while path[-1] != dest:
            path.append(successor[path[-1]])
        return tuple(path)

    @staticmethod
    def _first_unfunded_hop(
        network: "PaymentNetwork", path: Path, amount: float
    ) -> Optional[Tuple[int, int]]:
        """The hop whose balance cannot cover its lock, as the onion error
        would report it: the first one scanning from the source."""
        amounts = network.hop_amounts(path, amount)
        if network.use_path_table:
            # One gather over the compiled path instead of a per-hop
            # dictionary walk.
            index = network.path_table.unfunded_hop(path, amounts)
            if index is None:
                return None
            return (path[index], path[index + 1])
        for (a, b), hop_amount in zip(zip(path, path[1:]), amounts):
            if network.available(a, b) + _EPS < hop_amount:
                return (a, b)
        return None
