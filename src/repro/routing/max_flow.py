"""Max-flow routing baseline.

§3: *"For each transaction, max-flow uses a distributed implementation of
the Ford–Fulkerson method to find source-destination paths that support the
largest transaction volume.  If this volume exceeds the transaction value,
the transaction succeeds."*  The paper calls it the throughput gold standard
with prohibitive per-transaction cost (O(|V|·|E|²)).

This module implements, from scratch:

* Edmonds–Karp (BFS Ford–Fulkerson) over the *directional spendable
  balances* of the payment network, and
* path decomposition of the resulting flow,

and wraps them in an atomic scheme: if max-flow ≥ payment amount, the
payment is locked across the decomposed paths all-or-nothing; otherwise it
fails immediately.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime
    from repro.network.network import PaymentNetwork

__all__ = ["MaxFlowScheme", "edmonds_karp", "decompose_flow"]

Path = Tuple[int, ...]
_EPS = 1e-9


def edmonds_karp(
    capacity: Dict[Tuple[int, int], float],
    source: int,
    sink: int,
    limit: Optional[float] = None,
) -> Tuple[float, Dict[Tuple[int, int], float]]:
    """Maximum flow on a directed capacity map via Edmonds–Karp.

    Parameters
    ----------
    capacity:
        ``{(u, v): capacity}`` — directed; both orientations may appear
        (payment channels have independent spendable balances per
        direction).
    limit:
        Optional early-exit once the flow reaches this value (routing only
        needs "≥ payment amount", not the true maximum).

    Returns
    -------
    (value, flow):
        Total flow value and the *net* per-edge flow map (only positive
        entries).
    """
    adjacency: Dict[int, List[int]] = {}
    residual: Dict[Tuple[int, int], float] = {}
    for (u, v), cap in capacity.items():
        if cap <= _EPS:
            continue
        residual[(u, v)] = residual.get((u, v), 0.0) + cap
        residual.setdefault((v, u), 0.0)
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    for neighbours in adjacency.values():
        neighbours.sort()

    value = 0.0
    while limit is None or value < limit - _EPS:
        # BFS for the shortest augmenting path in the residual graph.
        parent: Dict[int, int] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            node = queue.popleft()
            for neighbour in adjacency.get(node, ()):
                if neighbour in parent or residual.get((node, neighbour), 0.0) <= _EPS:
                    continue
                parent[neighbour] = node
                queue.append(neighbour)
        if sink not in parent:
            break
        # Reconstruct and augment.
        path = [sink]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        bottleneck = min(
            residual[(a, b)] for a, b in zip(path, path[1:])
        )
        if limit is not None:
            bottleneck = min(bottleneck, limit - value)
        for a, b in zip(path, path[1:]):
            residual[(a, b)] -= bottleneck
            residual[(b, a)] += bottleneck
        value += bottleneck

    flow: Dict[Tuple[int, int], float] = {}
    for (u, v), cap in capacity.items():
        if cap <= _EPS:
            continue
        used = cap - residual.get((u, v), cap)
        if used > _EPS:
            flow[(u, v)] = flow.get((u, v), 0.0) + used
    # Convert to net flow so opposite directions cancel.
    net: Dict[Tuple[int, int], float] = {}
    for (u, v), f in flow.items():
        reverse = flow.get((v, u), 0.0)
        if f > reverse + _EPS:
            net[(u, v)] = f - reverse
    return value, net


def decompose_flow(
    flow: Dict[Tuple[int, int], float],
    source: int,
    sink: int,
) -> List[Tuple[Path, float]]:
    """Decompose an s-t flow into simple paths with values.

    Repeatedly extracts the BFS shortest path in the flow's support graph
    and subtracts its bottleneck.  Residual flow cycles (which carry no s-t
    value) are discarded.
    """
    remaining = {e: v for e, v in flow.items() if v > _EPS}
    paths: List[Tuple[Path, float]] = []
    while True:
        adjacency: Dict[int, List[int]] = {}
        for (u, v) in remaining:
            adjacency.setdefault(u, []).append(v)
        for neighbours in adjacency.values():
            neighbours.sort()
        parent: Dict[int, int] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            node = queue.popleft()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in parent:
                    parent[neighbour] = node
                    queue.append(neighbour)
        if sink not in parent:
            break
        path = [sink]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        edges = list(zip(path, path[1:]))
        bottleneck = min(remaining[e] for e in edges)
        for e in edges:
            remaining[e] -= bottleneck
            if remaining[e] <= _EPS:
                del remaining[e]
        paths.append((tuple(path), bottleneck))
    return paths


class MaxFlowScheme(RoutingScheme):
    """Per-transaction max-flow routing (atomic)."""

    name = "max-flow"
    atomic = True

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        capacity = self._directional_balances(runtime.network)
        value, flow = edmonds_karp(
            capacity, payment.source, payment.dest, limit=payment.amount
        )
        if value < payment.amount - 1e-6:
            runtime.fail_payment(payment)
            return
        allocations: List[Tuple[Path, float]] = []
        needed = payment.amount
        for path, path_value in decompose_flow(flow, payment.source, payment.dest):
            if needed <= _EPS:
                break
            take = min(path_value, needed)
            allocations.append((path, take))
            needed -= take
        if needed > 1e-6 or not runtime.send_atomic(payment, allocations):
            runtime.fail_payment(payment)

    @staticmethod
    def _directional_balances(network: "PaymentNetwork") -> Dict[Tuple[int, int], float]:
        capacity: Dict[Tuple[int, int], float] = {}
        for channel in network.channels():
            a, b = channel.endpoints
            capacity[(a, b)] = channel.balance(a)
            capacity[(b, a)] = channel.balance(b)
        return capacity
