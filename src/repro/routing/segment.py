"""Segment-aware source routing: route locally, stitch at cut channels.

The first client of the spatial-sharding layer
(:mod:`repro.engine.sharding`) and a scheme in its own right, following
the locality lineage of SpeedyMurmurs and the segment-routing idea of the
segflow line of work: partition the graph into contiguous segments
(:func:`repro.topology.partition.partition_network`), serve intra-segment
payments from path sets that never leave the segment, and carry
cross-segment payments over an explicitly chosen *cut channel*, stitching
a local leg to the cut endpoint, the cut channel itself, and a local leg
onward.

Routing is deterministic end to end: the partition is a pure function of
the adjacency and the partition seed, legs are breadth-first shortest
paths inside a segment (sorted-neighbour tie-breaks), and cut channels
are tried in sorted order.  Payments whose stitched route cannot be built
(node conflicts, segment-disconnected endpoints) fall back to the global
k-edge-disjoint candidate set, so the scheme degrades to shortest-path
behaviour rather than failing traffic a plain scheme would deliver.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.routing.base import RoutingScheme
from repro.topology.partition import GraphPartition, partition_adjacency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["SegmentRoutingScheme"]

Path = Tuple[int, ...]


class SegmentRoutingScheme(RoutingScheme):
    """Greedy non-atomic sends over segment-local or stitched paths.

    Parameters
    ----------
    num_segments:
        Segments to partition the channel graph into.
    num_paths:
        Global candidate paths per pair (the usual k-edge-disjoint
        budget); used for intra-segment selection and as the stitching
        fallback.
    partition_seed:
        Seed for the deterministic region growth.
    partition:
        A prebuilt :class:`~repro.topology.partition.GraphPartition` to
        route against (the sharding driver passes its own so scheme and
        driver agree); built from the network at ``prepare`` otherwise.
    """

    name = "segment-routing"
    atomic = False

    def __init__(
        self,
        num_segments: int = 4,
        num_paths: int = 4,
        partition_seed: int = 0,
        partition: Optional[GraphPartition] = None,
    ):
        if num_segments <= 0:
            raise ValueError(
                f"num_segments must be positive, got {num_segments}"
            )
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        self.num_segments = num_segments
        self.num_paths = num_paths
        self.partition_seed = partition_seed
        self.partition: Optional[GraphPartition] = partition
        self._adjacency: Dict[int, List[int]] = {}
        self._routes: Dict[Tuple[int, int], Optional[Path]] = {}
        self._legs: Dict[Tuple[int, int, int], Optional[Path]] = {}

    def prepare(self, runtime: "Runtime") -> None:
        """Bind the path service view and build (or adopt) the partition."""
        super().prepare(runtime)
        service = runtime.network.path_service
        self._adjacency = service.sorted_adjacency()
        if self.partition is None:
            self.partition = partition_adjacency(
                self._adjacency, self.num_segments, seed=self.partition_seed
            )
        self._routes = {}
        self._legs = {}

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        path = self._route(payment.source, payment.dest)
        if path is None:
            runtime.fail_payment(payment)
            return
        runtime.send_on_path(payment, path)

    # ------------------------------------------------------------------
    # Route construction (memoised per pair)
    # ------------------------------------------------------------------
    def _route(self, source: int, dest: int) -> Optional[Path]:
        key = (source, dest)
        cached = self._routes.get(key, self)
        if cached is not self:
            return cached  # type: ignore[return-value]
        partition = self.partition
        assert partition is not None, "prepare() must run before attempt()"
        candidates = self.path_cache.paths(source, dest)
        route: Optional[Path] = None
        if partition.segment_of(source) == partition.segment_of(dest):
            for path in candidates:
                if partition.is_internal(path):
                    route = tuple(path)
                    break
        if route is None:
            route = self._stitch(source, dest)
        if route is None and candidates:
            route = tuple(candidates[0])  # global fallback
        self._routes[key] = route
        return route

    def _stitch(self, source: int, dest: int) -> Optional[Path]:
        """A cross-segment path: local legs joined at cut channels."""
        partition = self.partition
        assert partition is not None
        seg_path = self._segment_route(
            partition.segment_of(source), partition.segment_of(dest)
        )
        if seg_path is None:
            return None
        route: List[int] = [source]
        seen = {source}
        current = source
        for seg_a, seg_b in zip(seg_path, seg_path[1:]):
            hop = self._cross(current, seg_a, seg_b, seen, route)
            if hop is None:
                return None
            current = hop
        tail = self._leg(current, dest, partition.segment_of(dest))
        if tail is None or any(node in seen for node in tail[1:]):
            return None
        route.extend(tail[1:])
        return tuple(route)

    def _cross(
        self,
        current: int,
        seg_a: int,
        seg_b: int,
        seen: set,
        route: List[int],
    ) -> Optional[int]:
        """Extend ``route`` from ``current`` over one cut channel into
        ``seg_b``; returns the landing node (or ``None``: no usable cut).

        Cut channels between the two segments are tried in sorted edge
        order; a candidate is usable when the local leg to its near
        endpoint exists inside ``seg_a`` and introduces no node already
        on the route (paths must be trails).
        """
        partition = self.partition
        assert partition is not None
        for u, v in partition.cut_edges_between(seg_a, seg_b):
            near, far = (u, v) if partition.segment_of(u) == seg_a else (v, u)
            if far in seen:
                continue
            leg = self._leg(current, near, seg_a)
            if leg is None:
                continue
            if any(node in seen for node in leg[1:]):
                continue
            route.extend(leg[1:])
            route.append(far)
            seen.update(leg[1:])
            seen.add(far)
            return far
        return None

    def _segment_route(self, start: int, goal: int) -> Optional[Tuple[int, ...]]:
        """Shortest segment-level route over the cut-channel graph."""
        if start == goal:
            return (start,)
        partition = self.partition
        assert partition is not None
        neighbours: Dict[int, List[int]] = {}
        for u, v in partition.cut_edges:
            a, b = partition.segment_of(u), partition.segment_of(v)
            neighbours.setdefault(a, []).append(b)
            neighbours.setdefault(b, []).append(a)
        parents: Dict[int, int] = {start: start}
        frontier = deque([start])
        while frontier:
            seg = frontier.popleft()
            for nxt in sorted(neighbours.get(seg, ())):
                if nxt not in parents:
                    parents[nxt] = seg
                    if nxt == goal:
                        chain = [goal]
                        while chain[-1] != start:
                            chain.append(parents[chain[-1]])
                        return tuple(reversed(chain))
                    frontier.append(nxt)
        return None

    def _leg(self, a: int, b: int, segment: int) -> Optional[Path]:
        """BFS shortest path from ``a`` to ``b`` staying inside ``segment``.

        Sorted-adjacency tie-breaks make the leg deterministic; memoised
        per (a, b, segment).
        """
        key = (a, b, segment)
        cached = self._legs.get(key, self)
        if cached is not self:
            return cached  # type: ignore[return-value]
        partition = self.partition
        assert partition is not None
        result: Optional[Path] = None
        if a == b:
            result = (a,)
        else:
            parents: Dict[int, int] = {a: a}
            frontier = deque([a])
            while frontier and result is None:
                node = frontier.popleft()
                for neighbour in self._adjacency[node]:
                    if neighbour in parents:
                        continue
                    if partition.segment_of(neighbour) != segment:
                        continue
                    parents[neighbour] = node
                    if neighbour == b:
                        chain = [b]
                        while chain[-1] != a:
                            chain.append(parents[chain[-1]])
                        result = tuple(reversed(chain))
                        break
                    frontier.append(neighbour)
        self._legs[key] = result
        return result
