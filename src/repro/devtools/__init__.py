"""Developer tooling that ships with the repo but not with a simulation.

Nothing under :mod:`repro.devtools` is imported by the engine, the routing
schemes or the experiment layer — these are build/CI utilities (currently
the :mod:`repro.devtools.lint` invariant linter) that operate *on* the
source tree rather than inside a run.
"""
