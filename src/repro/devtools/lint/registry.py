"""Rule registry for :mod:`repro.devtools.lint`.

A rule is a class with an ``id`` (``RL###``), a one-line ``summary`` and
a ``check(index)`` generator yielding :class:`~repro.devtools.lint.report.Finding`
records.  Registration happens at import time via the :func:`rule`
decorator; :func:`all_rules` returns one instance per registered rule in
id order, so the runner, ``--select`` filtering and ``--list-rules`` all
read from the same table.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Sequence, Type

from repro.devtools.lint.index import LintIndex
from repro.devtools.lint.report import Finding, LintReport

__all__ = ["LintRule", "rule", "all_rules", "get_rule", "rule_ids"]

_RULE_ID_RE = re.compile(r"^RL\d{3}$")


class LintRule(Protocol):
    """Structural interface every registered rule satisfies."""

    id: str
    summary: str

    def check(self, index: LintIndex) -> Iterator[Finding]:
        """Yield one finding per violation over the shared index."""
        ...  # pragma: no cover - protocol stub


_REGISTRY: Dict[str, Type] = {}


def rule(cls: Type) -> Type:
    """Class decorator registering a lint rule under its ``id``."""
    rule_id = getattr(cls, "id", None)
    if not isinstance(rule_id, str) or not _RULE_ID_RE.match(rule_id):
        raise ValueError(
            f"lint rule {cls.__name__} must define an id matching RL###, "
            f"got {rule_id!r}"
        )
    if rule_id in _REGISTRY:
        raise ValueError(
            f"duplicate lint rule id {rule_id}: {cls.__name__} collides "
            f"with {_REGISTRY[rule_id].__name__}"
        )
    if not isinstance(getattr(cls, "summary", None), str):
        raise ValueError(f"lint rule {cls.__name__} must define a summary string")
    _REGISTRY[rule_id] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the built-in rule modules exactly once."""
    from repro.devtools.lint import rules  # noqa: F401  (import-time registration)


def rule_ids() -> List[str]:
    """Every registered rule id, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> LintRule:
    """Instantiate one registered rule by id (raises ``KeyError``)."""
    _ensure_loaded()
    instance: LintRule = _REGISTRY[rule_id]()
    return instance


def all_rules(select: Optional[Sequence[str]] = None) -> List[LintRule]:
    """One instance per registered rule, id-sorted.

    ``select`` restricts to the given ids; unknown ids raise ``KeyError``
    so a typo in ``--select`` cannot silently lint nothing.
    """
    _ensure_loaded()
    if select is None:
        chosen = sorted(_REGISTRY)
    else:
        chosen = []
        for rule_id in select:
            if rule_id not in _REGISTRY:
                raise KeyError(
                    f"unknown lint rule {rule_id!r}; available: {sorted(_REGISTRY)}"
                )
            chosen.append(rule_id)
        chosen = sorted(set(chosen))
    return [_REGISTRY[rule_id]() for rule_id in chosen]


def run_rules(
    index: LintIndex,
    select: Optional[Sequence[str]] = None,
    on_rule: Optional[Callable[[str], None]] = None,
) -> "LintReport":
    """Run the (selected) rules over ``index``; see :mod:`.runner`."""
    from repro.devtools.lint.runner import run_over_index

    return run_over_index(index, select=select, on_rule=on_rule)
