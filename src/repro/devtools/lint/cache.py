"""mtime+size-keyed on-disk cache for :class:`LintIndex` parse results.

Parsing + tokenising the full ``src/ + tests/`` tree dominates a lint
run's cost and almost never changes between runs — editors touch a file
or two at a time.  This cache pickles each file's finished
:class:`~repro.devtools.lint.index.ModuleInfo` keyed by the file's
``(st_mtime_ns, st_size)`` stat signature, so a warm run re-parses only
files whose stat changed and a full-tree invocation stays well under
half a second.

Robustness over cleverness:

* the cache file carries a schema version and the interpreter's
  ``(major, minor)`` — a mismatch on either discards the whole file
  (AST pickles are not stable across Python versions);
* any load error (truncated file, unpicklable payload, wrong type)
  silently falls back to a cold parse — the cache can never make a lint
  run fail;
* saves are atomic (pid-suffixed tmp + ``os.replace``) and best-effort:
  a read-only checkout just runs cold every time;
* ``--no-cache`` on the CLI (or ``cache=None`` in the API) bypasses the
  whole mechanism.
"""

from __future__ import annotations

import os
import pickle
import sys
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.devtools.lint.index import ModuleInfo

__all__ = ["ParseCache", "CACHE_FILENAME"]

#: Cache file name, created under the lint run's base directory.
CACHE_FILENAME = ".repro-lint-cache.pickle"

#: Bump on any change to ModuleInfo's shape or the parse pipeline.
_SCHEMA = 1

_StatKey = Tuple[int, int]  # (st_mtime_ns, st_size)


class ParseCache:
    """Load-once / save-once pickle cache of parsed ``ModuleInfo``s."""

    def __init__(self, cache_path: Path):
        self.cache_path = cache_path
        self._entries: Dict[str, Tuple[_StatKey, ModuleInfo]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    @classmethod
    def for_base(cls, base: Optional[str] = None) -> "ParseCache":
        """The cache co-located with the lint run's base directory."""
        base_path = Path(base) if base is not None else Path.cwd()
        return cls(base_path / CACHE_FILENAME)

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    @staticmethod
    def _stat_key(stat: os.stat_result) -> _StatKey:
        return (stat.st_mtime_ns, stat.st_size)

    def get(
        self, resolved: Path, stat: os.stat_result
    ) -> Optional[ModuleInfo]:
        """The cached ``ModuleInfo`` if the stat signature still matches."""
        entry = self._entries.get(str(resolved))
        if entry is not None and entry[0] == self._stat_key(stat):
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def put(
        self, resolved: Path, stat: os.stat_result, module: ModuleInfo
    ) -> None:
        """Record a freshly parsed module under its stat signature."""
        self._entries[str(resolved)] = (self._stat_key(stat), module)
        self._dirty = True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.cache_path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                isinstance(payload, dict)
                and payload.get("schema") == _SCHEMA
                and payload.get("python") == sys.version_info[:2]
                and isinstance(payload.get("entries"), dict)
            ):
                self._entries = payload["entries"]
        except Exception:
            # Missing, truncated, foreign-version or corrupt cache files
            # all mean the same thing: run cold and rebuild.
            self._entries = {}

    def save(self) -> None:
        """Atomically persist the cache (best-effort; never raises)."""
        if not self._dirty:
            return
        payload = {
            "schema": _SCHEMA,
            "python": sys.version_info[:2],
            "entries": self._entries,
        }
        tmp = f"{self.cache_path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.cache_path)
            self._dirty = False
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParseCache(path={str(self.cache_path)!r}, "
            f"entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
