"""Per-function effect summaries for the shard-safety rules.

For every function in the index's source modules, one pass computes the
*effects* the interprocedural rules care about:

``global-write``
    Mutation of process-global state: subscript/augmented assignment or a
    mutating method call on a module-level mutable binding (``_CACHE[k] =
    v``, ``_SEEN.add(x)``), on a class-level mutable attribute reached via
    ``self.``/``cls.``/``ClassName.`` (the ``PersistentCache._shared``
    pattern), or a rebinding through a ``global`` statement.  After
    ``fork()`` each process owns a private copy of these, so a forked
    shard lane mutating one silently diverges from its siblings.
``rng``
    Draws from the process-global RNGs or seedless generator
    construction — the same banned sets RL001 enforces, here applied
    transitively to fork-reachable code.
``disk-write``
    Filesystem mutation: ``open(..., "w"/"a"/"x")``, ``json.dump`` /
    ``pickle.dump``, ``os.replace``/``rename``/``makedirs``,
    ``.write_text``/``.write_bytes``/``.persist_to``, and ``.flush()`` on
    a cache/path-service receiver.  Concurrent forked writers corrupt
    shared artifacts.
``version-write``
    Assignment to a ``.version``/``.frozen_count`` attribute — the store
    scalars that deliberately do *not* replicate across forks (the stamp
    protocol is per-process; see ``ChannelStateStore.share``).

Store-array subscript writes are summarised separately
(:attr:`EffectSummary.store_writes`) with an index-provenance verdict for
RL008: a write indexed by plain variables (``balance[cids, sides]``) has
*provable* row provenance — the arrays trace back to a compiled path —
while slice/ellipsis indexing or a computed index expression
(``balance[:, 0]``, ``balance[np.arange(n)]``) touches rows no lane
classification vouches for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.lint.callgraph import (
    FunctionDefNode,
    FunctionKey,
    _own_body_walk,
)
from repro.devtools.lint.index import LintIndex, ModuleInfo, dotted_name
from repro.devtools.lint.rules.determinism import (
    _GLOBAL_RANDOM,
    _NUMPY_GLOBAL_RANDOM,
    _SEEDABLE_CONSTRUCTORS,
)
from repro.devtools.lint.rules.store_discipline import (
    STORE_ARRAYS,
    _SCATTER_CALLS,
)

__all__ = ["Effect", "StoreWrite", "EffectSummary", "summarize_effects"]

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "extend",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "insert",
}

#: Fully-resolved callables that mutate the filesystem.
_DISK_CALLS = {
    "json.dump",
    "pickle.dump",
    "os.replace",
    "os.rename",
    "os.makedirs",
    "os.unlink",
    "os.remove",
    "shutil.rmtree",
    "shutil.copy",
    "shutil.move",
}

#: Attribute calls that write artifacts regardless of receiver.
_DISK_METHODS = {"write_text", "write_bytes", "persist_to"}

#: ``.flush()`` receivers that denote an artifact cache, not an IO handle.
_FLUSH_RECEIVER_HINTS = ("cache", "path_service")

#: Value expressions that create a mutable container.
_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
    "collections.deque",
}


@dataclass(frozen=True)
class Effect:
    """One process-global side effect at one source location."""

    kind: str  # "global-write" | "rng" | "disk-write" | "version-write"
    detail: str
    line: int
    col: int


@dataclass(frozen=True)
class StoreWrite:
    """One direct store-array write (for RL008's provenance check)."""

    array: str
    line: int
    col: int
    #: False when the row index is a slice/ellipsis or a computed call.
    provable: bool


@dataclass
class EffectSummary:
    """Everything one function does that the shard rules care about."""

    key: FunctionKey
    effects: List[Effect] = field(default_factory=list)
    store_writes: List[StoreWrite] = field(default_factory=list)


def _is_mutable_value(node: Optional[ast.expr], module: ModuleInfo) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, (ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and module.resolve(name) in _MUTABLE_FACTORIES:
            return True
    return False


def _module_mutables(module: ModuleInfo) -> Tuple[Set[str], Dict[str, Set[str]]]:
    """Module-level mutable names + per-class mutable class attributes."""
    globals_: Set[str] = set()
    class_attrs: Dict[str, Set[str]] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            if _is_mutable_value(stmt.value, module):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        globals_.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and _is_mutable_value(
                stmt.value, module
            ):
                globals_.add(stmt.target.id)
        elif isinstance(stmt, ast.ClassDef):
            attrs: Set[str] = set()
            for sub in stmt.body:
                if isinstance(sub, ast.Assign) and _is_mutable_value(
                    sub.value, module
                ):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            attrs.add(target.id)
                elif (
                    isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Name)
                    and _is_mutable_value(sub.value, module)
                ):
                    attrs.add(sub.target.id)
            if attrs:
                class_attrs[stmt.name] = attrs
    return globals_, class_attrs


def _global_root(
    node: ast.expr,
    module_globals: Set[str],
    class_attrs: Dict[str, Set[str]],
    own_class: Optional[str],
) -> Optional[str]:
    """The process-global binding ``node`` reads from, if any.

    Matches ``NAME`` (module-level mutable), ``ClassName.ATTR`` and, for
    methods, ``self.ATTR``/``cls.ATTR`` where ``ATTR`` is a class-level
    mutable attribute.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if not rest:
        return head if head in module_globals else None
    attr = rest.partition(".")[0]
    if head in ("self", "cls"):
        if own_class is not None and attr in class_attrs.get(own_class, ()):
            return f"{own_class}.{attr}"
        return None
    if attr in class_attrs.get(head, ()):
        return f"{head}.{attr}"
    return None


def _open_mode_writes(node: ast.Call, resolved: str) -> bool:
    if resolved != "open":
        return False
    mode: Optional[str] = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        if isinstance(node.args[1].value, str):
            mode = node.args[1].value
    for kw in node.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                mode = kw.value.value
    if mode is None:
        return False
    return any(flag in mode for flag in ("w", "a", "x", "+"))


def _subscript_provable(sub: ast.Subscript) -> bool:
    """Whether a store-array subscript's rows have provable provenance."""
    return _index_provable(sub.slice)


def _index_provable(node: ast.expr) -> bool:
    if isinstance(node, ast.Slice):
        return False
    if isinstance(node, ast.Constant) and node.value is Ellipsis:
        return False
    if isinstance(node, ast.Call):
        return False  # computed index (np.arange(...), where(...), ...)
    if isinstance(node, ast.Tuple):
        return all(_index_provable(element) for element in node.elts)
    return True


def _store_write_target(target: ast.expr) -> Optional[Tuple[str, ast.Subscript]]:
    if isinstance(target, ast.Subscript):
        value = target.value
        if isinstance(value, ast.Attribute) and value.attr in STORE_ARRAYS:
            return value.attr, target
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            hit = _store_write_target(element)
            if hit is not None:
                return hit
    return None


def _summarize_function(
    key: FunctionKey,
    fn_node: FunctionDefNode,
    module: ModuleInfo,
    own_class: Optional[str],
    module_globals: Set[str],
    class_attrs: Dict[str, Set[str]],
) -> EffectSummary:
    summary = EffectSummary(key=key)
    declared_global: Set[str] = set()
    for node in _own_body_walk(fn_node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in _own_body_walk(fn_node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                _summarize_write(
                    summary,
                    target,
                    node,
                    module_globals,
                    class_attrs,
                    own_class,
                    declared_global,
                )
        elif isinstance(node, ast.Call):
            _summarize_call(
                summary, node, module, module_globals, class_attrs, own_class
            )
    return summary


def _summarize_write(
    summary: EffectSummary,
    target: ast.expr,
    stmt: ast.AST,
    module_globals: Set[str],
    class_attrs: Dict[str, Set[str]],
    own_class: Optional[str],
    declared_global: Set[str],
) -> None:
    line = getattr(stmt, "lineno", 1)
    col = getattr(stmt, "col_offset", 0)
    if isinstance(target, ast.Name) and target.id in declared_global:
        summary.effects.append(
            Effect(
                kind="global-write",
                detail=f"rebinds module global '{target.id}'",
                line=line,
                col=col,
            )
        )
        return
    if isinstance(target, ast.Attribute) and target.attr in (
        "version",
        "frozen_count",
    ):
        summary.effects.append(
            Effect(
                kind="version-write",
                detail=f"writes per-process store scalar '.{target.attr}'",
                line=line,
                col=col,
            )
        )
        return
    store_hit = _store_write_target(target)
    if store_hit is not None:
        array, sub = store_hit
        summary.store_writes.append(
            StoreWrite(
                array=array,
                line=sub.lineno,
                col=sub.col_offset,
                provable=_subscript_provable(sub),
            )
        )
        return
    if isinstance(target, ast.Subscript):
        root = _global_root(
            target.value, module_globals, class_attrs, own_class
        )
        if root is not None:
            summary.effects.append(
                Effect(
                    kind="global-write",
                    detail=f"writes into process-global mutable '{root}'",
                    line=line,
                    col=col,
                )
            )
        return
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _summarize_write(
                summary,
                element,
                stmt,
                module_globals,
                class_attrs,
                own_class,
                declared_global,
            )


def _summarize_call(
    summary: EffectSummary,
    node: ast.Call,
    module: ModuleInfo,
    module_globals: Set[str],
    class_attrs: Dict[str, Set[str]],
    own_class: Optional[str],
) -> None:
    line, col = node.lineno, node.col_offset
    resolved = module.resolved_call_name(node)
    if resolved is not None:
        if resolved in _GLOBAL_RANDOM or resolved in _NUMPY_GLOBAL_RANDOM:
            summary.effects.append(
                Effect(
                    kind="rng",
                    detail=f"draws from process-global RNG {resolved}()",
                    line=line,
                    col=col,
                )
            )
            return
        if (
            resolved in _SEEDABLE_CONSTRUCTORS
            and not node.args
            and not node.keywords
        ):
            summary.effects.append(
                Effect(
                    kind="rng",
                    detail=f"constructs seedless generator {resolved}()",
                    line=line,
                    col=col,
                )
            )
            return
        if resolved in _DISK_CALLS or _open_mode_writes(node, resolved):
            summary.effects.append(
                Effect(
                    kind="disk-write",
                    detail=f"filesystem write via {resolved}()",
                    line=line,
                    col=col,
                )
            )
            return
        if resolved in _SCATTER_CALLS and node.args:
            first = node.args[0]
            if isinstance(first, ast.Attribute) and first.attr in STORE_ARRAYS:
                provable = len(node.args) < 2 or _index_provable(node.args[1])
                summary.store_writes.append(
                    StoreWrite(
                        array=first.attr, line=line, col=col, provable=provable
                    )
                )
                return
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    if func.attr in _DISK_METHODS:
        summary.effects.append(
            Effect(
                kind="disk-write",
                detail=f"artifact write via .{func.attr}()",
                line=line,
                col=col,
            )
        )
        return
    if func.attr == "flush":
        receiver = dotted_name(func.value) or ""
        if any(hint in receiver for hint in _FLUSH_RECEIVER_HINTS):
            summary.effects.append(
                Effect(
                    kind="disk-write",
                    detail=f"artifact flush via {receiver}.flush()",
                    line=line,
                    col=col,
                )
            )
        return
    if func.attr in _MUTATING_METHODS:
        root = _global_root(func.value, module_globals, class_attrs, own_class)
        if root is not None:
            summary.effects.append(
                Effect(
                    kind="global-write",
                    detail=(
                        f"mutates process-global '{root}' via .{func.attr}()"
                    ),
                    line=line,
                    col=col,
                )
            )


def summarize_effects(index: LintIndex) -> Dict[FunctionKey, EffectSummary]:
    """One :class:`EffectSummary` per function in the source modules."""
    cached = getattr(index, "_shard_effect_summaries", None)
    if cached is not None:
        return cached
    from repro.devtools.lint.callgraph import shared_call_graph

    graph = shared_call_graph(index)
    summaries: Dict[FunctionKey, EffectSummary] = {}
    mutable_cache: Dict[str, Tuple[Set[str], Dict[str, Set[str]]]] = {}
    for key, fn in graph.functions.items():
        module = fn.module
        if module.path not in mutable_cache:
            mutable_cache[module.path] = _module_mutables(module)
        module_globals, class_attrs = mutable_cache[module.path]
        summaries[key] = _summarize_function(
            key, fn.node, module, fn.class_name, module_globals, class_attrs
        )
    setattr(index, "_shard_effect_summaries", summaries)
    return summaries
