"""Command-line front end for the invariant linter.

Two equivalent entry points::

    python -m repro.devtools.lint src tests
    spider-repro lint src tests

Exit codes: ``0`` clean, ``1`` unsuppressed findings (including files the
linter could not parse, reported as ``RL000``), ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devtools.lint.registry import all_rules
from repro.devtools.lint.report import render_github, render_json, render_text
from repro.devtools.lint.runner import run_lint

__all__ = ["build_parser", "main", "add_lint_arguments", "run_from_args"]

_DEFAULT_ROOTS = ["src", "tests"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the linter's arguments (shared with ``spider-repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format: text, json, or github (GitHub Actions "
            "::error annotations; default: text)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "parse every file cold instead of reusing the mtime+size-keyed "
            ".repro-lint-cache.pickle"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter: determinism, ordered iteration, "
            "store-mutation discipline, scalar/vector parity coverage and "
            "integer-tick discipline"
        ),
    )
    add_lint_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run for parsed arguments; returns the exit code."""
    if args.list_rules:
        for lint_rule in all_rules():
            print(f"{lint_rule.id}  {lint_rule.summary}")
        return 0
    roots = args.paths or _DEFAULT_ROOTS
    select: Optional[List[str]] = None
    if args.select:
        select = [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
    try:
        report = run_lint(roots, select=select, use_cache=not args.no_cache)
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    renderers = {"text": render_text, "json": render_json, "github": render_github}
    rendered = renderers[args.format](report)
    try:
        print(rendered)
    except BrokenPipeError:  # output piped into head/grep that exited early
        pass
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.devtools.lint`` entry point."""
    args = build_parser().parse_args(argv)
    return run_from_args(args)
