"""Bounded interprocedural call graph over a :class:`LintIndex`.

The shard-safety rules (RL006/RL008) need to reason about what is
*reachable* from a forked worker entry point, which a per-file AST walk
cannot see.  This module builds a deliberately conservative call graph:

* **Name calls** resolve to same-module top-level functions, or through
  the module's import aliases to top-level functions of other indexed
  modules (``from repro.engine.store import widen; widen()``).
* **self./cls. calls** resolve to methods of the enclosing class.
* **Attribute calls** (``lane.run_window()``) resolve by method name
  across the whole index — but only while the name is defined at most
  :data:`AMBIGUITY_BOUND` times.  Popular names (``run``, ``prepare``)
  stay unresolved, which keeps the reachable closure honest instead of
  exploding to "everything".
* **Reference edges** cover callbacks: a function object passed as a
  call argument (``engine.every(dt, self._poll)``, ``Process(target=f)``)
  links the enclosing function to the referenced one.

Unresolved calls are silently dropped — the graph under-approximates,
so rules built on it report real reachability or nothing, never noise
from phantom edges.  Fork roots (functions passed as ``target=`` to a
``*.Process(...)`` constructor) are collected during the same pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.devtools.lint.index import LintIndex, ModuleInfo, dotted_name

__all__ = [
    "FunctionKey",
    "FunctionNode",
    "ForkRoot",
    "CallGraph",
    "AMBIGUITY_BOUND",
]

#: ``(repo-relative module path, dotted qualname within the module)``.
FunctionKey = Tuple[str, str]

#: An attribute call resolves by bare method name only while the name has
#: at most this many definitions across the index.
AMBIGUITY_BOUND = 3

FunctionDefNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionNode:
    """One function or method definition in the indexed tree."""

    key: FunctionKey
    module: ModuleInfo
    node: FunctionDefNode
    #: Innermost enclosing class name, ``None`` for module-level functions.
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass(frozen=True)
class ForkRoot:
    """A function handed to ``Process(target=...)`` — a fork entry point."""

    target: FunctionKey
    #: Module containing the forking call site (not necessarily the target's).
    call_path: str
    line: int


class _FunctionCollector(ast.NodeVisitor):
    """First pass: every function definition with its qualname + class."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.found: List[FunctionNode] = []
        self._name_stack: List[str] = []
        self._class_stack: List[str] = []

    def _visit_def(self, node: FunctionDefNode) -> None:
        self._name_stack.append(node.name)
        qualname = ".".join(self._name_stack)
        class_name = self._class_stack[-1] if self._class_stack else None
        self.found.append(
            FunctionNode(
                key=(self.module.path, qualname),
                module=self.module,
                node=node,
                class_name=class_name,
            )
        )
        self.generic_visit(node)
        self._name_stack.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._name_stack.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._name_stack.pop()


def _module_path_for(dotted: str, known_paths: Set[str]) -> Optional[str]:
    """Map ``repro.engine.store`` to ``src/repro/engine/store.py`` if indexed."""
    candidate = "src/" + dotted.replace(".", "/") + ".py"
    if candidate in known_paths:
        return candidate
    return None


class CallGraph:
    """Call + callback-reference edges over the index's source modules."""

    def __init__(self) -> None:
        self.functions: Dict[FunctionKey, FunctionNode] = {}
        self.edges: Dict[FunctionKey, Set[FunctionKey]] = {}
        self.fork_roots: List[ForkRoot] = []
        #: bare method/function name -> every key defining it.
        self._by_name: Dict[str, List[FunctionKey]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index: LintIndex) -> "CallGraph":
        graph = cls()
        modules = list(index.src_modules())
        for module in modules:
            collector = _FunctionCollector(module)
            collector.visit(module.tree)
            for fn in collector.found:
                graph.functions[fn.key] = fn
                graph._by_name.setdefault(fn.name, []).append(fn.key)
        known_paths = {module.path for module in modules}
        for fn in graph.functions.values():
            graph._collect_edges(fn, known_paths)
        return graph

    def _collect_edges(self, fn: FunctionNode, known_paths: Set[str]) -> None:
        targets = self.edges.setdefault(fn.key, set())
        own_children = {
            child.name
            for child in ast.iter_child_nodes(fn.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # A nested function is conservatively treated as invoked by its
        # definer (closures are almost always called or registered there).
        for name in own_children:
            targets.add((fn.key[0], f"{fn.key[1]}.{name}"))
        for node in _own_body_walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_callee(fn, node.func, known_paths)
            if resolved:
                targets.update(resolved)
            self._collect_references(fn, node, targets, known_paths)

    def _collect_references(
        self,
        fn: FunctionNode,
        call: ast.Call,
        targets: Set[FunctionKey],
        known_paths: Set[str],
    ) -> None:
        """Callback registration: function references in call arguments."""
        callee = dotted_name(call.func)
        is_fork = callee is not None and callee.split(".")[-1] == "Process"
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Call):
                continue
            resolved = self._resolve_callee(fn, arg, known_paths)
            if not resolved:
                continue
            targets.update(resolved)
            if is_fork:
                for kw in call.keywords:
                    if kw.arg == "target" and kw.value is arg:
                        for key in resolved:
                            self.fork_roots.append(
                                ForkRoot(
                                    target=key,
                                    call_path=fn.module.path,
                                    line=call.lineno,
                                )
                            )

    def _resolve_callee(
        self, fn: FunctionNode, func: ast.expr, known_paths: Set[str]
    ) -> List[FunctionKey]:
        module = fn.module
        if isinstance(func, ast.Name):
            # Sibling nested function, then same-module top-level, then import.
            prefix = fn.key[1].rsplit(".", 1)[0] if "." in fn.key[1] else ""
            if prefix:
                sibling = (module.path, f"{prefix}.{func.id}")
                if sibling in self.functions:
                    return [sibling]
            local = (module.path, func.id)
            if local in self.functions:
                return [local]
            full = module.resolve(func.id)
            if "." in full:
                mod_dotted, _, name = full.rpartition(".")
                path = _module_path_for(mod_dotted, known_paths)
                if path is not None and (path, name) in self.functions:
                    return [(path, name)]
            return []
        dotted = dotted_name(func)
        if dotted is None:
            return []
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and fn.class_name and rest and "." not in rest:
            own = (module.path, f"{fn.class_name}.{rest}")
            if own in self.functions:
                return [own]
        full = module.resolve(dotted)
        if "." in full:
            mod_dotted, _, name = full.rpartition(".")
            path = _module_path_for(mod_dotted, known_paths)
            if path is not None and (path, name) in self.functions:
                return [(path, name)]
        # Bounded bare-name resolution for attribute access on unknown
        # receivers: only while the method name is rare across the index.
        method = dotted.rsplit(".", 1)[-1]
        candidates = self._by_name.get(method, [])
        if 0 < len(candidates) <= AMBIGUITY_BOUND:
            return list(candidates)
        return []

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(
        self, roots: Sequence[FunctionKey]
    ) -> Dict[FunctionKey, Optional[FunctionKey]]:
        """BFS closure: ``{reached key: parent key}`` (roots map to None)."""
        origin: Dict[FunctionKey, Optional[FunctionKey]] = {}
        frontier: List[FunctionKey] = []
        for root in roots:
            if root in self.functions and root not in origin:
                origin[root] = None
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for nxt in sorted(self.edges.get(current, ())):
                if nxt in origin or nxt not in self.functions:
                    continue
                origin[nxt] = current
                frontier.append(nxt)
        return origin

    def describe_chain(
        self, origin: Dict[FunctionKey, Optional[FunctionKey]], key: FunctionKey
    ) -> str:
        """``root -> ... -> key`` as dotted qualnames, for rule messages."""
        parts: List[str] = []
        cursor: Optional[FunctionKey] = key
        while cursor is not None:
            parts.append(cursor[1])
            cursor = origin.get(cursor)
        return " -> ".join(reversed(parts))


def _own_body_walk(fn: FunctionDefNode) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs/classes.

    Nested functions get their own :class:`FunctionNode` (and an implicit
    containment edge), so their calls must not be attributed to the outer
    scope twice.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_ANALYSIS_ATTR = "_shard_safety_analysis"


def shared_call_graph(index: LintIndex) -> CallGraph:
    """One graph per index instance (RL006 and RL008 share the pass)."""
    cached = getattr(index, _ANALYSIS_ATTR, None)
    if cached is None:
        cached = CallGraph.from_index(index)
        setattr(index, _ANALYSIS_ATTR, cached)
    return cached
