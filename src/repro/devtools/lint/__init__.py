"""repro-lint: an AST-based linter for the engine's correctness invariants.

Generic linters check style; this one checks the invariants the repo's
correctness story actually rests on — byte-identical replay, version-
stamped store mutation, scalar/vector parity coverage and integer-tick
scheduling.  See :mod:`repro.devtools.lint.rules` for the rule table and
:mod:`repro.devtools.lint.index` for the suppression syntax
(``# repro-lint: allow[RL003] one-line justification``).

Usage::

    python -m repro.devtools.lint src tests            # text output
    python -m repro.devtools.lint src --format=json    # CI / dashboards
    spider-repro lint                                  # same, via the CLI

Programmatic::

    from repro.devtools.lint import run_lint
    report = run_lint(["src", "tests"])
    assert report.exit_code == 0, report.findings
"""

from repro.devtools.lint.index import LintIndex, ModuleInfo
from repro.devtools.lint.registry import all_rules, rule, rule_ids
from repro.devtools.lint.report import Finding, LintReport, render_json, render_text
from repro.devtools.lint.runner import run_lint, run_over_index

__all__ = [
    "Finding",
    "LintIndex",
    "LintReport",
    "ModuleInfo",
    "all_rules",
    "render_json",
    "render_text",
    "rule",
    "rule_ids",
    "run_lint",
    "run_over_index",
]
