"""One-pass parsed-module index shared by every lint rule.

The linter's rules all operate on the same facts: the AST of every
Python file under the scanned roots, each file's repo-relative path, the
module's import-alias table, and the ``# repro-lint: allow[RULE]``
suppression comments.  :class:`LintIndex` computes all of that in a
single ``ast.parse`` pass (plus a ``tokenize`` pass over only the files
that textually contain a suppression marker), so a full ``src/ + tests/``
run stays well under a second and adding a rule costs nothing at parse
time.

Suppression semantics
---------------------
A comment ``# repro-lint: allow[RL003] justification...`` silences the
listed rule ids on the comment's own line *and* on the line directly
below it — so both trailing-comment and own-line styles work::

    store.queue_depth[cid, side] = depth  # repro-lint: allow[RL003] telemetry

    # repro-lint: allow[RL002] insertion order is the arrival order
    for queue in self._queues.values():

Several rules may be listed comma-separated: ``allow[RL001,RL005]``.
Suppressions are per-rule by design; there is no blanket opt-out.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.lint.cache import ParseCache

__all__ = ["ModuleInfo", "LintIndex", "ParseFailure", "dotted_name"]

#: Marker every suppression comment must contain.
_SUPPRESS_RE = re.compile(r"repro-lint:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def dotted_name(node: ast.expr) -> Optional[str]:
    """The dotted source text of a Name/Attribute chain, else ``None``.

    ``np.random.default_rng`` ->  ``"np.random.default_rng"``;
    anything containing a call, subscript or literal yields ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class ParseFailure:
    """A file the index could not parse (reported, exits the run red)."""

    path: str
    message: str


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed source file."""

    path: str  # repo-relative, forward slashes
    tree: ast.Module
    source: str
    #: Whether the file lives under a ``tests`` root.
    is_test: bool
    #: line number -> rule ids silenced on that line.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: local alias -> full dotted module/object name (``np`` -> ``numpy``,
    #: ``default_rng`` -> ``numpy.random.default_rng``).
    import_aliases: Dict[str, str] = field(default_factory=dict)

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of a dotted name through the imports."""
        head, sep, rest = dotted.partition(".")
        expanded = self.import_aliases.get(head)
        if expanded is None:
            return dotted
        return expanded + sep + rest if rest else expanded

    def resolved_call_name(self, node: ast.Call) -> Optional[str]:
        """The alias-expanded dotted name of a call's target, if static."""
        name = dotted_name(node.func)
        if name is None:
            return None
        return self.resolve(name)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is silenced at ``line`` (see module doc)."""
        if not self.suppressions:
            return False
        for probe in (line, line - 1):
            rules = self.suppressions.get(probe)
            if rules is not None and rule_id in rules:
                return True
        return False


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map every top-level-visible import alias to its full dotted name."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.partition(".")[0]
                full = name.name if name.asname else name.name.partition(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never hit the banned set
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Parse ``# repro-lint: allow[...]`` comments via tokenize.

    Tokenising (rather than regexing raw lines) means markers inside
    string literals can never create phantom suppressions.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = {
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            }
            line = token.start[0]
            suppressions.setdefault(line, set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - parse already succeeded
        pass
    return suppressions


class LintIndex:
    """The shared single-pass index every rule reads.

    Build it from filesystem roots (:meth:`from_paths`) for real runs or
    from in-memory sources (:meth:`from_sources`) for rule fixtures.
    """

    def __init__(
        self,
        modules: Sequence[ModuleInfo],
        failures: Sequence[ParseFailure] = (),
    ):
        self.modules: List[ModuleInfo] = list(modules)
        self.failures: List[ParseFailure] = list(failures)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        roots: Iterable[str],
        base: Optional[str] = None,
        cache: Optional["ParseCache"] = None,
    ) -> "LintIndex":
        """Index every ``*.py`` under ``roots`` (files or directories).

        Paths in findings are reported relative to ``base`` (default: the
        current working directory) whenever possible, absolute otherwise.
        When a :class:`~repro.devtools.lint.cache.ParseCache` is passed,
        files whose ``(mtime_ns, size)`` stat signature matches a cached
        entry skip the parse + tokenize pass entirely; the caller owns
        calling ``cache.save()`` afterwards.
        """
        base_path = Path(base) if base is not None else Path.cwd()
        modules: List[ModuleInfo] = []
        failures: List[ParseFailure] = []
        seen: Set[Path] = set()
        for root in roots:
            root_path = Path(root)
            if root_path.is_file():
                candidates = [root_path]
            elif root_path.is_dir():
                candidates = sorted(root_path.rglob("*.py"))
            else:
                failures.append(
                    ParseFailure(path=str(root), message="no such file or directory")
                )
                continue
            for file_path in candidates:
                resolved = file_path.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                try:
                    rel = str(resolved.relative_to(base_path.resolve()))
                except ValueError:
                    rel = str(file_path)
                rel = rel.replace("\\", "/")
                stat: Optional[os.stat_result] = None
                if cache is not None:
                    try:
                        stat = resolved.stat()
                    except OSError:
                        stat = None
                    if stat is not None:
                        cached = cache.get(resolved, stat)
                        if cached is not None:
                            if cached.path != rel:  # base moved; repoint
                                cached = replace(cached, path=rel)
                            modules.append(cached)
                            continue
                try:
                    source = file_path.read_text(encoding="utf-8")
                    tree = ast.parse(source, filename=rel)
                except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                    failures.append(ParseFailure(path=rel, message=str(exc)))
                    continue
                module = _build_module(rel, source, tree)
                if cache is not None and stat is not None:
                    cache.put(resolved, stat, module)
                modules.append(module)
        return cls(modules, failures)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "LintIndex":
        """Index in-memory ``{path: source}`` snippets (fixture support)."""
        modules: List[ModuleInfo] = []
        failures: List[ParseFailure] = []
        for path, source in sorted(sources.items()):
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                failures.append(ParseFailure(path=path, message=str(exc)))
                continue
            modules.append(_build_module(path, source, tree))
        return cls(modules, failures)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.modules)

    def src_modules(self) -> Iterator[ModuleInfo]:
        """Modules that are part of the shipped tree (not tests)."""
        for module in self.modules:
            if not module.is_test:
                yield module

    def test_modules(self) -> Iterator[ModuleInfo]:
        """Modules under a ``tests`` root."""
        for module in self.modules:
            if module.is_test:
                yield module

    def modules_matching(self, *prefixes: str) -> Iterator[ModuleInfo]:
        """Source modules whose repo-relative path starts with a prefix."""
        for module in self.src_modules():
            if module.path.startswith(prefixes):
                yield module


def _is_test_path(path: str) -> bool:
    parts = path.split("/")
    return "tests" in parts or parts[-1].startswith("test_")


def _build_module(path: str, source: str, tree: ast.Module) -> ModuleInfo:
    suppressions: Dict[int, Set[str]] = {}
    if "repro-lint" in source:  # cheap pre-check before tokenising
        suppressions = _collect_suppressions(source)
    return ModuleInfo(
        path=path,
        tree=tree,
        source=source,
        is_test=_is_test_path(path),
        suppressions=suppressions,
        import_aliases=_collect_import_aliases(tree),
    )


def parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """``child -> parent`` for one module tree (helper for scope rules)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def enclosing_functions(
    tree: ast.Module,
) -> List[Tuple[ast.AST, int, int]]:
    """Every function scope as ``(node, first_line, last_line)``."""
    scopes: List[Tuple[ast.AST, int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            scopes.append((node, node.lineno, end or node.lineno))
    return scopes
