"""Finding records and output rendering for :mod:`repro.devtools.lint`.

A :class:`Finding` is one rule violation pinned to a ``file:line:col``
location.  Output is deliberately boring and stable: the text format is
one ``path:line:col RULE message`` line per finding (sorted), the JSON
format is a versioned document with the same findings plus per-rule
counts, so CI diffs and dashboards can consume either without scraping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Finding", "LintReport", "render_text", "render_json", "render_github"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, col, rule_id)`` so sorted findings read in
    file order regardless of which rule produced them.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format_text(self) -> str:
        """The canonical one-line rendering (``path:line:col RULE msg``)."""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"


@dataclass
class LintReport:
    """The outcome of one linter run over one parsed-module index."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by ``# repro-lint: allow[RULE]`` comments.
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 when any unsuppressed finding."""
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        """``{rule_id: finding count}`` for the unsuppressed findings."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


def render_text(report: LintReport) -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines = [finding.format_text() for finding in sorted(report.findings)]
    total = len(report.findings)
    noun = "finding" if total == 1 else "findings"
    summary = (
        f"repro-lint: {total} {noun} "
        f"({len(report.suppressed)} suppressed) across "
        f"{report.files_scanned} files"
    )
    lines.append(summary)
    return "\n".join(lines)


def _escape_annotation_data(value: str) -> str:
    """Escape a workflow-command message (GitHub's own escaping rules)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_annotation_property(value: str) -> str:
    """Escape a workflow-command property value (adds ``:`` and ``,``)."""
    return _escape_annotation_data(value).replace(":", "%3A").replace(",", "%2C")


def render_github(report: LintReport) -> str:
    """GitHub Actions workflow commands: inline PR annotations.

    One ``::error file=...,line=...`` command per finding — the Actions
    runner turns these into annotations on the changed lines of the pull
    request — followed by the same human summary the text format prints
    (as a plain log line, not a command).
    """
    lines = []
    for finding in sorted(report.findings):
        location = (
            f"file={_escape_annotation_property(finding.path)},"
            f"line={finding.line},col={finding.col},"
            f"title={_escape_annotation_property(finding.rule_id)}"
        )
        lines.append(
            f"::error {location}::{_escape_annotation_data(finding.message)}"
        )
    total = len(report.findings)
    noun = "finding" if total == 1 else "findings"
    lines.append(
        f"repro-lint: {total} {noun} "
        f"({len(report.suppressed)} suppressed) across "
        f"{report.files_scanned} files"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable rendering (stable key order, versioned schema)."""
    document = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "rules_run": sorted(report.rules_run),
        "counts": {
            rule_id: count
            for rule_id, count in sorted(report.counts_by_rule().items())
        },
        "suppressed": len(report.suppressed),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in sorted(report.findings)
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
