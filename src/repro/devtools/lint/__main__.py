"""``python -m repro.devtools.lint`` — run the invariant linter."""

import sys

from repro.devtools.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
