"""RL004 — every ``vectorized_*`` / ``sharded_*`` fast path keeps a tested twin.

The engine's parity pattern (PR 3–6 for vectorisation, PR 9 for spatial
sharding) is: ship the fast path as the default, keep the baseline
implementation behind a class attribute (``vectorized_<thing> = True``,
``sharded_<thing> = True``), and pin byte-identical metrics across both
branches in the test suite.  The baseline twin is the *proof obligation*
— once no test flips the flag to ``False``, the parity baseline is dead
code and the next kernel change can drift unobserved.

The rule finds every class-body attribute matching either prefix in the
shipped tree and requires the test tree to exercise both branches:

* the **baseline** branch — some test assigns the attribute ``False``;
* the **fast** branch — some test assigns it ``True`` or reads it
  (the default-on path asserted or restored).

An assignment from a non-constant expression (``Cls.vectorized_x =
flag`` inside a parametrised helper) counts for both branches, matching
the suite's save/restore + parametrise idiom.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Tuple

from repro.devtools.lint.index import LintIndex
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["ParityPairRule"]

_PARITY_ATTR = re.compile(r"^(?:vectorized|sharded)_[a-z0-9_]+$")


class _TestUsage:
    """How the test tree touches one parity-flag attribute name."""

    __slots__ = ("assigned_true", "assigned_false", "assigned_dynamic", "loads")

    def __init__(self) -> None:
        self.assigned_true = False
        self.assigned_false = False
        self.assigned_dynamic = False
        self.loads = 0

    @property
    def covers_scalar(self) -> bool:
        return self.assigned_false or self.assigned_dynamic

    @property
    def covers_vectorized(self) -> bool:
        return self.assigned_true or self.assigned_dynamic or self.loads > 0


def _class_attributes(index: LintIndex) -> List[Tuple[str, str, int, str]]:
    """Every parity-flag class attribute: (path, class, line, name)."""
    found = []
    for module in index.src_modules():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) and _PARITY_ATTR.match(
                        target.id
                    ):
                        found.append((module.path, node.name, stmt.lineno, target.id))
    return found


def _test_usages(index: LintIndex) -> Dict[str, _TestUsage]:
    usages: Dict[str, _TestUsage] = {}

    def usage(name: str) -> _TestUsage:
        entry = usages.get(name)
        if entry is None:
            usages[name] = entry = _TestUsage()
        return entry

    for module in index.test_modules():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and _PARITY_ATTR.match(
                        target.attr
                    ):
                        entry = usage(target.attr)
                        value = node.value
                        if isinstance(value, ast.Constant) and value.value is True:
                            entry.assigned_true = True
                        elif isinstance(value, ast.Constant) and value.value is False:
                            entry.assigned_false = True
                        else:
                            entry.assigned_dynamic = True
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if _PARITY_ATTR.match(node.attr):
                    usage(node.attr).loads += 1
    return usages


@rule
class ParityPairRule:
    """RL004: parity flags need both branches exercised under tests/."""

    id = "RL004"
    summary = (
        "every vectorized_*/sharded_* class attribute needs tests exercising "
        "both the fast path and the parity baseline (assign False somewhere "
        "under tests/)"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        usages = _test_usages(index)
        for path, class_name, line, attr in _class_attributes(index):
            entry = usages.get(attr)
            missing: List[str] = []
            if entry is None or not entry.covers_scalar:
                missing.append(
                    "scalar baseline (no test assigns it False or a "
                    "parametrised value)"
                )
            if entry is None or not entry.covers_vectorized:
                missing.append(
                    "vectorised branch (no test assigns it True, restores or "
                    "reads it)"
                )
            if missing:
                yield Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule_id=self.id,
                    message=(
                        f"{class_name}.{attr} ships a fast path without "
                        f"pinned parity coverage under tests/: missing "
                        f"{'; '.join(missing)}"
                    ),
                )
