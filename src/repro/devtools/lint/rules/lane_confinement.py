"""RL008 — lane-confined writes: provable row provenance in shard code.

The whole sharded-parity argument is row-disjointness: a shard lane only
ever writes store rows its segment owns, because every row index it uses
is derived from its own payments' compiled candidate paths.  A write
indexed by plain variables (``balance[cids, sides] = ...``,
``np.add.at(store.inflight, (cids, sides), amounts)``) inherits that
provenance.  A slice, ellipsis or computed-index write
(``balance[:, 0] = 0``, ``stamp[np.arange(n)] = v``) touches rows *no
classification vouches for* — from a forked worker that is a silent
cross-lane race the parity tests only catch probabilistically.

The rule reuses the fork-reachability closure RL006 computes and the
per-function store-write summaries: every store-array write reachable
from a fork entry point whose index provenance is not provable is a
finding.  Code never reachable from a worker (setup, benchmarks, the
boundary-only paths) may scan rows freely.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.lint.callgraph import shared_call_graph
from repro.devtools.lint.effects import summarize_effects
from repro.devtools.lint.index import LintIndex
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["LaneConfinementRule"]


@rule
class LaneConfinementRule:
    """RL008: fork-reachable store writes need provable row indices."""

    id = "RL008"
    summary = (
        "store-array writes reachable from shard-lane code must index "
        "rows through variables derived from the lane's paths, not "
        "slices/ellipsis/computed scans"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        graph = shared_call_graph(index)
        if not graph.fork_roots:
            return
        summaries = summarize_effects(index)
        roots = sorted({root.target for root in graph.fork_roots})
        origin = graph.reachable_from(roots)
        for key in sorted(origin):
            summary = summaries.get(key)
            if summary is None:
                continue
            module = graph.functions[key].module
            chain = graph.describe_chain(origin, key)
            for write in summary.store_writes:
                if write.provable:
                    continue
                yield Finding(
                    path=module.path,
                    line=write.line,
                    col=write.col,
                    rule_id=self.id,
                    message=(
                        f"store array '.{write.array}' written with a "
                        "slice/ellipsis/computed index in code reachable "
                        f"from a forked shard worker (via {chain}); the "
                        "rows touched cannot be proven to belong to the "
                        "executing lane's segment — thread an index array "
                        "derived from the lane's compiled paths instead"
                    ),
                )
