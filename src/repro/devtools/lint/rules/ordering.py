"""RL002 — ordered iteration in event-scheduling / cohort-building code.

Modules that schedule events or assemble dispatch cohorts turn iteration
order into *event order*: walking a ``dict.values()`` view or a set while
scheduling decides which payment locks funds first, and float scatter-adds
make even "commutative" effects order-sensitive at the bit level.  CPython
dict order is insertion order (deterministic given a deterministic run),
but set iteration order depends on element hashes — for strings that means
``PYTHONHASHSEED`` — and both make the *implicit* ordering contract
invisible at the call site.

The rule flags direct iteration over ``.values()``/``.keys()`` calls, set
literals, and ``set(...)``/``frozenset(...)`` constructors inside modules
that touch the scheduling surface (``schedule*``/``every``/``add_many``/
``advance_many``/``attempt_cohort`` calls, or ``*cohort*`` function
definitions).  Iterating ``sorted(...)`` of any of these is always clean;
provably order-independent loops keep a per-line suppression with a
one-line proof sketch, which is exactly the documentation the next reader
needs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.index import LintIndex, ModuleInfo, dotted_name
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["OrderedIterationRule"]

#: Call names (last attribute segment) that mark a module as part of the
#: event-scheduling / cohort-building surface.
_SCHEDULING_CALLS = {
    "schedule",
    "schedule_at_tick",
    "schedule_after",
    "schedule_many",
    "every",
    "add_many",
    "advance_many",
    "attempt_cohort",
}

#: Unordered-iteration sources (method names on arbitrary objects).
_UNORDERED_METHODS = {"values", "keys"}

#: Constructor names whose iteration order is hash-dependent.
_UNORDERED_CONSTRUCTORS = {"set", "frozenset"}


def _last_segment(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _module_in_scope(module: ModuleInfo) -> bool:
    """Whether this module schedules events or builds cohorts."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            segment = _last_segment(node.func)
            if segment in _SCHEDULING_CALLS:
                return True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if "cohort" in node.name:
                return True
    return False


def _diagnose_iterable(node: ast.expr) -> Optional[str]:
    """A message when ``node`` (a loop's iterable) has fragile order."""
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _UNORDERED_METHODS
            and not node.args
            and not node.keywords
        ):
            owner = dotted_name(node.func.value) or "<expr>"
            return (
                f"iterating {owner}.{node.func.attr}() in an event-scheduling "
                "module bakes container order into event order; iterate "
                "sorted(...) or suppress with a one-line order-independence "
                "argument"
            )
        constructor = dotted_name(node.func)
        if constructor in _UNORDERED_CONSTRUCTORS:
            return (
                f"iterating a {constructor}(...) here is "
                "PYTHONHASHSEED-dependent for str keys; sort it or prove "
                "order independence in a suppression"
            )
    elif isinstance(node, ast.Set):
        return (
            "iterating a set literal here is hash-order-dependent; sort it "
            "or prove order independence in a suppression"
        )
    return None


@rule
class OrderedIterationRule:
    """RL002: scheduling/cohort modules must not iterate unordered views."""

    id = "RL002"
    summary = (
        "no bare dict.values()/.keys()/set iteration in modules that "
        "schedule events or build cohorts (sort or prove order-independent)"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        for module in index.src_modules():
            if not _module_in_scope(module):
                continue
            for node in ast.walk(module.tree):
                iterables = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iterables.extend(gen.iter for gen in node.generators)
                for iterable in iterables:
                    message = _diagnose_iterable(iterable)
                    if message is not None:
                        yield Finding(
                            path=module.path,
                            line=iterable.lineno,
                            col=iterable.col_offset,
                            rule_id=self.id,
                            message=message,
                        )
