"""RL001 — determinism: no wall-clock or unseeded randomness in the engine.

The evaluation's core claim (throughput/success-rate comparisons across
schemes, §6 of the paper) rests on byte-identical replay: the same seed
must produce the same metrics JSON on every run, machine and dispatch
mode.  One ``time.time()`` folded into a tick, one draw from the global
``random`` module or one ``np.random.default_rng()`` (seedless) inside
the simulation layers silently breaks that.

Scope: ``src/repro/engine``, ``src/repro/routing`` and ``src/repro/core``.
Wall-clock timing belongs in benchmarks and the CLI (``time.perf_counter``
around a run is fine *there*); randomness must flow from an explicitly
seeded generator (``np.random.default_rng(seed)``, ``random.Random(seed)``)
threaded through the experiment config.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.index import LintIndex
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["DeterminismRule"]

#: Module prefixes that must stay wall-clock- and global-RNG-free.
SIMULATION_PREFIXES = (
    "src/repro/engine/",
    "src/repro/routing/",
    "src/repro/core/",
)

#: Fully-resolved callables that read the wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Draws from the process-global ``random`` module RNG (never seeded by
#: the experiment config, shared across every run in the process).
_GLOBAL_RANDOM = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.expovariate",
    "random.betavariate",
    "random.paretovariate",
    "random.vonmisesvariate",
    "random.triangular",
    "random.getrandbits",
    "random.randbytes",
}

#: Legacy numpy global-state RNG (``np.random.rand`` et al. draw from the
#: hidden module-level RandomState).
_NUMPY_GLOBAL_RANDOM = {
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.random_sample",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.uniform",
    "numpy.random.normal",
    "numpy.random.exponential",
    "numpy.random.poisson",
    "numpy.random.seed",
}

#: Generator constructors that are fine seeded, hazards bare.
_SEEDABLE_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "random.Random",
}


@rule
class DeterminismRule:
    """RL001: wall-clock and unseeded randomness are banned in the engine."""

    id = "RL001"
    summary = (
        "no time.time/datetime.now/global-random/seedless default_rng in "
        "engine, routing or core modules"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        for module in index.modules_matching(*SIMULATION_PREFIXES):
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = module.resolved_call_name(node)
                if resolved is None:
                    continue
                message = self._diagnose(resolved, node)
                if message is not None:
                    yield Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.id,
                        message=message,
                    )

    @staticmethod
    def _diagnose(resolved: str, node: ast.Call) -> str | None:
        if resolved in _WALL_CLOCK:
            return (
                f"wall-clock call {resolved}() in a simulation module breaks "
                "byte-identical replay; simulated time comes from the tick "
                "engine, timing belongs in benchmarks/ or the CLI"
            )
        if resolved in _GLOBAL_RANDOM:
            return (
                f"{resolved}() draws from the process-global RNG, which no "
                "experiment seed controls; thread a seeded "
                "random.Random/Generator through the config instead"
            )
        if resolved in _NUMPY_GLOBAL_RANDOM:
            return (
                f"{resolved}() uses numpy's hidden global RandomState; use a "
                "seeded np.random.default_rng(seed) from the experiment config"
            )
        if resolved in _SEEDABLE_CONSTRUCTORS and not node.args and not node.keywords:
            return (
                f"{resolved}() without a seed gives every run different "
                "entropy; pass the experiment seed explicitly"
            )
        return None
