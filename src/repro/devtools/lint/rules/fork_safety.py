"""RL006 — fork-safety: shard workers must not touch process-global state.

``ShardedSession`` forks one worker per segment over the shared-memory
store.  Everything *outside* the shared block — module-level caches,
``PersistentCache`` disk artifacts, the process-global RNGs, the store's
per-process ``version``/``frozen_count`` scalars — is silently duplicated
by ``fork()``: a worker mutating one updates its private copy, the
parent and siblings never see it, and artifacts written concurrently by
several workers corrupt each other.  None of this fails loudly; it skews
results or poisons caches.

The rule walks the bounded call graph from every fork entry point (a
function passed as ``target=`` to a ``*.Process(...)`` constructor) and
reports each process-global effect in the reachable closure, naming the
call chain that makes it reachable.  The store's own stamping modules
(``store.py``/``pathtable.py``/``dispatch.py``) are exempt from the
``version-write`` class only — bumping the per-process version is *their
job*; cross-fork probe freshness is handled by barrier-time cache
invalidation, not the stamp protocol.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.lint.callgraph import shared_call_graph
from repro.devtools.lint.effects import summarize_effects
from repro.devtools.lint.index import LintIndex
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding
from repro.devtools.lint.rules.store_discipline import EXEMPT_MODULES

__all__ = ["ForkSafetyRule"]

_CONSEQUENCE = {
    "global-write": (
        "fork() gives every worker a private copy, so the mutation "
        "diverges silently across shard lanes"
    ),
    "rng": (
        "each forked worker inherits identical RNG state, so 'random' "
        "draws repeat across lanes and break seeded replay"
    ),
    "disk-write": (
        "concurrent forked writers race on the artifact and corrupt it"
    ),
    "version-write": (
        "the store's version/frozen_count scalars are per-process and "
        "do not replicate across forks; only the stamping modules may "
        "maintain them"
    ),
}


@rule
class ForkSafetyRule:
    """RL006: no process-global mutation reachable from a fork target."""

    id = "RL006"
    summary = (
        "code reachable from a forked worker entry point (Process target) "
        "must not mutate module caches, disk artifacts, global RNGs or "
        "per-process store scalars"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        graph = shared_call_graph(index)
        if not graph.fork_roots:
            return
        summaries = summarize_effects(index)
        roots = sorted({root.target for root in graph.fork_roots})
        origin = graph.reachable_from(roots)
        for key in sorted(origin):
            summary = summaries.get(key)
            if summary is None or not summary.effects:
                continue
            module = graph.functions[key].module
            exempt_stamper = module.path.endswith(EXEMPT_MODULES)
            chain = graph.describe_chain(origin, key)
            for effect in summary.effects:
                if effect.kind == "version-write" and exempt_stamper:
                    continue
                yield Finding(
                    path=module.path,
                    line=effect.line,
                    col=effect.col,
                    rule_id=self.id,
                    message=(
                        f"{effect.detail}, reachable from a forked shard "
                        f"worker (via {chain}); "
                        f"{_CONSEQUENCE[effect.kind]}"
                    ),
                )
