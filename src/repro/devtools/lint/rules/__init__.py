"""Built-in lint rules; importing this package registers all of them.

Each module ships one rule grounded in a real engine invariant:

========  ============================  =======================================
Rule      Module                        Invariant
========  ============================  =======================================
RL001     :mod:`.determinism`           no wall-clock / unseeded RNG in the
                                        simulation layers
RL002     :mod:`.ordering`              no unordered iteration in scheduling /
                                        cohort-building modules
RL003     :mod:`.store_discipline`      store array writes pair with a
                                        version/stamp bump
RL004     :mod:`.parity`                every ``vectorized_*`` fast path keeps
                                        a tested scalar baseline
RL005     :mod:`.ticks`                 no float arithmetic in schedule tick
                                        arguments
========  ============================  =======================================
"""

from repro.devtools.lint.rules.determinism import DeterminismRule
from repro.devtools.lint.rules.ordering import OrderedIterationRule
from repro.devtools.lint.rules.parity import ParityPairRule
from repro.devtools.lint.rules.store_discipline import StoreDisciplineRule
from repro.devtools.lint.rules.ticks import IntegerTickRule

__all__ = [
    "DeterminismRule",
    "OrderedIterationRule",
    "ParityPairRule",
    "StoreDisciplineRule",
    "IntegerTickRule",
]
