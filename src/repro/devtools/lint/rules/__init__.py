"""Built-in lint rules; importing this package registers all of them.

Each module ships one rule grounded in a real engine invariant:

========  ============================  =======================================
Rule      Module                        Invariant
========  ============================  =======================================
RL001     :mod:`.determinism`           no wall-clock / unseeded RNG in the
                                        simulation layers
RL002     :mod:`.ordering`              no unordered iteration in scheduling /
                                        cohort-building modules
RL003     :mod:`.store_discipline`      store array writes pair with a
                                        version/stamp bump
RL004     :mod:`.parity`                every ``vectorized_*`` fast path keeps
                                        a tested scalar baseline
RL005     :mod:`.ticks`                 no float arithmetic in schedule tick
                                        arguments
RL006     :mod:`.fork_safety`           fork-reachable code leaves process-
                                        global state alone
RL007     :mod:`.barrier_discipline`    barrier waits are timeout-guarded,
                                        ordered and crash-safe
RL008     :mod:`.lane_confinement`      fork-reachable store writes have
                                        provable row provenance
RL009     :mod:`.shm_lifecycle`         ``share()`` pairs with a finally-path
                                        ``close_shared()``
========  ============================  =======================================

RL006–RL009 are the interprocedural shard-safety tier: they read the
bounded :mod:`~repro.devtools.lint.callgraph` and the per-function
:mod:`~repro.devtools.lint.effects` summaries instead of walking single
files.
"""

from repro.devtools.lint.rules.barrier_discipline import BarrierDisciplineRule
from repro.devtools.lint.rules.determinism import DeterminismRule
from repro.devtools.lint.rules.fork_safety import ForkSafetyRule
from repro.devtools.lint.rules.lane_confinement import LaneConfinementRule
from repro.devtools.lint.rules.ordering import OrderedIterationRule
from repro.devtools.lint.rules.parity import ParityPairRule
from repro.devtools.lint.rules.shm_lifecycle import ShmLifecycleRule
from repro.devtools.lint.rules.store_discipline import StoreDisciplineRule
from repro.devtools.lint.rules.ticks import IntegerTickRule

__all__ = [
    "DeterminismRule",
    "OrderedIterationRule",
    "ParityPairRule",
    "StoreDisciplineRule",
    "IntegerTickRule",
    "ForkSafetyRule",
    "BarrierDisciplineRule",
    "LaneConfinementRule",
    "ShmLifecycleRule",
]
