"""RL007 — barrier discipline in the sharded epoch protocol.

The sharded run is bulk-synchronous: every lane waits on barrier A
(shard windows done), the boundary lane runs exclusively, then everyone
waits on barrier B.  Three local mistakes turn a worker crash into a
distributed hang or a silent ordering bug:

* a ``Barrier.wait()`` without a timeout blocks forever when a sibling
  dies before reaching the barrier (a timeout breaks the barrier and
  surfaces the failure);
* two functions waiting on the same pair of barriers in *opposite*
  orders deadlock exactly like inconsistent lock ordering;
* an exception handler around a wait that neither re-raises, aborts the
  barriers, nor calls a raising helper swallows the failure — the other
  participants keep waiting on a barrier nobody will ever trip again.

The rule is syntactic: any ``<receiver>.wait(...)`` where the receiver's
dotted name contains ``barrier`` is treated as a barrier wait.  Wait
order is compared on normalised receiver names (final attribute,
leading underscores stripped), so ``barrier_a`` in the worker and
``self._barrier_a`` in the driver are recognised as the same barrier.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.lint.callgraph import FunctionDefNode, _own_body_walk
from repro.devtools.lint.index import LintIndex, ModuleInfo, dotted_name
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["BarrierDisciplineRule"]


def _barrier_receiver(node: ast.Call) -> Optional[str]:
    """Normalised barrier name when ``node`` is ``<barrier>.wait(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "wait":
        return None
    receiver = dotted_name(func.value)
    if receiver is None or "barrier" not in receiver.lower():
        return None
    return receiver.rsplit(".", 1)[-1].lstrip("_")


def _has_timeout(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(kw.arg == "timeout" for kw in node.keywords)


def _contains_raise_or_abort(nodes: List[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "abort":
                    return True
    return False


def _module_raising_defs(module: ModuleInfo) -> Dict[str, bool]:
    """``{function name: body contains a raise}`` for the whole module."""
    raising: Dict[str, bool] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            has_raise = any(
                isinstance(sub, ast.Raise) for sub in ast.walk(node)
            )
            raising[node.name] = raising.get(node.name, False) or has_raise
    return raising


def _handler_is_safe(
    handler: ast.ExceptHandler, raising_defs: Dict[str, bool]
) -> bool:
    """A handler is safe when the failure cannot die inside it."""
    if _contains_raise_or_abort(handler.body):
        return True
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if raising_defs.get(name.rsplit(".", 1)[-1], False):
                return True
    return False


class _FunctionWaits:
    def __init__(self, fn: FunctionDefNode):
        self.fn = fn
        #: (normalised barrier name, call node, enclosing Try chain).
        self.waits: List[Tuple[str, ast.Call, List[ast.Try]]] = []

    @property
    def first_order(self) -> List[str]:
        order: List[str] = []
        for name, _call, _tries in self.waits:
            if name not in order:
                order.append(name)
        return order


def _collect_waits(fn: FunctionDefNode) -> _FunctionWaits:
    found = _FunctionWaits(fn)
    try_stack: List[ast.Try] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Call):
            name = _barrier_receiver(node)
            if name is not None:
                found.waits.append((name, node, list(try_stack)))
        if isinstance(node, ast.Try):
            try_stack.append(node)
            for child in node.body + node.orelse + node.finalbody:
                visit(child)
            try_stack.pop()
            for handler in node.handlers:
                for child in handler.body:
                    visit(child)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in fn.body:
        visit(stmt)
    return found


@rule
class BarrierDisciplineRule:
    """RL007: barrier waits are timeout-guarded, ordered, crash-safe."""

    id = "RL007"
    summary = (
        "Barrier.wait sites must pass a timeout, keep one A-before-B "
        "order across all functions, and abort/re-raise on exception "
        "paths"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        for module in index.src_modules():
            if "barrier" not in module.source.lower():
                continue
            raising_defs = _module_raising_defs(module)
            canonical_order: Optional[List[str]] = None
            canonical_fn: Optional[str] = None
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                waits = _collect_waits(node)
                if not waits.waits:
                    continue
                yield from self._check_timeouts(module, waits)
                yield from self._check_handlers(module, waits, raising_defs)
                order = waits.first_order
                if len(order) < 2:
                    continue
                if canonical_order is None:
                    canonical_order, canonical_fn = order, node.name
                    continue
                if self._orders_conflict(canonical_order, order):
                    first = waits.waits[0][1]
                    yield Finding(
                        path=module.path,
                        line=first.lineno,
                        col=first.col_offset,
                        rule_id=self.id,
                        message=(
                            f"barrier wait order {order} in {node.name}() "
                            f"contradicts {canonical_order} in "
                            f"{canonical_fn}(); inconsistent barrier "
                            "ordering deadlocks the epoch protocol the "
                            "same way inconsistent lock ordering does"
                        ),
                    )

    def _check_timeouts(
        self, module: ModuleInfo, waits: _FunctionWaits
    ) -> Iterator[Finding]:
        for name, call, _tries in waits.waits:
            if not _has_timeout(call):
                yield Finding(
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule_id=self.id,
                    message=(
                        f"barrier wait on '{name}' has no timeout; when a "
                        "sibling worker dies before reaching the barrier "
                        "this blocks forever — pass timeout= so the "
                        "barrier breaks and the failure surfaces"
                    ),
                )

    def _check_handlers(
        self,
        module: ModuleInfo,
        waits: _FunctionWaits,
        raising_defs: Dict[str, bool],
    ) -> Iterator[Finding]:
        seen: set = set()
        for name, _call, tries in waits.waits:
            for try_node in tries:
                for handler in try_node.handlers:
                    if id(handler) in seen:
                        continue
                    seen.add(id(handler))
                    if _handler_is_safe(handler, raising_defs):
                        continue
                    yield Finding(
                        path=module.path,
                        line=handler.lineno,
                        col=handler.col_offset,
                        rule_id=self.id,
                        message=(
                            f"exception handler around the '{name}' "
                            "barrier wait neither re-raises, aborts the "
                            "barriers, nor calls a raising helper; a "
                            "swallowed failure here leaves every other "
                            "participant waiting on a barrier that will "
                            "never trip"
                        ),
                    )

    @staticmethod
    def _orders_conflict(a: List[str], b: List[str]) -> bool:
        shared = [name for name in a if name in b]
        if len(shared) < 2:
            return False
        return [name for name in b if name in shared] != shared
