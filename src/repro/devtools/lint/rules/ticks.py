"""RL005 — integer-tick discipline at the scheduling boundary.

The tick engine's event keys embed the tick as a bit-shifted integer;
float seconds exist only at the API boundary, converted exactly once via
``TickClock.to_ticks``.  A float literal or true-division expression
flowing into ``schedule``/``schedule_at_tick``/``schedule_many`` tick
arguments reintroduces the float-drift bug class the integer-tick design
removed (events at ``0.1 + 0.2`` vs ``0.3`` seconds landing on different
ticks across platforms).

The rule inspects the tick argument of every ``schedule``/
``schedule_at_tick``/``schedule_many`` call in the shipped tree and flags
any float constant or ``/`` (true division) inside it.  Subtrees under a
``to_ticks(...)`` call are exempt — that *is* the sanctioned conversion
point (``schedule_after``/``every`` take seconds and are out of scope).
Floor division (``//``) and shifts stay integral and are fine.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.devtools.lint.index import LintIndex
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["IntegerTickRule"]

#: Calls whose first argument is an absolute tick (or list of ticks).
_TICK_CALLS = {
    "schedule": ("tick",),
    "schedule_at_tick": ("tick",),
    "schedule_many": ("ticks",),
}

#: Calls that convert seconds to ticks; their arguments are float-domain.
_CONVERSIONS = {"to_ticks"}


def _last_segment(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _float_hazards(node: ast.expr) -> List[ast.AST]:
    """Float literals / true divisions in ``node``, pruned at to_ticks()."""
    hazards: List[ast.AST] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Call):
            segment = _last_segment(current.func)
            if segment in _CONVERSIONS:
                continue  # inside the sanctioned float->tick conversion
        if isinstance(current, ast.Constant) and isinstance(current.value, float):
            hazards.append(current)
        elif isinstance(current, ast.BinOp) and isinstance(current.op, ast.Div):
            hazards.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return hazards


def _tick_argument(node: ast.Call, keyword: str) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


@rule
class IntegerTickRule:
    """RL005: no float arithmetic flowing into schedule tick arguments."""

    id = "RL005"
    summary = (
        "schedule/schedule_at_tick/schedule_many tick arguments must be "
        "integral — convert seconds via clock.to_ticks(), never float "
        "literals or '/'"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        for module in index.src_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                segment = _last_segment(node.func)
                if segment not in _TICK_CALLS:
                    continue
                (keyword,) = _TICK_CALLS[segment]
                tick_arg = _tick_argument(node, keyword)
                if tick_arg is None:
                    continue
                for hazard in _float_hazards(tick_arg):
                    kind = (
                        "float literal"
                        if isinstance(hazard, ast.Constant)
                        else "true division"
                    )
                    yield Finding(
                        path=module.path,
                        line=hazard.lineno,
                        col=hazard.col_offset,
                        rule_id=self.id,
                        message=(
                            f"{kind} in the tick argument of {segment}(); "
                            "ticks are integers — convert seconds exactly "
                            "once via clock.to_ticks(seconds)"
                        ),
                    )
