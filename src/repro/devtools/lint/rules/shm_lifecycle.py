"""RL009 — shared-memory lifecycle: ``share()`` pairs with ``close_shared()``.

``ChannelStateStore.share()`` creates a named ``/dev/shm`` segment the
kernel keeps alive until it is explicitly unlinked — a leaked segment
survives the process and eats locked memory until reboot.  The only safe
shape is ``share()`` dominated by a ``close_shared()`` on *every* exit
path, which in Python means: the ``share()`` call sits inside a ``try``
whose ``finally`` (in the same function) calls ``close_shared``.

A ``close_shared()`` on the happy path only, or a ``share()`` issued
*before* entering the guarded ``try`` (anything between them raising —
barrier construction, pipe setup — leaks the block), are both findings.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.devtools.lint.callgraph import FunctionDefNode
from repro.devtools.lint.index import LintIndex
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["ShmLifecycleRule"]


def _is_share_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "share"
        and not node.args
        and not node.keywords
    )


def _finalbody_closes(try_node: ast.Try) -> bool:
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close_shared"
            ):
                return True
    return False


def _share_sites_with_guard(
    fn: FunctionDefNode,
) -> List[Tuple[ast.Call, bool]]:
    """``(share call, guarded)`` pairs: guarded = enclosing finally closes."""
    sites: List[Tuple[ast.Call, bool]] = []
    try_stack: List[ast.Try] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Call) and _is_share_call(node):
            guarded = any(_finalbody_closes(t) for t in try_stack)
            sites.append((node, guarded))
        if isinstance(node, ast.Try):
            try_stack.append(node)
            for child in node.body + node.orelse:
                visit(child)
            try_stack.pop()
            for handler in node.handlers:
                for child in handler.body:
                    visit(child)
            for child in node.finalbody:
                visit(child)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in fn.body:
        visit(stmt)
    return sites


@rule
class ShmLifecycleRule:
    """RL009: every share() dominated by a finally-path close_shared()."""

    id = "RL009"
    summary = (
        "store.share() must sit inside a try whose finally calls "
        "close_shared() in the same function, so no exit path leaks the "
        "/dev/shm segment"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        for module in index.src_modules():
            if ".share()" not in module.source:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for call, guarded in _share_sites_with_guard(node):
                    if guarded:
                        continue
                    yield Finding(
                        path=module.path,
                        line=call.lineno,
                        col=call.col_offset,
                        rule_id=self.id,
                        message=(
                            f"share() in {node.name}() is not covered by a "
                            "try/finally that calls close_shared(); any "
                            "failure on this exit path (worker crash, "
                            "broken barrier, setup error) leaks the named "
                            "/dev/shm segment until reboot"
                        ),
                    )
