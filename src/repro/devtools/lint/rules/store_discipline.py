"""RL003 — version-stamped ``ChannelStateStore`` mutation discipline.

``PathTable`` probe caches, dispatch-cohort conflict detection and the
control plane's stamp-cached signals all trust one invariant: any write
that changes a channel's state bumps ``store.version`` and ``store.stamp``
(usually via ``store.touch(cid)`` or one of the ``apply_*`` methods that
stamp internally).  A direct array write without a stamp leaves every
cached probe silently stale — the exact bug class the upcoming
mid-run-mutating PathService providers make easy to hit.

The store's own module plus the two vectorised kernels that own batched
writes (``pathtable.py``, ``dispatch.py``) maintain the stamps
internally and are exempt.  Everywhere else, a subscripted write to a
store array attribute (``x.balance[cid, side] = ...``, ``np.add.at(
store.inflight, ...)``) must be paired — in the same function — with a
``.touch(...)`` call or a direct ``.version``/``.stamp[...]`` bump.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.devtools.lint.index import LintIndex, dotted_name
from repro.devtools.lint.registry import rule
from repro.devtools.lint.report import Finding

__all__ = ["StoreDisciplineRule"]

#: Modules that own stamp maintenance and may write arrays freely.
EXEMPT_MODULES = (
    "src/repro/engine/store.py",
    "src/repro/engine/pathtable.py",
    "src/repro/engine/dispatch.py",
)

#: The store's mutable array attributes (see ChannelStateStore.__slots__).
STORE_ARRAYS = {
    "balance",
    "inflight",
    "sent",
    "settled_flow",
    "queue_depth",
    "capacity",
    "total_deposited",
    "num_settled",
    "num_refunded",
    "frozen",
    "stamp",
}

#: ``np.<ufunc>.at`` in-place scatter calls that mutate their first arg.
_SCATTER_CALLS = {
    f"numpy.{ufunc}.at"
    for ufunc in ("add", "subtract", "multiply", "divide", "maximum", "minimum")
}


def _store_array_attr(node: ast.expr) -> Optional[str]:
    """The store-array attribute name if ``node`` is ``<expr>.<array>``."""
    if isinstance(node, ast.Attribute) and node.attr in STORE_ARRAYS:
        return node.attr
    return None


def _written_array(target: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    """``(array_name, node)`` when ``target`` writes a store array slot."""
    if isinstance(target, ast.Subscript):
        attr = _store_array_attr(target.value)
        if attr is not None:
            return attr, target
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            hit = _written_array(element)
            if hit is not None:
                return hit
    return None


class _ScopeAuditor(ast.NodeVisitor):
    """Collect store-array writes and stamp bumps per function scope."""

    def __init__(self, module) -> None:
        self.module = module
        #: (scope-key, array name, node) per direct write.
        self.writes: List[Tuple[int, str, ast.AST]] = []
        #: scope keys containing a version/stamp bump.
        self.bumped: set[int] = set()
        self._scope_stack: List[int] = [0]  # 0 == module scope

    # -- scope tracking -------------------------------------------------
    def _enter_scope(self, node: ast.AST) -> None:
        self._scope_stack.append(id(node))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    # -- writes and bumps ----------------------------------------------
    @property
    def _scope(self) -> int:
        return self._scope_stack[-1]

    def _record_write(self, array: str, node: ast.AST) -> None:
        self.writes.append((self._scope, array, node))

    def _record_bump(self) -> None:
        self.bumped.add(self._scope)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def _check_target(self, target: ast.expr) -> None:
        # version bump: `store.version = ...` / `store.version += 1`
        if isinstance(target, ast.Attribute) and target.attr == "version":
            self._record_bump()
            return
        hit = _written_array(target)
        if hit is None:
            return
        array, node = hit
        if array == "stamp":
            # `store.stamp[cids] = version` IS the bump.
            self._record_bump()
            return
        self._record_write(array, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "touch":
            self._record_bump()
        else:
            resolved = self.module.resolved_call_name(node)
            if resolved in _SCATTER_CALLS and node.args:
                attr = _store_array_attr(node.args[0])
                if attr == "stamp":
                    self._record_bump()
                elif attr is not None:
                    self._record_write(attr, node)
        self.generic_visit(node)


@rule
class StoreDisciplineRule:
    """RL003: store array writes outside the store pair with a stamp bump."""

    id = "RL003"
    summary = (
        "direct ChannelStateStore array writes outside "
        "store.py/pathtable.py/dispatch.py must bump version/stamp (or "
        "touch()) in the same function"
    )

    def check(self, index: LintIndex) -> Iterator[Finding]:
        for module in index.src_modules():
            if module.path.endswith(EXEMPT_MODULES):
                continue
            auditor = _ScopeAuditor(module)
            auditor.visit(module.tree)
            for scope, array, node in auditor.writes:
                if scope in auditor.bumped:
                    continue
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.id,
                    message=(
                        f"direct write to store array '.{array}[...]' without "
                        "a version/stamp bump in the same function; cached "
                        "path probes and dispatch conflict checks go stale — "
                        "call store.touch(cid) (or use an apply_* method)"
                    ),
                )
