"""Orchestration: parse once, run every rule, apply suppressions.

The runner owns the lifecycle the CLI and the selftests share:

1. build one :class:`~repro.devtools.lint.index.LintIndex` over the
   requested roots (a single ``ast.parse`` pass — the whole run is
   sub-second on this tree, cheap enough for CI and pre-commit);
2. run each registered rule over the shared index;
3. drop findings silenced by ``# repro-lint: allow[RULE]`` comments into
   the report's ``suppressed`` list (still counted, never printed as
   failures);
4. fold parse failures in as ``RL000`` findings — a file the linter
   cannot read is a finding, not a silent skip.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.devtools.lint.cache import ParseCache
from repro.devtools.lint.index import LintIndex, ModuleInfo
from repro.devtools.lint.registry import all_rules
from repro.devtools.lint.report import Finding, LintReport

__all__ = ["run_lint", "run_over_index"]

#: Pseudo-rule id for files the index failed to parse.
PARSE_ERROR_RULE = "RL000"


def run_over_index(
    index: LintIndex,
    select: Optional[Sequence[str]] = None,
    on_rule: Optional[Callable[[str], None]] = None,
) -> LintReport:
    """Run the (selected) registered rules over an existing index."""
    report = LintReport(files_scanned=len(index))
    for failure in index.failures:
        report.findings.append(
            Finding(
                path=failure.path,
                line=1,
                col=0,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not parse file: {failure.message}",
            )
        )
    by_path: Dict[str, ModuleInfo] = {module.path: module for module in index.modules}
    for lint_rule in all_rules(select):
        report.rules_run.append(lint_rule.id)
        if on_rule is not None:
            on_rule(lint_rule.id)
        for finding in lint_rule.check(index):
            module = by_path.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule_id, finding.line
            ):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort()
    report.suppressed.sort()
    return report


def run_lint(
    roots: Iterable[str],
    select: Optional[Sequence[str]] = None,
    base: Optional[str] = None,
    use_cache: bool = True,
) -> LintReport:
    """Lint every ``*.py`` under ``roots`` and return the report.

    ``use_cache`` keys parse results on each file's ``(mtime_ns, size)``
    in ``.repro-lint-cache.pickle`` under ``base`` so warm runs skip the
    parse pass; pass ``False`` (CLI: ``--no-cache``) to force cold.
    """
    cache = ParseCache.for_base(base) if use_cache else None
    index = LintIndex.from_paths(roots, base=base, cache=cache)
    report = run_over_index(index, select=select)
    if cache is not None:
        cache.save()
    return report
