"""Command-line interface.

Examples
--------
Run one scheme::

    spider-repro run --scheme spider-waterfilling --topology isp \
        --capacity 3000 --transactions 2000 --rate 100

Compare all schemes on the same trace (Fig. 6 style)::

    spider-repro compare --topology isp --capacity 3000

Sweep capacity (Fig. 7 style)::

    spider-repro sweep --capacities 1000,3000,5000,10000

Analyse a payment graph's circulation structure (Fig. 5)::

    spider-repro decompose --topology fig4

Precompute a topology's pair path sets into a reusable artifact::

    spider-repro paths precompute --topology ripple-huge --out-dir cache/paths
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import SweepExecutor
from repro.experiments.runner import compare_schemes, run_experiment
from repro.experiments.sweeps import capacity_sweep
from repro.fluid.circulation import decompose_payment_graph
from repro.metrics.report import format_metrics_table, format_table
from repro.routing.registry import available_schemes
from repro.topology.examples import fig4_payment_graph
from repro.workload.demand import payment_graph_from_records

__all__ = ["main", "build_parser"]

_DEFAULT_SCHEMES = [
    "spider-waterfilling",
    "spider-lp",
    "spider-primal-dual",
    "max-flow",
    "shortest-path",
    "silentwhispers",
    "speedymurmurs",
]


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="isp", help="topology spec (default: isp)")
    parser.add_argument("--capacity", type=float, default=3000.0, help="funds per channel")
    parser.add_argument(
        "--transactions", type=int, default=2000, help="trace length in payments"
    )
    parser.add_argument("--rate", type=float, default=100.0, help="arrivals per second")
    parser.add_argument("--sizes", default="isp", help="size distribution spec")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--mtu", type=float, default=None, help="max transaction unit (default: unbounded)"
    )
    parser.add_argument(
        "--policy", default="srpt", help="pending-queue scheduling policy"
    )
    parser.add_argument(
        "--engine",
        default="session",
        choices=("session", "legacy"),
        help="execution engine: unified tick-engine session (default) or "
        "the deprecated Runtime/Simulator pair",
    )
    parser.add_argument(
        "--path-cache-dir",
        default=None,
        help="directory for persistent path-discovery artifacts (pair "
        "path sets are loaded from and written back to it; see "
        "'paths precompute')",
    )


def _config_from_args(args: argparse.Namespace, scheme: str = "spider-waterfilling") -> ExperimentConfig:
    kwargs = dict(
        scheme=scheme,
        topology=args.topology,
        capacity=args.capacity,
        num_transactions=args.transactions,
        arrival_rate=args.rate,
        sizes=args.sizes,
        seed=args.seed,
        scheduling_policy=args.policy,
    )
    if args.mtu is not None:
        kwargs["mtu"] = args.mtu
    return ExperimentConfig(**kwargs)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="spider-repro",
        description="Spider payment-channel-network routing reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scheme")
    run_parser.add_argument(
        "--scheme",
        default="spider-waterfilling",
        choices=available_schemes(),
        help="routing scheme",
    )
    run_parser.add_argument(
        "--dispatch-stats",
        action="store_true",
        help="print the engine's dispatch counters after the run "
        "(cohorts, batched units, scalar fallbacks; plus shard counters "
        "with --shards)",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partition the network into N segments and run each "
        "segment's traffic in its own worker process over a "
        "shared-memory store (0 = single-process; metrics are "
        "byte-identical either way)",
    )
    run_parser.add_argument(
        "--shard-epoch",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="epoch-barrier period for --shards (default: 1.0)",
    )
    run_parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the --shards execution under the write-ownership "
        "sanitizer: every store row a shard lane writes is checked "
        "against the partition's owner map (equivalent to setting "
        "REPRO_SHARD_SANITIZE=1)",
    )
    _add_common_options(run_parser)

    compare_parser = sub.add_parser("compare", help="compare schemes on one trace")
    compare_parser.add_argument(
        "--schemes",
        default=",".join(_DEFAULT_SCHEMES),
        help="comma-separated scheme names",
    )
    _add_common_options(compare_parser)

    sweep_parser = sub.add_parser("sweep", help="sweep per-channel capacity")
    sweep_parser.add_argument(
        "--capacities",
        default="1000,3000,5000,10000",
        help="comma-separated capacities",
    )
    sweep_parser.add_argument(
        "--schemes",
        default="spider-waterfilling,shortest-path",
        help="comma-separated scheme names",
    )
    sweep_parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="run sweep cells on N worker processes through SweepExecutor "
        "(0 = serial, identical traces across schemes per cell)",
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for per-cell JSON result caching (sweep only)",
    )
    _add_common_options(sweep_parser)

    decompose_parser = sub.add_parser(
        "decompose", help="circulation/DAG decomposition of a workload's payment graph"
    )
    _add_common_options(decompose_parser)

    figures_parser = sub.add_parser(
        "figures", help="regenerate every paper figure's table into a directory"
    )
    figures_parser.add_argument("--out", default="results", help="output directory")
    figures_parser.add_argument("--seed", type=int, default=7, help="random seed")

    paths_parser = sub.add_parser(
        "paths", help="path-discovery artifacts (PathService)"
    )
    paths_sub = paths_parser.add_subparsers(dest="paths_command", required=True)
    precompute_parser = paths_sub.add_parser(
        "precompute",
        help="discover a config's trace pair path sets once and persist "
        "them for later runs and sweeps",
    )
    precompute_parser.add_argument(
        "--k", type=int, default=4, help="paths per pair (paper: 4)"
    )
    precompute_parser.add_argument(
        "--out-dir",
        required=True,
        help="artifact directory (pass the same directory as "
        "--path-cache-dir / sweep --cache-dir later)",
    )
    _add_common_options(precompute_parser)

    lint_parser = sub.add_parser(
        "lint",
        help="run repro-lint, the AST-based engine-invariant linter",
        description=(
            "Check the tree against the engine's correctness invariants "
            "(determinism, ordered iteration, store-mutation discipline, "
            "scalar/vector parity coverage, integer ticks).  Equivalent to "
            "`python -m repro.devtools.lint`."
        ),
    )
    from repro.devtools.lint.cli import add_lint_arguments

    add_lint_arguments(lint_parser)

    sub.add_parser("schemes", help="list available schemes")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "schemes":
        for name in available_schemes():
            print(name)
        return 0

    if args.command == "lint":
        from repro.devtools.lint.cli import run_from_args

        return run_from_args(args)

    if args.command == "run":
        stats = None
        if args.shards > 0:
            from repro.engine.sharding import ShardedSession

            if args.engine != "session":
                print("error: --shards requires --engine session", file=sys.stderr)
                return 2
            session = ShardedSession.from_config(
                _config_from_args(args, scheme=args.scheme),
                num_shards=args.shards,
                epoch=args.shard_epoch,
                sanitize=True if args.sanitize else None,
            )
            metrics = session.run()
            stats = session.dispatch_stats()
        elif args.dispatch_stats and args.engine == "session":
            from repro.engine.session import SimulationSession

            session = SimulationSession.from_config(
                _config_from_args(args, scheme=args.scheme),
                path_cache_dir=args.path_cache_dir,
            )
            metrics = session.run()
            stats = session.dispatch_stats()
        else:
            metrics = run_experiment(
                _config_from_args(args, scheme=args.scheme),
                engine=args.engine,
                path_cache_dir=args.path_cache_dir,
            )
        print(format_metrics_table([metrics], title=f"{args.scheme} on {args.topology}"))
        if args.dispatch_stats:
            if stats is None:
                print("dispatch stats unavailable on this engine", file=sys.stderr)
            else:
                print("dispatch stats:")
                for key in sorted(stats):
                    print(f"  {key:20s} {stats[key]}")
        return 0

    if args.command == "compare":
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
        results = compare_schemes(
            _config_from_args(args),
            schemes,
            engine=args.engine,
            path_cache_dir=args.path_cache_dir,
        )
        print(
            format_metrics_table(
                results,
                title=(
                    f"{args.topology}, capacity={args.capacity:g}, "
                    f"{args.transactions} transactions"
                ),
            )
        )
        return 0

    if args.command == "sweep":
        capacities = [float(c) for c in args.capacities.split(",") if c.strip()]
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
        if (
            args.parallel > 0
            or args.cache_dir is not None
            or args.path_cache_dir is not None
        ):
            executor = SweepExecutor(
                _config_from_args(args),
                processes=max(1, args.parallel),
                cache_dir=args.cache_dir,
                engine=args.engine,
                reseed_cells=False,  # match the serial sweep cell for cell
                path_cache_dir=args.path_cache_dir,
            )
            results = executor.capacity_sweep(capacities, schemes)
        else:
            results = capacity_sweep(_config_from_args(args), capacities, schemes)
        rows = []
        for capacity in capacities:
            for scheme in schemes:
                metrics = results[(scheme, capacity)]
                rows.append(
                    [
                        f"{capacity:g}",
                        scheme,
                        f"{100 * metrics.success_ratio:.2f}",
                        f"{100 * metrics.success_volume:.2f}",
                    ]
                )
        print(
            format_table(
                ["capacity", "scheme", "success_ratio_%", "success_volume_%"],
                rows,
                title=f"capacity sweep on {args.topology}",
            )
        )
        return 0

    if args.command == "figures":
        from repro.experiments.figures import generate_all

        written = generate_all(args.out, seed=args.seed)
        for path in written:
            print(f"wrote {path}")
        return 0

    if args.command == "paths":
        # paths precompute: discover the config's trace pair sets once and
        # persist the artifact for later runs/sweeps to load.
        from repro.experiments.executor import precompute_trace_paths

        start = time.perf_counter()
        pairs, service = precompute_trace_paths(
            _config_from_args(args), args.out_dir, budgets=(args.k,)
        )
        elapsed = time.perf_counter() - start
        path_sets = service.paths_many(pairs, k=args.k)
        total_paths = sum(len(paths) for paths in path_sets)
        print(
            f"precomputed {len(pairs)} pairs ({total_paths} paths, k={args.k}) "
            f"on {args.topology} in {elapsed:.2f}s "
            f"({len(pairs) / max(elapsed, 1e-9):.0f} pairs/s) -> {args.out_dir}"
        )
        return 0

    if args.command == "decompose":
        if args.topology == "fig4":
            graph = fig4_payment_graph()
        else:
            config = _config_from_args(args)
            topology = config.build_topology()
            records = config.build_workload(list(topology.nodes))
            graph = payment_graph_from_records(records)
        decomposition = decompose_payment_graph(graph, method="lp")
        print(f"payment graph: {len(graph)} demand edges, total {graph.total_demand():.4g}")
        print(f"max circulation nu(C*): {decomposition.value:.4g}")
        print(f"DAG remainder:          {decomposition.dag_value:.4g}")
        print(f"circulation fraction:   {100 * decomposition.circulation_fraction:.2f}%")
        return 0

    return 1  # pragma: no cover - unreachable with required subparsers


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
