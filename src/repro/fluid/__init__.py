"""Fluid-model theory: paths, circulations, LPs, primal-dual algorithm."""

from repro.fluid.circulation import (
    CirculationDecomposition,
    PaymentGraph,
    bfs_spanning_tree,
    decompose_payment_graph,
    is_circulation,
    is_dag,
    max_circulation_cycle_cancelling,
    max_circulation_lp,
    peel_cycles,
    route_circulation_on_tree,
)
from repro.fluid.lp import (
    FluidSolution,
    max_balanced_throughput,
    max_unbalanced_throughput,
    solve_fluid_lp,
    solve_rebalancing_lp,
    throughput_vs_rebalancing,
    throughput_with_budget,
)
from repro.fluid.fairness import FairnessSolution, jain_index, solve_fairness_lp
from repro.fluid.primal_dual import (
    PrimalDualConfig,
    PrimalDualResult,
    project_capped_simplex,
    solve_primal_dual,
)
from repro.fluid.paths import (
    all_simple_paths,
    bfs_distances,
    bfs_shortest_path,
    build_path_set,
    k_edge_disjoint_paths,
    k_shortest_paths,
    path_edges,
)

__all__ = [
    "CirculationDecomposition",
    "FairnessSolution",
    "FluidSolution",
    "PaymentGraph",
    "PrimalDualConfig",
    "PrimalDualResult",
    "all_simple_paths",
    "bfs_distances",
    "bfs_shortest_path",
    "bfs_spanning_tree",
    "build_path_set",
    "decompose_payment_graph",
    "is_circulation",
    "is_dag",
    "jain_index",
    "k_edge_disjoint_paths",
    "k_shortest_paths",
    "max_balanced_throughput",
    "max_circulation_cycle_cancelling",
    "max_circulation_lp",
    "max_unbalanced_throughput",
    "path_edges",
    "peel_cycles",
    "project_capped_simplex",
    "route_circulation_on_tree",
    "solve_fairness_lp",
    "solve_fluid_lp",
    "solve_primal_dual",
    "solve_rebalancing_lp",
    "throughput_vs_rebalancing",
    "throughput_with_budget",
]
