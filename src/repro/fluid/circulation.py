"""Payment graphs, circulations, and the throughput bound of Proposition 1.

§5.2.2 of the paper: the *payment graph* H captures who wants to pay whom and
at what rate.  Its *maximum circulation* ν(C*) — the largest sub-demand whose
in- and out-rates balance at every node — is exactly the maximum throughput
achievable by any perfectly balanced routing scheme, on any topology with
ample capacity (Proposition 1).  The residual H − C* is a DAG and is not
routable without on-chain rebalancing.

This module provides two independent computations of ν(C*) (an LP and a
combinatorial cycle-cancelling algorithm — each cross-checks the other in
the test suite), the circulation/DAG decomposition of Fig. 5, cycle peeling,
and the constructive spanning-tree routing used in the proof of Prop. 1.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import ReproError, TopologyError

__all__ = [
    "PaymentGraph",
    "CirculationDecomposition",
    "max_circulation_lp",
    "max_circulation_cycle_cancelling",
    "decompose_payment_graph",
    "peel_cycles",
    "is_circulation",
    "is_dag",
    "route_circulation_on_tree",
    "bfs_spanning_tree",
]

NodeId = Hashable
DirectedEdge = Tuple[NodeId, NodeId]

_EPS = 1e-9


class PaymentGraph:
    """A weighted directed graph of payment demands d_{i,j} > 0.

    The graph is independent of the channel topology; it only describes the
    pattern of payments (§5.2.2).
    """

    def __init__(self, demands: Optional[Mapping[DirectedEdge, float]] = None):
        self._demands: Dict[DirectedEdge, float] = {}
        if demands:
            for (i, j), rate in demands.items():
                self.add_demand(i, j, rate)

    def add_demand(self, source: NodeId, dest: NodeId, rate: float) -> None:
        """Add (accumulate) demand at ``rate > 0`` from ``source`` to ``dest``."""
        if source == dest:
            raise ReproError(f"self-demand at node {source!r} is not allowed")
        if rate <= 0:
            raise ReproError(f"demand rate must be positive, got {rate!r}")
        self._demands[(source, dest)] = self._demands.get((source, dest), 0.0) + rate

    # ------------------------------------------------------------------
    @property
    def demands(self) -> Dict[DirectedEdge, float]:
        """Copy of the demand map ``{(i, j): rate}``."""
        return dict(self._demands)

    def rate(self, source: NodeId, dest: NodeId) -> float:
        """Demand from ``source`` to ``dest`` (0 if absent)."""
        return self._demands.get((source, dest), 0.0)

    def nodes(self) -> List[NodeId]:
        """Sorted list of nodes appearing in any demand."""
        seen = set()
        for i, j in self._demands:
            seen.add(i)
            seen.add(j)
        return sorted(seen, key=repr)

    def edges(self) -> List[DirectedEdge]:
        """Demand edges in deterministic order."""
        return sorted(self._demands, key=lambda e: (repr(e[0]), repr(e[1])))

    def total_demand(self) -> float:
        """Σ d_{i,j} — the throughput of an ideal, unconstrained network."""
        return float(sum(self._demands.values()))

    def out_rate(self, node: NodeId) -> float:
        """Total demand originating at ``node``."""
        return float(sum(r for (i, _), r in self._demands.items() if i == node))

    def in_rate(self, node: NodeId) -> float:
        """Total demand terminating at ``node``."""
        return float(sum(r for (_, j), r in self._demands.items() if j == node))

    def __len__(self) -> int:
        return len(self._demands)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaymentGraph(edges={len(self._demands)}, total={self.total_demand():.6g})"


def is_circulation(flows: Mapping[DirectedEdge, float], tolerance: float = 1e-6) -> bool:
    """Whether ``flows`` balances (in-rate == out-rate) at every node."""
    net: Dict[NodeId, float] = defaultdict(float)
    for (i, j), value in flows.items():
        net[i] -= value
        net[j] += value
    return all(abs(v) <= tolerance for v in net.values())


def is_dag(edges: Iterable[DirectedEdge]) -> bool:
    """Kahn's algorithm acyclicity check on the directed edge set."""
    out_adj: Dict[NodeId, List[NodeId]] = defaultdict(list)
    in_degree: Dict[NodeId, int] = defaultdict(int)
    nodes = set()
    for u, v in edges:
        out_adj[u].append(v)
        in_degree[v] += 1
        nodes.add(u)
        nodes.add(v)
    queue = deque(n for n in nodes if in_degree[n] == 0)
    visited = 0
    while queue:
        node = queue.popleft()
        visited += 1
        for succ in out_adj[node]:
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                queue.append(succ)
    return visited == len(nodes)


# ----------------------------------------------------------------------
# Maximum circulation, twice (LP and combinatorial)
# ----------------------------------------------------------------------
def max_circulation_lp(graph: PaymentGraph) -> Dict[DirectedEdge, float]:
    """ν(C*) via linear programming.

    maximise Σ_e f_e  subject to  0 ≤ f_e ≤ d_e  and flow conservation at
    every node.  Solved with HiGHS through :func:`scipy.optimize.linprog`.
    """
    edges = graph.edges()
    if not edges:
        return {}
    nodes = graph.nodes()
    node_index = {n: idx for idx, n in enumerate(nodes)}
    num_edges = len(edges)
    demands = graph.demands

    objective = -np.ones(num_edges)
    conservation = np.zeros((len(nodes), num_edges))
    for col, (i, j) in enumerate(edges):
        conservation[node_index[i], col] -= 1.0
        conservation[node_index[j], col] += 1.0
    bounds = [(0.0, demands[e]) for e in edges]
    result = linprog(
        objective,
        A_eq=conservation,
        b_eq=np.zeros(len(nodes)),
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible (f = 0)
        raise ReproError(f"max-circulation LP failed: {result.message}")
    return {
        e: float(v) for e, v in zip(edges, result.x) if v > _EPS
    }


def _find_augmenting_cycle(
    residual: Dict[DirectedEdge, float],
) -> Optional[List[NodeId]]:
    """Find any directed cycle in the positive-residual graph (DFS)."""
    out_adj: Dict[NodeId, List[NodeId]] = defaultdict(list)
    for (u, v), cap in residual.items():
        if cap > _EPS:
            out_adj[u].append(v)
    for neighbours in out_adj.values():
        neighbours.sort(key=repr)

    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[NodeId, int] = defaultdict(int)
    parent: Dict[NodeId, NodeId] = {}

    for start in sorted(out_adj, key=repr):
        if color[start] != WHITE:
            continue
        stack: List[Tuple[NodeId, Iterator]] = [(start, iter(out_adj[start]))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if color[succ] == GRAY:
                    # Found a cycle: unwind from node back to succ.
                    cycle = [node]
                    while cycle[-1] != succ:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    return cycle
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, iter(out_adj[succ])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def max_circulation_cycle_cancelling(
    graph: PaymentGraph,
    max_iterations: int = 100_000,
) -> Dict[DirectedEdge, float]:
    """ν(C*) via negative-cycle cancelling.

    The paper's prose suggests peeling forward cycles greedily, but greedy
    peeling only yields a *maximal* circulation: a short cycle can saturate
    an edge a longer cycle needed, losing value.  The exact combinatorial
    algorithm treats the problem as a min-cost circulation with cost −1 per
    unit of flow on every demand edge: starting from zero flow, repeatedly
    find a negative-cost cycle in the residual graph (forward arcs cost −1,
    backward arcs cost +1) and saturate it.  When no negative cycle remains,
    the circulation is maximum.  Cross-checked against
    :func:`max_circulation_lp` in the test suite.
    """
    edges = graph.edges()
    if not edges:
        return {}
    demands = graph.demands
    flow: Dict[DirectedEdge, float] = {e: 0.0 for e in edges}
    nodes = graph.nodes()

    for _ in range(max_iterations):
        cycle_arcs = _find_negative_residual_cycle(nodes, edges, demands, flow)
        if cycle_arcs is None:
            return {e: v for e, v in flow.items() if v > _EPS}
        bottleneck = min(
            (demands[e] - flow[e]) if forward else flow[e]
            for e, forward in cycle_arcs
        )
        if bottleneck <= _EPS:  # pragma: no cover - defensive
            return {e: v for e, v in flow.items() if v > _EPS}
        for e, forward in cycle_arcs:
            flow[e] += bottleneck if forward else -bottleneck
    raise ReproError("cycle cancelling did not converge")  # pragma: no cover


def _find_negative_residual_cycle(
    nodes: List[NodeId],
    edges: List[DirectedEdge],
    demands: Mapping[DirectedEdge, float],
    flow: Mapping[DirectedEdge, float],
) -> Optional[List[Tuple[DirectedEdge, bool]]]:
    """Bellman–Ford negative-cycle detection on the residual graph.

    Residual arcs: for each demand edge e = (u, v), a forward arc u→v with
    cost −1 while f_e < d_e, and a backward arc v→u with cost +1 while
    f_e > 0.  Returns the cycle as ``[(edge, is_forward), ...]`` or ``None``.
    """
    arcs: List[Tuple[NodeId, NodeId, float, DirectedEdge, bool]] = []
    for e in edges:
        u, v = e
        if demands[e] - flow[e] > _EPS:
            arcs.append((u, v, -1.0, e, True))
        if flow[e] > _EPS:
            arcs.append((v, u, 1.0, e, False))
    if not arcs:
        return None

    # Virtual-source Bellman-Ford: all distances start at 0.
    dist: Dict[NodeId, float] = {n: 0.0 for n in nodes}
    pred: Dict[NodeId, Tuple[NodeId, DirectedEdge, bool]] = {}
    cycle_entry: Optional[NodeId] = None
    for _ in range(len(nodes)):
        cycle_entry = None
        for u, v, cost, e, forward in arcs:
            if dist[u] + cost < dist[v] - 1e-12:
                dist[v] = dist[u] + cost
                pred[v] = (u, e, forward)
                cycle_entry = v
        if cycle_entry is None:
            return None
    # A relaxation occurred on the |V|-th pass: walk predecessors back |V|
    # steps to land inside the negative cycle, then extract it.
    node = cycle_entry
    for _ in range(len(nodes)):
        node = pred[node][0]
    cycle_arcs: List[Tuple[DirectedEdge, bool]] = []
    start = node
    while True:
        prev, e, forward = pred[node]
        cycle_arcs.append((e, forward))
        node = prev
        if node == start:
            break
    cycle_arcs.reverse()
    return cycle_arcs


@dataclass
class CirculationDecomposition:
    """The Fig. 5 decomposition H = C* + DAG.

    Attributes
    ----------
    circulation:
        Edge flows of a maximum circulation C*.
    dag:
        The remaining demand, guaranteed acyclic.
    value:
        ν(C*), the balanced-throughput upper bound of Prop. 1.
    total_demand:
        Σ d_{i,j} of the original payment graph.
    """

    circulation: Dict[DirectedEdge, float]
    dag: Dict[DirectedEdge, float]
    value: float
    total_demand: float

    @property
    def dag_value(self) -> float:
        """Total demand stuck in the DAG component."""
        return float(sum(self.dag.values()))

    @property
    def circulation_fraction(self) -> float:
        """ν(C*) / total demand — e.g. 8/12 = 75% for the paper's example."""
        if self.total_demand <= 0:
            return 0.0
        return self.value / self.total_demand


def decompose_payment_graph(
    graph: PaymentGraph,
    method: str = "cycle-cancelling",
) -> CirculationDecomposition:
    """Split a payment graph into maximum circulation + DAG (Fig. 5).

    ``method`` selects the ν(C*) computation: ``"cycle-cancelling"``
    (combinatorial, default) or ``"lp"``.
    """
    if method == "cycle-cancelling":
        circulation = max_circulation_cycle_cancelling(graph)
    elif method == "lp":
        circulation = max_circulation_lp(graph)
    else:
        raise ValueError(f"unknown method {method!r}")
    demands = graph.demands
    dag = {}
    for edge, rate in demands.items():
        remaining = rate - circulation.get(edge, 0.0)
        if remaining > _EPS:
            dag[edge] = remaining
    if not is_circulation(circulation):
        raise ReproError("internal error: extracted component is not a circulation")
    if not is_dag(dag):
        raise ReproError("internal error: residual demand contains a cycle")
    return CirculationDecomposition(
        circulation=circulation,
        dag=dag,
        value=float(sum(circulation.values())),
        total_demand=graph.total_demand(),
    )


def peel_cycles(
    circulation: Mapping[DirectedEdge, float],
) -> List[Tuple[List[NodeId], float]]:
    """Decompose a circulation into simple cycles of constant flow.

    Returns ``[(cycle_nodes, value), ...]`` whose edge-wise sum reproduces
    the input.  Any circulation admits such a decomposition.
    """
    residual = {e: v for e, v in circulation.items() if v > _EPS}
    cycles: List[Tuple[List[NodeId], float]] = []
    while residual:
        cycle = _find_augmenting_cycle(residual)
        if cycle is None:
            raise ReproError("input is not a circulation: positive residual without cycles")
        cycle_edges = list(zip(cycle, cycle[1:] + [cycle[0]]))
        bottleneck = min(residual[e] for e in cycle_edges)
        for e in cycle_edges:
            residual[e] -= bottleneck
            if residual[e] <= _EPS:
                del residual[e]
        cycles.append((cycle, bottleneck))
    return cycles


# ----------------------------------------------------------------------
# Proposition 1: constructive routing of a circulation on a spanning tree
# ----------------------------------------------------------------------
def bfs_spanning_tree(
    adjacency: Mapping[NodeId, Iterable[NodeId]],
    root: Optional[NodeId] = None,
) -> Dict[NodeId, NodeId]:
    """Spanning tree as a parent map (root maps to itself).

    Raises :class:`~repro.errors.TopologyError` on disconnected input.
    """
    nodes = sorted(adjacency, key=repr)
    if not nodes:
        return {}
    if root is None:
        root = nodes[0]
    parent = {root: root}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbour in sorted(adjacency[node], key=repr):
            if neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    if len(parent) != len(nodes):
        raise TopologyError("graph is disconnected; no spanning tree exists")
    return parent


def _tree_path(parent: Mapping[NodeId, NodeId], source: NodeId, target: NodeId) -> List[NodeId]:
    """Unique path between two nodes of a tree given as a parent map."""

    def ancestry(node: NodeId) -> List[NodeId]:
        chain = [node]
        while parent[chain[-1]] != chain[-1]:
            chain.append(parent[chain[-1]])
        return chain

    up_source = ancestry(source)
    up_target = ancestry(target)
    target_index = {n: i for i, n in enumerate(up_target)}
    for i, node in enumerate(up_source):
        if node in target_index:
            jointer = target_index[node]
            return up_source[: i + 1] + list(reversed(up_target[:jointer]))
    raise TopologyError("nodes are in different trees")  # pragma: no cover


def route_circulation_on_tree(
    circulation: Mapping[DirectedEdge, float],
    adjacency: Mapping[NodeId, Iterable[NodeId]],
    root: Optional[NodeId] = None,
) -> Dict[DirectedEdge, float]:
    """The constructive half of Proposition 1.

    Routes every circulation demand along the unique spanning-tree path and
    returns the resulting *directed* per-edge flows.  The proposition
    guarantees the result is perfectly balanced: flow(u→v) == flow(v→u) on
    every tree edge.  Callers (and the test suite) can verify this with
    :func:`is_circulation`-style balance checks on the returned flows.
    """
    parent = bfs_spanning_tree(adjacency, root=root)
    edge_flows: Dict[DirectedEdge, float] = defaultdict(float)
    for (source, target), value in circulation.items():
        if value <= 0:
            continue
        path = _tree_path(parent, source, target)
        for u, v in zip(path, path[1:]):
            edge_flows[(u, v)] += value
    return dict(edge_flows)
