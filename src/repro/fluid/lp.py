"""The fluid-model linear programs of §5.2.

Three related LPs over per-path rate variables x_p ≥ 0:

* **Balanced routing** (eqs. 1–5): maximise total throughput subject to
  demand caps, channel capacity c_e/Δ, and *perfect balance* — equal flow in
  the two directions of every channel.
* **Routing with on-chain rebalancing** (eqs. 6–11): adds per-direction
  rebalancing rates b_(u,v) ≥ 0 that relax the balance constraint, charged at
  γ per unit in the objective.
* **Throughput under a rebalancing budget** t(B) (eqs. 12–18): maximise
  throughput with Σ b ≤ B; Proposition of §5.2.3 shows t(·) is concave and
  non-decreasing, which the test-suite verifies on random instances.

All LPs are solved with HiGHS via :func:`scipy.optimize.linprog`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import ConfigError, ReproError
from repro.fluid.paths import path_edges

__all__ = [
    "FluidSolution",
    "solve_fluid_lp",
    "max_balanced_throughput",
    "max_unbalanced_throughput",
    "solve_rebalancing_lp",
    "throughput_with_budget",
    "throughput_vs_rebalancing",
]

NodeId = Hashable
Pair = Tuple[NodeId, NodeId]
Path = Tuple[NodeId, ...]
DirectedEdge = Tuple[NodeId, NodeId]

_EPS = 1e-9

_BALANCE_MODES = ("none", "equality", "rebalance", "budget")


def _canonical(u: NodeId, v: NodeId) -> DirectedEdge:
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class FluidSolution:
    """Solution of a fluid LP.

    Attributes
    ----------
    throughput:
        Σ_p x_p — total payment rate delivered.
    objective:
        LP objective (throughput − γ·Σb for the rebalancing LP, otherwise
        equal to ``throughput``).
    path_flows:
        ``{(pair, path): rate}`` for strictly positive rates.
    pair_flows:
        ``{pair: delivered rate}``.
    edge_flows:
        Directed per-channel flows ``{(u, v): rate}``.
    rebalancing:
        Per-direction on-chain rebalancing rates ``{(u, v): b}``.
    """

    throughput: float
    objective: float
    path_flows: Dict[Tuple[Pair, Path], float] = field(default_factory=dict)
    pair_flows: Dict[Pair, float] = field(default_factory=dict)
    edge_flows: Dict[DirectedEdge, float] = field(default_factory=dict)
    rebalancing: Dict[DirectedEdge, float] = field(default_factory=dict)

    @property
    def total_rebalancing(self) -> float:
        """Σ b_(u,v) — total on-chain rebalancing rate."""
        return float(sum(self.rebalancing.values()))

    def demand_fraction(self, demands: Mapping[Pair, float]) -> float:
        """Throughput as a fraction of total demand."""
        total = float(sum(demands.values()))
        if total <= 0:
            return 0.0
        return self.throughput / total

    def flows_for_pair(self, pair: Pair) -> Dict[Path, float]:
        """Per-path flow map for one source/destination pair."""
        return {
            path: rate
            for (p, path), rate in self.path_flows.items()
            if p == pair
        }


def solve_fluid_lp(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]] = None,
    delta: float = 1.0,
    balance: str = "equality",
    gamma: float = 0.0,
    budget: Optional[float] = None,
) -> FluidSolution:
    """Build and solve one of the §5.2 LPs.

    Parameters
    ----------
    demands:
        ``{(i, j): d_ij}`` with positive rates.
    path_set:
        ``{(i, j): [path, ...]}``; every demand pair must have at least one
        path.  Paths are node tuples.
    capacities:
        Total channel funds c_e keyed by *canonical* undirected edge.  Pairs
        absent from the map are treated as unconstrained.  ``None`` disables
        capacity constraints entirely (the unlimited-capacity setting of
        Prop. 1).
    delta:
        Average confirmation delay Δ; a channel supports rate ≤ c_e/Δ
        (eq. 3).
    balance:
        ``"none"`` — drop eq. 4 entirely;
        ``"equality"`` — perfect balance (eqs. 1–5);
        ``"rebalance"`` — eqs. 6–11 with cost ``gamma`` per unit of b;
        ``"budget"`` — eqs. 12–18 with Σ b ≤ ``budget``.
    """
    if balance not in _BALANCE_MODES:
        raise ConfigError(f"balance must be one of {_BALANCE_MODES}, got {balance!r}")
    if delta <= 0:
        raise ConfigError(f"delta must be positive, got {delta!r}")
    if balance == "budget":
        if budget is None or budget < 0:
            raise ConfigError("budget mode requires a non-negative budget")
    if balance == "rebalance" and gamma < 0:
        raise ConfigError(f"gamma must be non-negative, got {gamma!r}")

    pairs = sorted((p for p, d in demands.items() if d > 0), key=repr)
    if not pairs:
        return FluidSolution(throughput=0.0, objective=0.0)
    for pair in pairs:
        if pair not in path_set or not path_set[pair]:
            raise ConfigError(f"no paths supplied for demand pair {pair!r}")

    # ------------------------------------------------------------------
    # Variable layout: x variables first, then (optionally) b variables.
    # ------------------------------------------------------------------
    x_index: List[Tuple[Pair, Path]] = []
    for pair in pairs:
        for path in path_set[pair]:
            if len(path) < 2:
                raise ConfigError(f"degenerate path {path!r} for pair {pair!r}")
            x_index.append((pair, tuple(path)))
    num_x = len(x_index)

    directed_edges: List[DirectedEdge] = sorted(
        {edge for _, path in x_index for edge in path_edges(path)}, key=repr
    )
    edge_pos = {e: i for i, e in enumerate(directed_edges)}
    undirected: List[DirectedEdge] = sorted(
        {_canonical(u, v) for (u, v) in directed_edges}, key=repr
    )

    with_b = balance in ("rebalance", "budget")
    b_edges: List[DirectedEdge] = []
    if with_b:
        # One b variable per direction of every channel touched by a path.
        for u, v in undirected:
            b_edges.append((u, v))
            b_edges.append((v, u))
    num_b = len(b_edges)
    b_pos = {e: num_x + i for i, e in enumerate(b_edges)}
    num_vars = num_x + num_b

    # Per-variable incidence: which directed edges each path crosses.
    usage = np.zeros((len(directed_edges), num_x))
    for col, (_, path) in enumerate(x_index):
        for edge in path_edges(path):
            usage[edge_pos[edge], col] += 1.0

    a_ub_rows: List[np.ndarray] = []
    b_ub: List[float] = []
    a_eq_rows: List[np.ndarray] = []
    b_eq: List[float] = []

    # Demand constraints (eq. 2).
    pair_cols: Dict[Pair, List[int]] = {}
    for col, (pair, _) in enumerate(x_index):
        pair_cols.setdefault(pair, []).append(col)
    for pair in pairs:
        row = np.zeros(num_vars)
        row[pair_cols[pair]] = 1.0
        a_ub_rows.append(row)
        b_ub.append(float(demands[pair]))

    # Capacity constraints (eq. 3).
    if capacities is not None:
        for u, v in undirected:
            cap = capacities.get((u, v), capacities.get((v, u), math.inf))
            if math.isinf(cap):
                continue
            row = np.zeros(num_vars)
            if (u, v) in edge_pos:
                row[:num_x] += usage[edge_pos[(u, v)]]
            if (v, u) in edge_pos:
                row[:num_x] += usage[edge_pos[(v, u)]]
            a_ub_rows.append(row)
            b_ub.append(cap / delta)

    # Balance constraints (eq. 4 / eq. 9).
    if balance == "equality":
        for u, v in undirected:
            row = np.zeros(num_vars)
            if (u, v) in edge_pos:
                row[:num_x] += usage[edge_pos[(u, v)]]
            if (v, u) in edge_pos:
                row[:num_x] -= usage[edge_pos[(v, u)]]
            a_eq_rows.append(row)
            b_eq.append(0.0)
    elif with_b:
        for u, v in undirected:
            for a, b in ((u, v), (v, u)):
                row = np.zeros(num_vars)
                if (a, b) in edge_pos:
                    row[:num_x] += usage[edge_pos[(a, b)]]
                if (b, a) in edge_pos:
                    row[:num_x] -= usage[edge_pos[(b, a)]]
                row[b_pos[(a, b)]] = -1.0
                a_ub_rows.append(row)
                b_ub.append(0.0)

    # Rebalancing budget (eq. 16).
    if balance == "budget":
        row = np.zeros(num_vars)
        row[num_x:] = 1.0
        a_ub_rows.append(row)
        b_ub.append(float(budget))

    # Objective: max Σx − γΣb  →  min −Σx + γΣb.
    objective = np.zeros(num_vars)
    objective[:num_x] = -1.0
    if balance == "rebalance":
        objective[num_x:] = gamma

    result = linprog(
        objective,
        A_ub=np.vstack(a_ub_rows) if a_ub_rows else None,
        b_ub=np.asarray(b_ub) if b_ub else None,
        A_eq=np.vstack(a_eq_rows) if a_eq_rows else None,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=[(0.0, None)] * num_vars,
        method="highs",
    )
    if not result.success:  # pragma: no cover - feasible by construction (x = 0)
        raise ReproError(f"fluid LP failed: {result.message}")

    x = result.x[:num_x]
    throughput = float(x.sum())
    path_flows = {
        key: float(v) for key, v in zip(x_index, x) if v > _EPS
    }
    pair_flows: Dict[Pair, float] = {}
    for (pair, _), v in path_flows.items():
        pair_flows[pair] = pair_flows.get(pair, 0.0) + v
    edge_flows: Dict[DirectedEdge, float] = {}
    for (_, path), v in path_flows.items():
        for edge in path_edges(path):
            edge_flows[edge] = edge_flows.get(edge, 0.0) + v
    rebalancing = {}
    if with_b:
        for e, pos in b_pos.items():
            value = float(result.x[pos])
            if value > _EPS:
                rebalancing[e] = value
    return FluidSolution(
        throughput=throughput,
        objective=float(-result.fun),
        path_flows=path_flows,
        pair_flows=pair_flows,
        edge_flows=edge_flows,
        rebalancing=rebalancing,
    )


def max_balanced_throughput(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]] = None,
    delta: float = 1.0,
) -> FluidSolution:
    """Eqs. 1–5: maximum throughput under perfect balance."""
    return solve_fluid_lp(demands, path_set, capacities, delta, balance="equality")


def max_unbalanced_throughput(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]] = None,
    delta: float = 1.0,
) -> FluidSolution:
    """Capacity-only throughput bound (balance constraints dropped)."""
    return solve_fluid_lp(demands, path_set, capacities, delta, balance="none")


def solve_rebalancing_lp(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]],
    gamma: float,
    delta: float = 1.0,
) -> FluidSolution:
    """Eqs. 6–11: throughput minus γ-weighted on-chain rebalancing cost."""
    return solve_fluid_lp(
        demands, path_set, capacities, delta, balance="rebalance", gamma=gamma
    )


def throughput_with_budget(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]],
    budget: float,
    delta: float = 1.0,
) -> FluidSolution:
    """Eqs. 12–18: t(B), maximum throughput with total rebalancing ≤ B."""
    return solve_fluid_lp(
        demands, path_set, capacities, delta, balance="budget", budget=budget
    )


def throughput_vs_rebalancing(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]],
    budgets: Sequence[float],
    delta: float = 1.0,
) -> List[Tuple[float, float]]:
    """Sample the t(B) curve at the given budgets.

    Returns ``[(B, t(B)), ...]`` in input order.  §5.2.3 proves t is
    non-decreasing and concave; property tests assert both on the output.
    """
    curve = []
    for budget in budgets:
        solution = throughput_with_budget(demands, path_set, capacities, budget, delta)
        curve.append((float(budget), solution.throughput))
    return curve
